"""Cascade propagation through the dependency graph.

Implements the paper's A6 mechanism: a failing component degrades its
*dependents* (the callers whose requests flow into it), with probability
decaying per hop and a per-hop onset delay, until either the probability
dies out or ``max_depth`` is reached.  The propagated fault kind is drawn
from the symptoms a caller of a broken dependency actually exhibits —
latency regressions, error bursts, and commit failures — not a copy of
the root's kind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_rng
from repro.common.timeutil import MINUTE, TimeWindow
from repro.common.validation import require_fraction, require_non_negative, require_positive
from repro.faults.injector import FaultInjector
from repro.faults.models import Fault, FaultKind
from repro.topology.generator import CloudTopology

__all__ = ["CascadeConfig", "CascadeModel"]

#: Symptoms exhibited by the dependents of a failed component.
_PROPAGATED_KINDS: tuple[FaultKind, ...] = (
    FaultKind.LATENCY_REGRESSION,
    FaultKind.ERROR_BURST,
)


@dataclass(frozen=True, slots=True)
class CascadeConfig:
    """Propagation parameters.

    ``base_probability`` is the chance a direct dependent degrades;
    it decays by ``decay_per_hop`` each hop.  ``onset_delay`` is the mean
    seconds before a dependent starts showing symptoms (paper Table II
    shows the database alerts 2-3 minutes after the storage alert).
    """

    base_probability: float = 0.75
    decay_per_hop: float = 0.65
    onset_delay: float = 2 * MINUTE
    max_depth: int = 4
    min_child_duration: float = 5 * MINUTE

    def __post_init__(self) -> None:
        require_fraction(self.base_probability, "base_probability")
        require_fraction(self.decay_per_hop, "decay_per_hop")
        require_non_negative(self.onset_delay, "onset_delay")
        require_positive(self.max_depth, "max_depth")
        require_positive(self.min_child_duration, "min_child_duration")


class CascadeModel:
    """Expands a root fault into its propagated descendants."""

    def __init__(
        self,
        topology: CloudTopology,
        injector: FaultInjector,
        config: CascadeConfig | None = None,
        seed: int = 42,
    ) -> None:
        self._topology = topology
        self._injector = injector
        self._config = config or CascadeConfig()
        self._seed = seed
        self._cascades = 0

    @property
    def config(self) -> CascadeConfig:
        """The propagation parameters in use."""
        return self._config

    def trigger(self, root: Fault) -> list[Fault]:
        """Inject the cascade caused by ``root``; returns the new child faults.

        The root itself must already be applied by the caller.  Children
        are injected breadth-first so parents always precede children in
        the injector's fault index.
        """
        rng = derive_rng(self._seed, f"cascade/{root.fault_id}/{self._cascades}")
        self._cascades += 1
        config = self._config
        children: list[Fault] = []
        frontier: list[Fault] = [root]
        visited: set[str] = {root.microservice}

        for depth in range(1, config.max_depth + 1):
            probability = config.base_probability * (config.decay_per_hop ** (depth - 1))
            next_frontier: list[Fault] = []
            for parent in frontier:
                for dependent in sorted(self._topology.graph.dependents(parent.microservice)):
                    if dependent in visited:
                        continue
                    if rng.random() > probability:
                        continue
                    visited.add(dependent)
                    child = self._spawn_child(parent, dependent, rng)
                    if child is not None:
                        children.append(child)
                        next_frontier.append(child)
            if not next_frontier:
                break
            frontier = next_frontier
        return children

    def _spawn_child(self, parent: Fault, dependent: str, rng) -> Fault | None:
        config = self._config
        delay = float(rng.exponential(config.onset_delay)) if config.onset_delay > 0 else 0.0
        start = parent.window.start + delay
        end = max(parent.window.end, start + config.min_child_duration)
        if start >= end:
            return None
        kind = self._child_kind(dependent, rng)
        return self._injector.new_fault(
            kind=kind,
            microservice=dependent,
            region=parent.region,
            window=TimeWindow(start, end),
            parent=parent,
        )

    def _child_kind(self, dependent: str, rng) -> FaultKind:
        """Database callers surface commit failures; everyone else latency/errors."""
        service = self._topology.service_of[dependent]
        archetype = self._topology.services[service].archetype
        if archetype == "database" and rng.random() < 0.5:
            return FaultKind.ERROR_BURST
        return _PROPAGATED_KINDS[int(rng.integers(len(_PROPAGATED_KINDS)))]
