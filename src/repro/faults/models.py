"""Fault records."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow

__all__ = ["FaultKind", "Fault"]


class FaultKind(enum.Enum):
    """The fault flavours the injector knows how to express in telemetry."""

    CRASH = "crash"
    DISK_FULL = "disk_full"
    CPU_OVERLOAD = "cpu_overload"
    MEMORY_LEAK = "memory_leak"
    NETWORK_OVERLOAD = "network_overload"
    ERROR_BURST = "error_burst"
    LATENCY_REGRESSION = "latency_regression"
    FLAPPING = "flapping"

    @property
    def is_gray(self) -> bool:
        """Gray failures degrade slowly before exploding (paper §III-C, R4)."""
        return self in (FaultKind.MEMORY_LEAK, FaultKind.CPU_OVERLOAD)


@dataclass(frozen=True, slots=True)
class Fault:
    """One injected or propagated fault on a (microservice, region)."""

    fault_id: str
    kind: FaultKind
    microservice: str
    region: str
    window: TimeWindow
    parent_fault_id: str | None = None
    root_fault_id: str | None = None
    depth: int = 0

    def __post_init__(self) -> None:
        if not self.fault_id:
            raise ValidationError("fault_id must be non-empty")
        if self.depth < 0:
            raise ValidationError(f"depth must be >= 0, got {self.depth}")

    @property
    def is_root(self) -> bool:
        """Whether this fault is a cascade root (not propagated from another)."""
        return self.parent_fault_id is None

    def root_id(self) -> str:
        """The id of the cascade root (itself when this fault is the root)."""
        return self.root_fault_id or self.fault_id
