"""Adaptive online Latent Dirichlet Allocation (variational Bayes).

Implements Hoffman, Blei & Bach's *Online Learning for Latent Dirichlet
Allocation* (NIPS 2010): mini-batch variational E-steps and stochastic
natural-gradient M-steps with learning rate ``rho_t = (tau0 + t)^-kappa``.
This is the algorithm family the paper's R4 (emerging alert detection)
builds on — its refs [30]/[31] use adaptive online LDA over text streams
to surface *emerging topics*, which the mitigation package applies to
alert streams.

The vocabulary may *grow* between batches (``grow_vocab``): new columns
are appended with prior weight, which is the "adaptive" part — alert
streams keep introducing new component names.
"""

from __future__ import annotations

import numpy as np
from scipy.special import psi

from repro.common.errors import ValidationError
from repro.common.validation import require_positive

__all__ = ["OnlineLDA"]

#: A bag-of-words document: (word ids, word counts), aligned arrays.
BowDoc = tuple[np.ndarray, np.ndarray]


def _dirichlet_expectation(alpha: np.ndarray) -> np.ndarray:
    """E[log theta] for theta ~ Dir(alpha), rows independent."""
    if alpha.ndim == 1:
        return psi(alpha) - psi(alpha.sum())
    return psi(alpha) - psi(alpha.sum(axis=1))[:, np.newaxis]


class OnlineLDA:
    """Online variational Bayes for LDA."""

    def __init__(
        self,
        n_topics: int,
        vocab_size: int,
        alpha: float | None = None,
        eta: float = 0.01,
        tau0: float = 1.0,
        kappa: float = 0.7,
        seed: int = 42,
        e_step_iters: int = 60,
        e_step_tol: float = 1e-4,
    ) -> None:
        require_positive(n_topics, "n_topics")
        require_positive(vocab_size, "vocab_size")
        require_positive(eta, "eta")
        if not 0.5 < kappa <= 1.0:
            raise ValidationError(f"kappa must be in (0.5, 1] for convergence, got {kappa}")
        self.n_topics = int(n_topics)
        self.vocab_size = int(vocab_size)
        self.alpha = float(alpha) if alpha is not None else 1.0 / n_topics
        self.eta = float(eta)
        self.tau0 = float(tau0)
        self.kappa = float(kappa)
        self._e_step_iters = int(e_step_iters)
        self._e_step_tol = float(e_step_tol)
        self._updates = 0
        rng = np.random.default_rng(seed)
        self._lambda = rng.gamma(100.0, 1.0 / 100.0, (n_topics, vocab_size))
        self._refresh_expectations()

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def updates(self) -> int:
        """Number of mini-batch updates applied."""
        return self._updates

    @property
    def topic_word(self) -> np.ndarray:
        """Normalised topic-word distributions, shape (K, V)."""
        return self._lambda / self._lambda.sum(axis=1)[:, np.newaxis]

    def top_words(self, topic: int, n: int = 8) -> list[int]:
        """Ids of the ``n`` highest-probability words of ``topic``."""
        if not 0 <= topic < self.n_topics:
            raise ValidationError(f"topic {topic} out of range")
        return list(np.argsort(-self._lambda[topic])[:n])

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def grow_vocab(self, new_vocab_size: int) -> None:
        """Extend the vocabulary axis with prior-weight columns."""
        if new_vocab_size < self.vocab_size:
            raise ValidationError(
                f"vocabulary cannot shrink: {new_vocab_size} < {self.vocab_size}"
            )
        if new_vocab_size == self.vocab_size:
            return
        extra = new_vocab_size - self.vocab_size
        prior = np.full((self.n_topics, extra), self.eta)
        self._lambda = np.hstack([self._lambda, prior])
        self.vocab_size = new_vocab_size
        self._refresh_expectations()

    def partial_fit(self, docs: list[BowDoc], corpus_size: int | None = None) -> np.ndarray:
        """One online update from a mini-batch; returns the batch gammas.

        ``corpus_size`` scales the sufficient statistics (D in the paper's
        update); defaults to the batch size, appropriate for a pure stream.
        """
        if not docs:
            raise ValidationError("mini-batch must contain at least one document")
        corpus_size = corpus_size or len(docs)
        gamma, sstats = self._e_step(docs)
        rho = (self.tau0 + self._updates) ** (-self.kappa)
        scaled = self.eta + (corpus_size / len(docs)) * sstats
        self._lambda = (1.0 - rho) * self._lambda + rho * scaled
        self._refresh_expectations()
        self._updates += 1
        return gamma

    def transform(self, docs: list[BowDoc]) -> np.ndarray:
        """Per-document topic proportions (normalised variational gamma)."""
        gamma, _ = self._e_step(docs, collect_sstats=False)
        return gamma / gamma.sum(axis=1)[:, np.newaxis]

    def score(self, doc: BowDoc) -> float:
        """Per-word variational log-likelihood bound of one document.

        Higher means the model explains the document well; *emerging*
        documents (novel word combinations) score low.
        """
        ids, counts = doc
        if ids.size == 0:
            return 0.0
        gamma, _ = self._e_step([doc], collect_sstats=False)
        e_log_theta = _dirichlet_expectation(gamma)[0]
        log_phi = self._e_log_beta[:, ids] + e_log_theta[:, np.newaxis]
        # log sum_k exp(log phi_kw) per word, stabilised.
        peak = log_phi.max(axis=0)
        word_ll = peak + np.log(np.exp(log_phi - peak).sum(axis=0))
        return float((counts * word_ll).sum() / counts.sum())

    def perplexity(self, docs: list[BowDoc]) -> float:
        """exp(-mean per-word bound) over ``docs`` (lower is better)."""
        total_ll = 0.0
        total_words = 0
        for doc in docs:
            ids, counts = doc
            if ids.size == 0:
                continue
            total_ll += self.score(doc) * counts.sum()
            total_words += int(counts.sum())
        if total_words == 0:
            raise ValidationError("cannot compute perplexity of empty documents")
        return float(np.exp(-total_ll / total_words))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _refresh_expectations(self) -> None:
        self._e_log_beta = _dirichlet_expectation(self._lambda)
        self._exp_e_log_beta = np.exp(self._e_log_beta)

    def _e_step(self, docs: list[BowDoc],
                collect_sstats: bool = True) -> tuple[np.ndarray, np.ndarray]:
        n_docs = len(docs)
        gamma = np.ones((n_docs, self.n_topics))
        sstats = np.zeros_like(self._lambda) if collect_sstats else np.empty(0)
        for d, (ids, counts) in enumerate(docs):
            if ids.size == 0:
                continue
            if ids.max() >= self.vocab_size:
                raise ValidationError(
                    f"document references word id {int(ids.max())} beyond "
                    f"vocab size {self.vocab_size}; call grow_vocab first"
                )
            counts_f = counts.astype(float)
            gamma_d = gamma[d]
            exp_e_log_theta = np.exp(_dirichlet_expectation(gamma_d))
            exp_e_log_beta_d = self._exp_e_log_beta[:, ids]
            phinorm = exp_e_log_theta @ exp_e_log_beta_d + 1e-100
            for _ in range(self._e_step_iters):
                last_gamma = gamma_d
                gamma_d = self.alpha + exp_e_log_theta * (
                    (counts_f / phinorm) @ exp_e_log_beta_d.T
                )
                exp_e_log_theta = np.exp(_dirichlet_expectation(gamma_d))
                phinorm = exp_e_log_theta @ exp_e_log_beta_d + 1e-100
                if np.mean(np.abs(gamma_d - last_gamma)) < self._e_step_tol:
                    break
            gamma[d] = gamma_d
            if collect_sstats:
                sstats[:, ids] += np.outer(exp_e_log_theta, counts_f / phinorm)
        if collect_sstats:
            sstats *= self._exp_e_log_beta
        return gamma, sstats
