"""LDA-free R4 scoring: a hashing-trick topic sketch.

:class:`~repro.core.mitigation.emerging.EmergingAlertDetector` scores
novelty with an online LDA — exact, but it carries a vocabulary, topic
matrices, and a variational inference loop that cannot run incrementally
inside the gateway's flush barriers at stream rates.  This module is the
streaming replacement:

* **stable hashing** — every token maps to one of ``n_buckets`` counter
  buckets via ``blake2b`` (never the salted builtin ``hash``), so the
  same document hashes identically across processes, restarts, and
  checkpoint round trips;
* **integer counts** — the sketch is a plain bucket histogram, so
  folding documents is order-independent and byte-deterministic (no
  float accumulation drift between backends);
* **novelty = surprise** — a document's score is the mean smoothed
  log-probability of its token buckets under the histogram; alerts
  whose word combinations the sketch has not absorbed score low, the
  same "matches no known topic" signal the LDA bound gives;
* **the identical window discipline** — :class:`SketchWindowScorer`
  reproduces the LDA detector's loop exactly (fixed windows from the
  first document, warm-up, 0.99-quantile + gap threshold, 5000-entry
  history) but runs *incrementally*: the streaming detector suite feeds
  it watermark by watermark, and :class:`SketchEmergingDetector` wraps
  the same scorer for one-shot batch runs, so the two paths share every
  line of verdict logic and the differential harness compares data
  paths, not re-implementations.

The sketch-vs-LDA agreement bound lives in
``tests/streaming/test_differential.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from hashlib import blake2b

import numpy as np

from repro.common.timeutil import HOUR
from repro.common.validation import require_fraction, require_positive
from repro.ml.tokenize import tokenize

__all__ = [
    "DEFAULT_SKETCH_BUCKETS",
    "alert_document",
    "hash_document",
    "HashingTopicSketch",
    "SketchWindowScorer",
    "SketchEmergingDetector",
]

DEFAULT_SKETCH_BUCKETS = 4096

#: One document ready for the sketch: event time, the subject strategy,
#: and the hashed bag-of-buckets (parallel id/count tuples, ids sorted).
SketchDoc = tuple[float, str, tuple[int, ...], tuple[int, ...]]


def alert_document(alert) -> list[str]:
    """The bag-of-words document representing one alert.

    The exact recipe of
    :meth:`~repro.core.mitigation.emerging.EmergingAlertDetector.document_of`
    (which delegates here): strategy name, title, description, and the
    component names, so sketch topics align with the LDA topics they
    replace.
    """
    text = " ".join([
        alert.strategy_name,
        alert.title,
        alert.description,
        alert.microservice,
        alert.service,
    ])
    return tokenize(text)


def _bucket_of(token: str, n_buckets: int) -> int:
    """Stable token -> bucket assignment (process/restart invariant)."""
    raw = blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(raw, "big") % n_buckets


def hash_document(
    tokens: list[str], n_buckets: int = DEFAULT_SKETCH_BUCKETS,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Hash a token list into sorted ``(bucket ids, counts)`` tuples."""
    counts: dict[int, int] = {}
    for token in tokens:
        bucket = _bucket_of(token, n_buckets)
        counts[bucket] = counts.get(bucket, 0) + 1
    ids = tuple(sorted(counts))
    return ids, tuple(counts[bucket] for bucket in ids)


class HashingTopicSketch:
    """A fixed-width bucket histogram scoring token-bucket surprise."""

    __slots__ = ("n_buckets", "smoothing", "_counts", "_total")

    def __init__(
        self,
        n_buckets: int = DEFAULT_SKETCH_BUCKETS,
        smoothing: float = 0.5,
    ) -> None:
        require_positive(n_buckets, "n_buckets")
        require_positive(smoothing, "smoothing")
        self.n_buckets = int(n_buckets)
        self.smoothing = float(smoothing)
        #: Sparse integer bucket counts — fold order never matters.
        self._counts: dict[int, int] = {}
        self._total = 0

    def score(self, ids: tuple[int, ...], counts: tuple[int, ...]) -> float:
        """Mean smoothed log-probability per token occurrence.

        The sketch analogue of the LDA per-word bound: higher means the
        document's buckets are well explained by what the sketch has
        absorbed; novelty is the negation.
        """
        alpha = self.smoothing
        denominator = math.log(self._total + alpha * self.n_buckets)
        log_likelihood = 0.0
        total = 0
        bucket_counts = self._counts
        for bucket, count in zip(ids, counts):
            log_likelihood += count * (
                math.log(bucket_counts.get(bucket, 0) + alpha) - denominator
            )
            total += count
        if total == 0:
            return 0.0
        return log_likelihood / total

    def frozen_scorer(self):
        """A memoizing :meth:`score` for a histogram that is not moving.

        Valid only between folds (the window-close invariant): the
        per-bucket log term and the denominator are fixed, so they are
        computed once per distinct bucket instead of once per document.
        Every returned float is bitwise identical to :meth:`score`.
        """
        alpha = self.smoothing
        denominator = math.log(self._total + alpha * self.n_buckets)
        bucket_counts = self._counts
        log_of: dict[int, float] = {}
        log = math.log

        def score(ids, counts):
            log_likelihood = 0.0
            total = 0
            for bucket, count in zip(ids, counts):
                term = log_of.get(bucket)
                if term is None:
                    term = log_of[bucket] = log(
                        bucket_counts.get(bucket, 0) + alpha
                    )
                log_likelihood += count * (term - denominator)
                total += count
            if total == 0:
                return 0.0
            return log_likelihood / total

        return score

    def partial_fit(
        self, docs: list[tuple[tuple[int, ...], tuple[int, ...]]],
    ) -> None:
        """Fold documents into the histogram (commutative, integral)."""
        bucket_counts = self._counts
        for ids, counts in docs:
            for bucket, count in zip(ids, counts):
                bucket_counts[bucket] = bucket_counts.get(bucket, 0) + count
                self._total += count

    def fold_weighted(
        self, weights: dict[tuple[tuple[int, ...], tuple[int, ...]], int],
    ) -> None:
        """Fold ``{document: multiplicity}`` into the histogram.

        Identical to :meth:`partial_fit` over the expanded multiset —
        the counts are integers, so ``count * multiplicity`` is exactly
        the repeated addition — at cost proportional to *unique*
        documents.  Alert streams are dominated by repeats (the floods
        the paper characterizes), so this is the hot-path entry point.
        """
        bucket_counts = self._counts
        total = 0
        for (ids, counts), multiplicity in weights.items():
            for bucket, count in zip(ids, counts):
                increment = count * multiplicity
                bucket_counts[bucket] = bucket_counts.get(bucket, 0) + increment
                total += increment
        self._total += total

    def export_state(self) -> dict:
        """The histogram as a JSON-safe dict (checkpointing)."""
        return {
            "counts": [
                [bucket, self._counts[bucket]] for bucket in sorted(self._counts)
            ],
            "total": self._total,
        }

    def restore_state(self, state: dict) -> None:
        """Adopt a histogram captured by :meth:`export_state` (exact)."""
        self._counts = {int(bucket): int(count) for bucket, count in state["counts"]}
        self._total = int(state["total"])


@dataclass(frozen=True, slots=True)
class SketchFlag:
    """One emerging-alert flag raised by the sketch scorer."""

    strategy_id: str
    occurred_at: float
    novelty: float
    window_index: int


class SketchWindowScorer:
    """The LDA detector's window loop, runnable incrementally.

    Documents accumulate in a buffer; :meth:`advance` closes every
    window the watermark has passed (any in-order future document must
    land beyond it), scoring each window's documents against the sketch
    *before* folding them in — exactly the order the batch LDA detector
    uses.  Windows are canonically sorted before processing, so the
    verdicts are independent of plane count, backend, and flush
    schedule; :meth:`finish` closes the final partial window at drain.
    """

    def __init__(
        self,
        n_buckets: int = DEFAULT_SKETCH_BUCKETS,
        smoothing: float = 0.5,
        window_seconds: float = 1 * HOUR,
        warmup_windows: int = 6,
        novelty_quantile: float = 0.99,
        min_novelty_gap: float = 1.0,
        history_limit: int = 5000,
    ) -> None:
        require_positive(window_seconds, "window_seconds")
        require_positive(warmup_windows, "warmup_windows")
        require_fraction(novelty_quantile, "novelty_quantile")
        require_positive(history_limit, "history_limit")
        self.sketch = HashingTopicSketch(n_buckets, smoothing)
        self._window = float(window_seconds)
        self._warmup_windows = int(warmup_windows)
        self._novelty_quantile = float(novelty_quantile)
        self._min_novelty_gap = float(min_novelty_gap)
        self._history_limit = int(history_limit)
        self._start: float | None = None
        self._window_index = 0
        #: (occurred_at, strategy_id, (ids, counts)) — the content pair
        #: is shared with the digest's docs table, so window close can
        #: dedup repeats by object identity before falling back to
        #: value equality.
        self._buffer: list[tuple[float, str, tuple]] = []
        self._history: list[float] = []
        self.flags: list[SketchFlag] = []

    @property
    def emerging_count(self) -> int:
        """Lifetime emerging flags raised."""
        return len(self.flags)

    def add(self, doc: SketchDoc) -> None:
        """Buffer one hashed document (empty documents are no-ops)."""
        if not doc[2]:
            return
        if self._start is None:
            self._start = doc[0]
        self._buffer.append((doc[0], doc[1], (doc[2], doc[3])))

    def add_rows(self, docs, doc_rows) -> None:
        """Buffer ``(occurred_at, strategy_id, doc_index)`` rows.

        Equivalent to :meth:`add` over each referenced document from the
        shared ``docs`` table — the per-flush digest fast path.  Buffer
        entries alias the table's content pairs, so a document repeated
        within one digest stays one object.
        """
        buffer = self._buffer
        start = self._start
        for occurred_at, strategy_id, index in doc_rows:
            content = docs[index]
            if not content[0]:
                continue
            if start is None:
                start = occurred_at
            buffer.append((occurred_at, strategy_id, content))
        self._start = start

    def advance(self, watermark: float | None) -> None:
        """Close and score every window the watermark has passed."""
        if watermark is None or self._start is None:
            return
        while self._start + (self._window_index + 1) * self._window <= watermark:
            self._close_window(
                self._start + (self._window_index + 1) * self._window
            )

    def finish(self) -> None:
        """Close the final partial window (end of stream)."""
        if self._buffer:
            self._close_window(None)

    def _close_window(self, window_end: float | None) -> None:
        if window_end is None:
            batch, rest = self._buffer, []
        else:
            batch = [doc for doc in self._buffer if doc[0] < window_end]
            rest = [doc for doc in self._buffer if doc[0] >= window_end]
        self._buffer = rest
        if not batch:
            self._window_index += 1
            return
        # Canonical within-window order: verdicts are order-independent
        # (one threshold per window, scored pre-fit), but the flag list
        # and the history-cap tail are not — sort so every backend and
        # flush schedule produces identical state.
        batch.sort()
        sketch = self.sketch
        threshold: float | None = None
        if self._window_index >= self._warmup_windows and self._history:
            threshold = float(
                np.quantile(self._history, self._novelty_quantile)
            ) + self._min_novelty_gap
        # Alert streams repeat: score each distinct document once (the
        # sketch is frozen until the post-window fit, so every repeat
        # would produce the identical float) and fold with multiplicity.
        score = sketch.frozen_scorer()
        # Two-level memo: object identity first (repeats within one
        # digest share the docs-table tuple, so most occurrences skip
        # even the content hash), value equality second (equal contents
        # arriving via different digests).
        by_id: dict[int, list] = {}
        entries: dict[tuple, list] = {}
        novelties = []
        for doc in batch:
            content = doc[2]
            rec = by_id.get(id(content))
            if rec is None:
                rec = entries.get(content)
                if rec is None:
                    entries[content] = rec = [-score(content[0], content[1]), 0]
                by_id[id(content)] = rec
            rec[1] += 1
            novelties.append(rec[0])
        if threshold is not None:
            for doc, novelty in zip(batch, novelties):
                if novelty > threshold:
                    self.flags.append(SketchFlag(
                        strategy_id=doc[1],
                        occurred_at=doc[0],
                        novelty=novelty,
                        window_index=self._window_index,
                    ))
        self._history.extend(novelties)
        # Bound the reference history so the threshold adapts to drift.
        if len(self._history) > self._history_limit:
            self._history = self._history[-self._history_limit:]
        sketch.fold_weighted(
            {content: rec[1] for content, rec in entries.items()}
        )
        self._window_index += 1

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Complete dynamic state, JSON-safe (checkpointing)."""
        return {
            "sketch": self.sketch.export_state(),
            "start": self._start,
            "window_index": self._window_index,
            "buffer": [
                [at, strategy_id, list(content[0]), list(content[1])]
                for at, strategy_id, content in self._buffer
            ],
            "history": list(self._history),
            "flags": [
                [f.strategy_id, f.occurred_at, f.novelty, f.window_index]
                for f in self.flags
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Adopt state captured by :meth:`export_state` (exact)."""
        self.sketch.restore_state(state["sketch"])
        self._start = (
            None if state["start"] is None else float(state["start"])
        )
        self._window_index = int(state["window_index"])
        self._buffer = [
            (float(at), str(strategy_id), (tuple(ids), tuple(counts)))
            for at, strategy_id, ids, counts in state["buffer"]
        ]
        self._history = [float(value) for value in state["history"]]
        self.flags = [
            SketchFlag(
                strategy_id=str(strategy_id),
                occurred_at=float(at),
                novelty=float(novelty),
                window_index=int(index),
            )
            for strategy_id, at, novelty, index in state["flags"]
        ]


class SketchEmergingDetector:
    """Batch wrapper: the sketch scorer run over a finished alert list.

    The one-shot counterpart of the streaming path — same scorer, same
    windows, same thresholds — used by the differential harness to
    compare the sketch verdicts against the LDA detector's on the same
    trace, and by anyone who wants LDA-free R4 scoring offline.
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs

    def run(self, alerts: list) -> list[SketchFlag]:
        """Process the finished stream; returns flags in window order."""
        scorer = SketchWindowScorer(**self._kwargs)
        n_buckets = scorer.sketch.n_buckets
        ordered = sorted(alerts, key=lambda a: a.occurred_at)
        for alert in ordered:
            ids, counts = hash_document(alert_document(alert), n_buckets)
            doc = (alert.occurred_at, alert.strategy_id, ids, counts)
            scorer.add(doc)
            scorer.advance(alert.occurred_at)
        scorer.finish()
        return scorer.flags
