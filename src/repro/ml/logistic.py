"""L2-regularised binary logistic regression on numpy.

Used by the QoA models (§IV): small feature vectors, hundreds-to-thousands
of examples — full-batch gradient descent with feature standardisation is
plenty, and keeps the implementation auditable.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import require_positive

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Binary classifier: P(y=1|x) = sigmoid(w.x + b), L2 penalty on w."""

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iters: int = 500,
        tol: float = 1e-6,
    ) -> None:
        require_positive(learning_rate, "learning_rate")
        require_positive(max_iters, "max_iters")
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        self.l2 = float(l2)
        self.learning_rate = float(learning_rate)
        self.max_iters = int(max_iters)
        self.tol = float(tol)
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    @property
    def weights(self) -> np.ndarray:
        """Learned weights in standardised feature space (copy)."""
        self._require_fitted()
        return self._weights.copy()

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Train on ``features`` (n, d) against binary ``labels`` (n,)."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2:
            raise ValidationError(f"features must be 2-D, got {features.ndim}-D")
        if labels.shape != (features.shape[0],):
            raise ValidationError(
                f"labels shape {labels.shape} does not match {features.shape[0]} rows"
            )
        if not np.isin(labels, (0.0, 1.0)).all():
            raise ValidationError("labels must be 0/1")
        n, d = features.shape
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std = np.where(self._std < 1e-12, 1.0, self._std)
        x = (features - self._mean) / self._std

        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self.max_iters):
            logits = x @ weights + bias
            probs = _sigmoid(logits)
            error = probs - labels
            grad_w = x.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
            if np.abs(grad_w).max() < self.tol and abs(grad_b) < self.tol:
                break
        self._weights = weights
        self._bias = bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(y=1) per row."""
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        x = (features - self._mean) / self._std
        return _sigmoid(x @ self._weights + self._bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct hard predictions."""
        labels = np.asarray(labels)
        return float((self.predict(features) == labels).mean())

    def _require_fitted(self) -> None:
        if self._weights is None:
            raise ValidationError("model is not fitted yet")


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out
