"""Minimal text tokenisation for alert titles and descriptions."""

from __future__ import annotations

import re

__all__ = ["tokenize", "STOPWORDS"]

#: Function words carrying no topical signal in alert text.
STOPWORDS: frozenset[str] = frozenset({
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has",
    "have", "in", "is", "it", "its", "of", "on", "or", "per", "that", "the",
    "to", "too", "was", "were", "will", "with", "than", "then",
})

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[_-][a-z0-9]+)*")


def tokenize(text: str, drop_stopwords: bool = True, min_length: int = 2) -> list[str]:
    """Lowercase and split ``text`` into identifier-friendly tokens.

    Hyphenated / underscored component names ("block-storage-api-10",
    "haproxy_process_number_warning") survive as single tokens, which is
    what lets LDA topics align with components.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    result = []
    for token in tokens:
        if len(token) < min_length:
            continue
        if drop_stopwords and token in STOPWORDS:
            continue
        result.append(token)
    return result
