"""Vocabulary: token <-> id mapping and bag-of-words conversion."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import ValidationError

__all__ = ["Vocabulary"]


class Vocabulary:
    """Token registry with optional freezing.

    While unfrozen, unknown tokens are added on sight; once frozen,
    unknown tokens are dropped — the behaviour an *online* pipeline needs
    after its warm-up phase.
    """

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._frozen = False

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def frozen(self) -> bool:
        """Whether new tokens are still being admitted."""
        return self._frozen

    def freeze(self) -> None:
        """Stop admitting new tokens."""
        self._frozen = True

    def add(self, token: str) -> int | None:
        """Register ``token``; returns its id, or ``None`` if dropped."""
        if not token:
            raise ValidationError("token must be non-empty")
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        if self._frozen:
            return None
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id_of(self, token: str) -> int | None:
        """The id of ``token`` or ``None`` when unknown."""
        return self._token_to_id.get(token)

    def token_of(self, token_id: int) -> str:
        """The token for ``token_id``."""
        if not 0 <= token_id < len(self._id_to_token):
            raise ValidationError(f"token id {token_id} out of range")
        return self._id_to_token[token_id]

    def doc_to_bow(self, tokens: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Convert tokens to (ids, counts) arrays, registering if unfrozen."""
        counter: Counter[int] = Counter()
        for token in tokens:
            token_id = self.add(token)
            if token_id is not None:
                counter[token_id] += 1
        if not counter:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        ids = np.array(sorted(counter), dtype=int)
        counts = np.array([counter[i] for i in ids], dtype=int)
        return ids, counts

    def docs_to_bows(
        self, docs: Iterable[Sequence[str]]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Vectorise many token lists."""
        return [self.doc_to_bow(doc) for doc in docs]
