"""Machine-learning substrate built on numpy.

No ML framework is assumed: this package implements the two models the
paper's mitigation/QoA pipelines need —

* :mod:`repro.ml.lda` — adaptive *online* Latent Dirichlet Allocation
  (Hoffman et al.'s online variational Bayes, the algorithm family behind
  the paper's R4 emerging-alert detection, refs [30]/[31]);
* :mod:`repro.ml.logistic` — L2-regularised logistic regression for the
  QoA classifiers;

plus the text plumbing (:mod:`repro.ml.tokenize`, :mod:`repro.ml.vocab`)
that turns alert titles/descriptions into bags of words.
"""

from repro.ml.lda import OnlineLDA
from repro.ml.logistic import LogisticRegression
from repro.ml.tokenize import tokenize
from repro.ml.vocab import Vocabulary

__all__ = ["OnlineLDA", "LogisticRegression", "tokenize", "Vocabulary"]
