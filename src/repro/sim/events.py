"""Event and periodic-process records for the simulation kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ValidationError
from repro.common.validation import require_positive

__all__ = ["Event", "PeriodicProcess"]

#: Signature of an event callback: receives the firing time and the payload.
EventCallback = Callable[[float, Any], None]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, sequence)`` so simultaneous events fire in the
    order they were scheduled — determinism the calibrated workloads rely
    on.
    """

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    payload: Any = field(compare=False, default=None)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (no-op when cancelled)."""
        if not self.cancelled:
            self.callback(self.time, self.payload)


@dataclass(slots=True)
class PeriodicProcess:
    """A callback that re-schedules itself every ``interval`` seconds.

    The engine materialises one :class:`Event` per tick; ``end`` bounds the
    final tick (exclusive).  ``jitter`` support is deliberately absent —
    stochastic timing belongs in the callbacks, keeping the kernel
    deterministic.
    """

    interval: float
    callback: EventCallback
    start: float = 0.0
    end: float | None = None
    label: str = ""
    active: bool = True

    def __post_init__(self) -> None:
        require_positive(self.interval, "interval")
        if self.start < 0:
            raise ValidationError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end < self.start:
            raise ValidationError(f"end {self.end} precedes start {self.start}")

    def stop(self) -> None:
        """Prevent any further ticks from being scheduled."""
        self.active = False

    def next_tick_after(self, time: float) -> float | None:
        """The first tick strictly after ``time``, or ``None`` when done."""
        if not self.active:
            return None
        tick = time + self.interval
        if self.end is not None and tick >= self.end:
            return None
        return tick
