"""Discrete-event simulation kernel.

A minimal, deterministic event loop: callbacks are scheduled at absolute
simulation times and executed in time order (FIFO among ties).  The
monitoring engine, fault injector, and OCE processing model all run as
processes on this kernel.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, PeriodicProcess

__all__ = ["SimulationEngine", "Event", "PeriodicProcess"]
