"""The simulation engine: an ordered event loop over simulated seconds."""

from __future__ import annotations

import heapq
from typing import Any

from repro.common.errors import SimulationError, ValidationError
from repro.sim.events import Event, EventCallback, PeriodicProcess

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Deterministic discrete-event loop.

    >>> engine = SimulationEngine()
    >>> seen = []
    >>> _ = engine.schedule(5.0, lambda t, p: seen.append((t, p)), payload="hello")
    >>> engine.run_until(10.0)
    >>> seen
    [(5.0, 'hello')]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if start_time < 0:
            raise ValidationError(f"start_time must be >= 0, got {start_time}")
        self._now = start_time
        self._queue: list[Event] = []
        self._sequence = 0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule(
        self,
        time: float,
        callback: EventCallback,
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(time, payload)`` at an absolute time.

        Scheduling in the past raises :class:`SimulationError`; scheduling
        exactly at ``now`` is allowed and fires on the current tick.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback,
                      payload=payload, label=label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: EventCallback,
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule relative to the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback, payload, label)

    def add_periodic(self, process: PeriodicProcess) -> None:
        """Register a periodic process; its first tick fires at ``process.start``."""
        if process.start < self._now:
            raise SimulationError(
                f"periodic process starts at {process.start} before now {self._now}"
            )
        if process.end is not None and process.start >= process.end:
            return

        def tick(time: float, _: Any) -> None:
            if not process.active:
                return
            process.callback(time, None)
            next_time = process.next_tick_after(time)
            if next_time is not None:
                self.schedule(next_time, tick, label=process.label)

        self.schedule(process.start, tick, label=process.label)

    def run_until(self, end_time: float) -> None:
        """Execute all events with ``time <= end_time`` in order.

        After the call, ``now`` equals ``end_time`` even if the queue
        drained earlier, so subsequent scheduling is relative to the end of
        the simulated horizon.
        """
        if end_time < self._now:
            raise SimulationError(f"end_time {end_time} precedes current time {self._now}")
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self._fired += 1
        self._now = end_time

    def run_all(self, safety_limit: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``safety_limit`` events)."""
        executed = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self._fired += 1
            executed += 1
            if executed >= safety_limit:
                raise SimulationError(f"run_all exceeded safety limit of {safety_limit} events")
