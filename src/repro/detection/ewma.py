"""EWMA control-chart detector."""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive
from repro.detection.base import AnomalyDetector

__all__ = ["EwmaDetector"]


class EwmaDetector(AnomalyDetector):
    """Flags points far from an exponentially weighted moving average.

    A point is anomalous when its residual against the *previous* EWMA
    state exceeds ``k`` times the running residual scale.  Anomalous points
    do not update the state, so a sustained shift keeps firing rather than
    being absorbed.
    """

    def __init__(self, alpha: float = 0.2, k: float = 4.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        require_positive(k, "k")
        self.alpha = float(alpha)
        self.k = float(k)
        self.name = f"ewma[alpha={alpha:g},k={k:g}]"

    def detect(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        times, values = self._validate(times, values)
        n = values.size
        flags = np.zeros(n, dtype=bool)
        if n == 0:
            return flags
        level = float(values[0])
        scale = 0.0
        warmup = min(max(n // 10, 5), n)
        for index in range(1, n):
            residual = abs(float(values[index]) - level)
            if index >= warmup and scale > 1e-12 and residual > self.k * scale:
                flags[index] = True
                continue  # outliers do not update the state
            level += self.alpha * (float(values[index]) - level)
            scale += self.alpha * (residual - scale)
        return flags
