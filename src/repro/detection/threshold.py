"""Static threshold detector — the workhorse of manual alert strategies."""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_in
from repro.detection.base import AnomalyDetector

__all__ = ["StaticThresholdDetector"]


class StaticThresholdDetector(AnomalyDetector):
    """Flags points beyond a fixed threshold.

    ``direction='above'`` flags ``value > threshold`` (disk usage over
    90 %); ``'below'`` flags ``value < threshold`` (request rate collapsing
    to zero).  ``min_consecutive`` requires the condition to hold for that
    many consecutive samples before flagging — the standard debouncing
    knob, and the one whose *absence* produces the paper's transient-alert
    anti-pattern A4.
    """

    def __init__(self, threshold: float, direction: str = "above",
                 min_consecutive: int = 1) -> None:
        require_in(direction, ("above", "below"), "direction")
        if min_consecutive < 1:
            raise ValueError(f"min_consecutive must be >= 1, got {min_consecutive}")
        self.threshold = float(threshold)
        self.direction = direction
        self.min_consecutive = int(min_consecutive)
        self.name = f"threshold[{direction} {threshold:g}]"

    def detect(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        times, values = self._validate(times, values)
        if self.direction == "above":
            raw = values > self.threshold
        else:
            raw = values < self.threshold
        if self.min_consecutive == 1:
            return raw
        return _require_run(raw, self.min_consecutive)


def _require_run(flags: np.ndarray, run: int) -> np.ndarray:
    """Keep a flag only when it terminates a run of ``run`` consecutive flags."""
    result = np.zeros_like(flags)
    streak = 0
    for index, flag in enumerate(flags):
        streak = streak + 1 if flag else 0
        if streak >= run:
            result[index] = True
    return result
