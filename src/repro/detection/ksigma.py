"""k-sigma detector: flags departures from the segment's own baseline."""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_fraction, require_positive
from repro.detection.base import AnomalyDetector

__all__ = ["KSigmaDetector"]


class KSigmaDetector(AnomalyDetector):
    """Flags points more than ``k`` standard deviations from the baseline mean.

    The baseline is the leading ``baseline_fraction`` of the segment,
    assumed mostly normal — the usual trick for sliding-window evaluation
    where the tail of the window holds the candidate anomaly.
    """

    def __init__(self, k: float = 3.0, baseline_fraction: float = 0.5,
                 min_baseline_points: int = 10) -> None:
        require_positive(k, "k")
        require_fraction(baseline_fraction, "baseline_fraction")
        require_positive(min_baseline_points, "min_baseline_points")
        self.k = float(k)
        self.baseline_fraction = float(baseline_fraction)
        self.min_baseline_points = int(min_baseline_points)
        self.name = f"ksigma[k={k:g}]"

    def detect(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        times, values = self._validate(times, values)
        n = values.size
        baseline_size = max(int(n * self.baseline_fraction), 1)
        if n < self.min_baseline_points:
            return np.zeros(n, dtype=bool)
        baseline = values[:baseline_size]
        mean = float(baseline.mean())
        std = float(baseline.std())
        if std < 1e-12:
            std = max(abs(mean) * 0.01, 1e-12)
        return np.abs(values - mean) > self.k * std
