"""Anomaly detectors for metric-channel alert strategies.

The paper notes that "the alert strategy for metrics varies from static
threshold to algorithmic anomaly detection" (§II-B3).  This package
provides that spectrum: a static threshold plus four classic streaming
detectors.  All detectors share one interface — given aligned ``times``
and ``values`` arrays, return a boolean anomaly flag per point.
"""

from repro.detection.base import AnomalyDetector
from repro.detection.ewma import EwmaDetector
from repro.detection.ksigma import KSigmaDetector
from repro.detection.mad import MadDetector
from repro.detection.rate import RateOfChangeDetector
from repro.detection.threshold import StaticThresholdDetector

__all__ = [
    "AnomalyDetector",
    "StaticThresholdDetector",
    "KSigmaDetector",
    "EwmaDetector",
    "MadDetector",
    "RateOfChangeDetector",
]
