"""Median absolute deviation (robust z-score) detector."""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive
from repro.detection.base import AnomalyDetector

__all__ = ["MadDetector"]

#: Scale factor making MAD a consistent estimator of the normal sigma.
_MAD_TO_SIGMA = 1.4826


class MadDetector(AnomalyDetector):
    """Flags points whose robust z-score exceeds ``k``.

    Median/MAD statistics are insensitive to the anomaly itself
    contaminating the window, which makes this the detector of choice for
    spiky series where the k-sigma baseline would be dragged along.
    """

    def __init__(self, k: float = 5.0, min_points: int = 8) -> None:
        require_positive(k, "k")
        require_positive(min_points, "min_points")
        self.k = float(k)
        self.min_points = int(min_points)
        self.name = f"mad[k={k:g}]"

    def detect(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        times, values = self._validate(times, values)
        n = values.size
        if n < self.min_points:
            return np.zeros(n, dtype=bool)
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median))) * _MAD_TO_SIGMA
        if mad < 1e-12:
            mad = max(abs(median) * 0.01, 1e-12)
        return np.abs(values - median) > self.k * mad
