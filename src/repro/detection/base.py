"""Detector interface shared by all metric anomaly detectors."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import ValidationError

__all__ = ["AnomalyDetector"]


class AnomalyDetector(ABC):
    """Flags anomalous points in an evenly sampled metric segment."""

    #: Human-readable detector name, set by subclasses.
    name: str = "detector"

    @abstractmethod
    def detect(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Return a boolean array: ``True`` where the point is anomalous."""

    def latest_is_anomalous(self, times: np.ndarray, values: np.ndarray) -> bool:
        """Whether the most recent point of the segment is anomalous.

        This is the decision the monitoring engine makes on every poll.
        """
        flags = self.detect(times, values)
        return bool(flags[-1]) if flags.size else False

    def describe(self) -> str:
        """Short description used in alert-strategy listings."""
        return self.name

    @staticmethod
    def _validate(times: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.shape != values.shape:
            raise ValidationError(
                f"times and values must have identical shape, "
                f"got {times.shape} vs {values.shape}"
            )
        if times.ndim != 1:
            raise ValidationError(f"expected 1-D arrays, got {times.ndim}-D")
        return times, values
