"""Rate-of-change detector: flags abrupt level jumps."""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_positive
from repro.detection.base import AnomalyDetector

__all__ = ["RateOfChangeDetector"]


class RateOfChangeDetector(AnomalyDetector):
    """Flags points whose per-second slope magnitude exceeds ``max_rate``.

    Useful for metrics that are allowed to sit at any level but must not
    jump — queue depth, connection counts — where a static threshold would
    either miss regressions at low load or false-fire at high load.
    """

    def __init__(self, max_rate: float) -> None:
        require_positive(max_rate, "max_rate")
        self.max_rate = float(max_rate)
        self.name = f"rate[>{max_rate:g}/s]"

    def detect(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        times, values = self._validate(times, values)
        n = values.size
        flags = np.zeros(n, dtype=bool)
        if n < 2:
            return flags
        dt = np.diff(times)
        dt = np.where(dt <= 0, 1e-9, dt)
        slopes = np.abs(np.diff(values)) / dt
        flags[1:] = slopes > self.max_rate
        return flags
