"""Command-line interface: generate traces and run every analysis.

::

    repro-alerts generate --out trace-dir --days 60
    repro-alerts mine     --trace trace-dir
    repro-alerts mitigate --trace trace-dir
    repro-alerts stream   --trace trace-dir --shards 4 --reconcile
    repro-alerts stream   --trace trace-dir --backend thread --workers 4
    repro-alerts serve    --trace trace-dir --data-dir svc-dir
    repro-alerts ops      --data-dir svc-dir
    repro-alerts qoa      --trace trace-dir
    repro-alerts storm
    repro-alerts survey
    repro-alerts lint     --strategies 400

Every command is deterministic under ``--seed`` and prints the same
reports the benchmark harness records.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import compute_trace_stats, paper_reference as paper
from repro.analysis.figures import render_bar_survey, render_hourly_series
from repro.common.timeutil import hour_bucket
from repro.core.antipatterns import run_mining_pipeline
from repro.core.governance import GuidelineChecker
from repro.core.mitigation import MitigationPipeline, rulebook_from_ground_truth
from repro.core.qoa import evaluate_qoa_pipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.io import load_trace, save_trace
from repro.streaming import (
    BACKEND_NAMES,
    AlertGateway,
    LearnerConfig,
    rule_set_divergence,
)
from repro.oce.survey import (
    IMPACT_OPTIONS,
    REACTION_OPTIONS,
    SOP_OPTIONS,
    SurveyInstrument,
)
from repro.topology import TopologyConfig, generate_topology
from repro.workload import (
    StrategyFactory,
    TraceConfig,
    TraceScale,
    build_representative_storm,
    generate_trace,
)
from repro.workload.storms import StormConfig

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "generate": _cmd_generate,
        "mine": _cmd_mine,
        "mitigate": _cmd_mitigate,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
        "ops": _cmd_ops,
        "qoa": _cmd_qoa,
        "storm": _cmd_storm,
        "survey": _cmd_survey,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


def _parse_scale_spec(spec: str) -> tuple[int, int]:
    """Validate one ``--scale-at EVENTIDX:PLANES`` token at parse time.

    Argparse surfaces :class:`argparse.ArgumentTypeError` as a usage
    error naming the offending token, so a malformed schedule fails
    before any trace is loaded or gateway constructed.
    """
    head, sep, tail = spec.partition(":")
    if not sep or ":" in tail:
        raise argparse.ArgumentTypeError(
            f"invalid --scale-at value {spec!r}: expected exactly one "
            f"colon separating EVENTIDX:PLANES"
        )
    try:
        event_index = int(head)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --scale-at value {spec!r}: EVENTIDX {head!r} is not "
            f"an integer"
        ) from None
    try:
        planes = int(tail)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --scale-at value {spec!r}: PLANES {tail!r} is not "
            f"an integer"
        ) from None
    if event_index < 0:
        raise argparse.ArgumentTypeError(
            f"invalid --scale-at value {spec!r}: EVENTIDX must be >= 0"
        )
    if planes < 1:
        raise argparse.ArgumentTypeError(
            f"invalid --scale-at value {spec!r}: PLANES must be >= 1"
        )
    return event_index, planes


def _parse_endpoint(spec: str) -> tuple[str, int]:
    """Validate one ``HOST:PORT`` endpoint token at parse time."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"invalid endpoint {spec!r}: expected HOST:PORT"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid endpoint {spec!r}: port {port_text!r} is not an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError(
            f"invalid endpoint {spec!r}: port must be 0-65535"
        )
    return host, port


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-alerts",
        description="Alert anti-pattern characterisation and mitigation (DSN 2022).",
    )
    sub = parser.add_subparsers(dest="command")

    generate = sub.add_parser("generate", help="generate and save an alert trace")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--days", type=float, default=None,
                          help="trace length (default: 60-day preset)")
    generate.add_argument("--strategies", type=int, default=None)
    generate.add_argument("--paper-scale", action="store_true",
                          help="the full 2-year / 4M-alert / 2010-strategy frame")

    for name, help_text in (
        ("mine", "run the SIII-A candidate-mining pipeline"),
        ("mitigate", "run the R1-R3 mitigation pipeline"),
        ("qoa", "run the SIV QoA evaluation"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("--trace", required=True, help="trace directory")
        command.add_argument("--seed", type=int, default=None,
                             help="topology seed (default: the trace's seed)")

    stream = sub.add_parser(
        "stream", help="replay a JSONL trace through the online alert gateway"
    )
    stream.add_argument("--trace", required=True, help="trace directory")
    stream.add_argument("--seed", type=int, default=None,
                        help="topology seed (default: the trace's seed)")
    stream.add_argument("--shards", type=int, default=4,
                        help="shards per plane on the consistent-hash ring")
    stream.add_argument("--planes", type=int, default=1,
                        help="region-partitioned execution planes "
                             "(parallelism unit for R3/R4)")
    stream.add_argument("--backend", choices=BACKEND_NAMES, default="serial",
                        help="plane execution backend (default: serial)")
    stream.add_argument("--workers", type=int, default=None,
                        help="worker threads/processes for pooled backends "
                             "(clamped to --planes)")
    stream.add_argument("--flush-size", type=int, default=None,
                        help="micro-batch size per flush "
                             "(default: 1 serial, 512 pooled)")
    stream.add_argument("--ingress-lanes", type=int, default=1,
                        help="partitioned ingest lane threads feeding planes "
                             "directly (clamped to --planes; 1 = classic "
                             "single-threaded ingress)")
    stream.add_argument("--lane-transport", choices=("ring", "pipe"),
                        default="ring",
                        help="lane->worker hand-off on the process backend: "
                             "zero-copy shared-memory rings (default) or the "
                             "classic pickled pipe")
    stream.add_argument("--worker-recovery", action="store_true",
                        help="on the process backend, detect dead workers, "
                             "respawn them, and replay their planes from "
                             "snapshot+journal (identical accounting)")
    stream.add_argument("--worker-checkpoint-every", type=int, default=64,
                        help="journaled batches between per-worker plane "
                             "snapshots when --worker-recovery is on")
    stream.add_argument("--worker-timeout", type=float, default=30.0,
                        help="seconds to wait on a live-but-silent worker "
                             "before raising WorkerTimeoutError")
    stream.add_argument("--window", type=float, default=900.0,
                        help="aggregation/correlation window in seconds")
    stream.add_argument("--rebalance-to", type=int, default=None,
                        help="re-shard to this count halfway through the stream")
    stream.add_argument("--scale-at", action="append", default=None,
                        type=_parse_scale_spec,
                        metavar="EVENTIDX:PLANES",
                        help="scale the live gateway to PLANES execution "
                             "planes once EVENTIDX events have been ingested, "
                             "migrating moved regions' whole plane state "
                             "(repeatable for a multi-step schedule)")
    stream.add_argument("--learn-rules", action="store_true",
                        help="learn R1 blocking rules online from streaming "
                             "A4/A5 detection instead of batch derivation")
    stream.add_argument("--qoa", action="store_true",
                        help="score per-strategy alert quality live from "
                             "gateway counters")
    stream.add_argument("--detect", action="store_true",
                        help="run the online anti-pattern detectors "
                             "(A1-A3 + sketch-R4) from per-plane detection "
                             "digests at flush barriers")
    stream.add_argument("--adaptive-thresholds", action="store_true",
                        help="with --learn-rules: judge noisiness against "
                             "per-(service, region) EWMA baselines instead "
                             "of the global static cut-offs")
    stream.add_argument("--reconcile", action="store_true",
                        help="also run the batch pipeline and verify exact "
                             "parity (with --learn-rules: report the "
                             "online-vs-batch rule divergence instead)")

    serve = sub.add_parser(
        "serve",
        help="run a durable, restartable alert-gateway service "
             "(checkpoints + write-ahead journal in --data-dir)",
    )
    serve.add_argument("--trace", required=True,
                       help="trace directory (topology + rulebook source; "
                            "also the replay source unless --listen/--stdin)")
    serve.add_argument("--data-dir", required=True,
                       help="service directory for checkpoints, journal, "
                            "and stats.json (restores automatically when "
                            "it already holds state)")
    serve.add_argument("--seed", type=int, default=None,
                       help="topology seed (default: the trace's seed)")
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--planes", type=int, default=1)
    serve.add_argument("--backend", choices=BACKEND_NAMES, default="serial")
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--flush-size", type=int, default=None)
    serve.add_argument("--ingress-lanes", type=int, default=1,
                       help="partitioned ingest lane threads (clamped to "
                            "--planes; 1 = classic single-threaded ingress)")
    serve.add_argument("--lane-transport", choices=("ring", "pipe"),
                       default="ring",
                       help="lane->worker hand-off on the process backend: "
                            "zero-copy shared-memory rings (default) or the "
                            "classic pickled pipe")
    serve.add_argument("--worker-recovery", action="store_true",
                       help="on the process backend, respawn dead workers "
                            "and replay their planes from snapshot+journal")
    serve.add_argument("--worker-checkpoint-every", type=int, default=64)
    serve.add_argument("--worker-timeout", type=float, default=30.0)
    serve.add_argument("--window", type=float, default=900.0)
    serve.add_argument("--learn-rules", action="store_true")
    serve.add_argument("--qoa", action="store_true")
    serve.add_argument("--detect", action="store_true",
                       help="run the online anti-pattern detectors "
                            "(state survives checkpoint/restore)")
    serve.add_argument("--adaptive-thresholds", action="store_true",
                       help="with --learn-rules: per-(service, region) "
                            "adaptive noisiness baselines")
    serve.add_argument("--checkpoint-every", type=int, default=4096,
                       help="snapshot cadence in ingested events (written at "
                            "the next natural flush barrier)")
    serve.add_argument("--retain", type=int, default=3,
                       help="checkpoints kept on disk")
    serve.add_argument("--journal-mode", choices=("lazy", "batch", "sync"),
                       default="lazy",
                       help="journal durability tier: lazy (snapshot-anchored,"
                            " re-feed the tail from the source after a hard "
                            "kill), batch (write-ahead per batch, survives "
                            "process death), sync (fsync everything, survives "
                            "host death)")
    serve.add_argument("--sync-journal", action="store_true",
                       help="shorthand for --journal-mode sync")
    serve.add_argument("--batch-size", type=int, default=256,
                       help="ingest batch size for replay/stdin sources")
    serve.add_argument("--limit", type=int, default=None,
                       help="replay at most this many events then stop "
                            "gracefully (kill/restore drills)")
    serve.add_argument("--stdin", action="store_true",
                       help="ingest JSON alerts from stdin (one per line) "
                            "instead of replaying the trace")
    serve.add_argument("--listen", type=_parse_endpoint, default=None,
                       metavar="HOST:PORT",
                       help="ingest JSON alerts over a line-protocol socket "
                            "instead of replaying the trace "
                            "(the line STATS queries live status)")
    serve.add_argument("--no-drain", action="store_true",
                       help="on a clean end of input, snapshot and stop "
                            "instead of draining (keeps the stream "
                            "resumable)")

    ops = sub.add_parser(
        "ops",
        help="operator analytics over a service directory "
             "(stats.json or the newest checkpoint)",
    )
    ops.add_argument("--data-dir", required=True, help="service directory")
    ops.add_argument("--view", default="report",
                     choices=("report", "qoa", "storms", "rules", "planes",
                              "detection"),
                     help="which operator view to render (default: report)")
    ops.add_argument("--from-checkpoint", action="store_true",
                     help="read the newest snapshot instead of stats.json")
    ops.add_argument("--json", action="store_true",
                     help="emit the raw status payload as JSON")

    storm = sub.add_parser("storm", help="regenerate the Figure 3 storm")
    storm.add_argument("--seed", type=int, default=42)

    sub.add_parser("survey", help="run the 18-OCE survey (Figures 2a-2c)")

    lint = sub.add_parser("lint", help="lint a strategy population (SIII-D)")
    lint.add_argument("--seed", type=int, default=42)
    lint.add_argument("--strategies", type=int, default=400)
    return parser


def _topology_for(seed: int):
    return generate_topology(TopologyConfig(seed=seed))


def _cmd_generate(args) -> int:
    if args.paper_scale:
        scale = TraceScale.paper()
    else:
        base = TraceScale.default()
        days = args.days if args.days is not None else base.days
        n_strategies = args.strategies if args.strategies is not None else base.n_strategies
        scale = TraceScale(
            days=days,
            n_strategies=n_strategies,
            target_total_alerts=max(
                int(base.alerts_per_strategy_per_day * days * n_strategies), 1
            ),
        )
    topology = _topology_for(args.seed)
    trace = generate_trace(TraceConfig(seed=args.seed, scale=scale), topology)
    save_trace(trace, args.out)
    print(compute_trace_stats(trace.alerts).render())
    print(f"saved to {args.out}")
    return 0


def _load(args):
    trace = load_trace(args.trace)
    seed = args.seed if args.seed is not None else trace.seed
    return trace, _topology_for(seed)


def _cmd_mine(args) -> int:
    trace, topology = _load(args)
    print(run_mining_pipeline(trace, topology.graph).render())
    return 0


def _cmd_mitigate(args) -> int:
    trace, topology = _load(args)
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6, seed=trace.seed)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(trace)
    print(report.render())
    return 0


def _learner_config_for(args) -> LearnerConfig | None:
    """Adaptive-threshold learner config, or ``None`` for the defaults."""
    if not getattr(args, "adaptive_thresholds", False):
        return None
    if not args.learn_rules:
        raise SystemExit("--adaptive-thresholds requires --learn-rules")
    return LearnerConfig(adaptive=True)


def _cmd_stream(args) -> int:
    trace, topology = _load(args)
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6, seed=trace.seed)
    # With online learning the gateway starts from an *empty* rule table
    # and derives its own; otherwise it consumes the batch-derived rules.
    batch_blocker = MitigationPipeline.derive_blocker(trace)
    blocker = AlertBlocker() if args.learn_rules else batch_blocker
    gateway = AlertGateway(
        topology.graph,
        blocker=blocker,
        rulebook=rulebook,
        n_shards=args.shards,
        n_planes=args.planes,
        backend=args.backend,
        n_workers=args.workers,
        flush_size=args.flush_size,
        ingress_lanes=args.ingress_lanes,
        lane_transport=args.lane_transport,
        worker_recovery=args.worker_recovery,
        worker_checkpoint_every=args.worker_checkpoint_every,
        worker_timeout=args.worker_timeout,
        aggregation_window=args.window,
        correlation_window=args.window,
        retain_artifacts=False,
        learn_rules=args.learn_rules,
        learner_config=_learner_config_for(args),
        enable_qoa=args.qoa,
        detect_antipatterns=args.detect,
    )
    schedule: list[tuple[str, int, int]] = []
    if args.scale_at:
        # Specs are validated (and parsed to tuples) by argparse.
        for event_index, planes in args.scale_at:
            schedule.append(("scale", event_index, planes))
    if args.rebalance_to is not None or schedule:
        alerts = list(trace.iter_ordered())
        if args.rebalance_to is not None:
            schedule.append(("rebalance", len(alerts) // 2, args.rebalance_to))
        schedule.sort(key=lambda item: item[1])
        cursor = 0
        for action, event_index, target in schedule:
            cut = min(max(event_index, cursor), len(alerts))
            gateway.ingest_batch(alerts[cursor:cut])
            cursor = cut
            if action == "scale":
                moved = gateway.scale_planes(target)
                print(f"scaled to {target} plane(s) at event {cut}: "
                      f"{len(moved)} region(s) migrated")
            else:
                gateway.rebalance(target)
        gateway.ingest_batch(alerts[cursor:])
    else:
        gateway.ingest_batch(trace.iter_ordered())
    stats = gateway.drain()
    print(stats.render())
    if args.reconcile:
        report = MitigationPipeline(
            topology.graph,
            rulebook=rulebook,
            aggregation_window=args.window,
            correlation_window=args.window,
        ).run(trace, blocker=batch_blocker)
        if args.learn_rules:
            # Online-learned rules legitimately diverge from batch-derived
            # ones; quantify instead of demanding equality.
            divergence = rule_set_divergence(
                gateway.learner.ever_promoted,
                {rule.strategy_id for rule in batch_blocker.rules},
            )
            delta = stats.blocked_alerts - report.blocked_alerts
            print(
                f"divergence vs batch-derived rules: "
                f"precision {divergence['precision']:.2f}  "
                f"recall {divergence['recall']:.2f}  "
                f"blocked-volume delta {delta:+,} "
                f"({stats.blocked_alerts:,} online vs "
                f"{report.blocked_alerts:,} batch)"
            )
            return 0
        mismatches = stats.reconcile(report)
        if mismatches:
            for stage, (online, batch) in mismatches.items():
                print(f"MISMATCH {stage}: gateway={online} batch={batch}")
            return 1
        print("reconciliation: gateway matches batch pipeline exactly")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import AlertGatewayService

    trace, topology = _load(args)
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6, seed=trace.seed)
    blocker = (
        AlertBlocker() if args.learn_rules
        else MitigationPipeline.derive_blocker(trace)
    )
    service = AlertGatewayService(
        topology.graph,
        args.data_dir,
        blocker=blocker,
        rulebook=rulebook,
        checkpoint_every=args.checkpoint_every,
        retain_checkpoints=args.retain,
        journal_mode=args.journal_mode,
        sync_journal=args.sync_journal,
        n_shards=args.shards,
        n_planes=args.planes,
        backend=args.backend,
        n_workers=args.workers,
        flush_size=args.flush_size,
        ingress_lanes=args.ingress_lanes,
        lane_transport=args.lane_transport,
        worker_recovery=args.worker_recovery,
        worker_checkpoint_every=args.worker_checkpoint_every,
        worker_timeout=args.worker_timeout,
        aggregation_window=args.window,
        correlation_window=args.window,
        retain_artifacts=False,
        learn_rules=args.learn_rules,
        learner_config=_learner_config_for(args),
        enable_qoa=args.qoa,
        detect_antipatterns=args.detect,
    )
    outcome = service.start()
    position = service.input_alerts
    print(f"service {outcome} at {args.data_dir} "
          f"(epoch {service.recovered_from if outcome == 'restored' else 0}, "
          f"{position:,} events already ingested)")
    service.install_signal_handlers()
    try:
        if args.listen is not None:
            host, port = service.serve_socket(*args.listen)
            print(f"listening on {host}:{port} "
                  f"(JSON alert per line; STATS for status) — "
                  f"SIGTERM/SIGINT to stop")
            import time as _time
            while not service.stop_requested:
                _time.sleep(0.2)
            end = "stopped"
        elif args.stdin:
            end = service.run_lines(sys.stdin, batch_size=args.batch_size)
        else:
            alerts = list(trace.iter_ordered())
            if position:
                alerts = alerts[position:]
                print(f"resuming replay at event {position:,}")
            if args.limit is not None and args.limit < len(alerts):
                alerts = alerts[:args.limit]
                truncated = True
            else:
                truncated = False
            end = service.run_stream(alerts, batch_size=args.batch_size)
            if truncated and end == "exhausted":
                # --limit cut the replay short: the *stream* is not over,
                # only this drill leg — keep it resumable.
                end = "paused"
    except KeyboardInterrupt:
        end = "stopped"
    if end == "exhausted" and not args.no_drain:
        stats = service.stop(drain=True)
        print(stats.render())
        print(f"stream drained; final stats in "
              f"{Path(args.data_dir) / 'stats.json'}")
    else:
        service.stop()
        print(f"service stopped ({end}); snapshot written — rerun to resume")
    return 0


def _cmd_ops(args) -> int:
    from repro.serving import (
        CheckpointLoader,
        render_detection,
        render_ops_report,
        render_plane_health,
        render_qoa_scoreboard,
        render_rule_history,
        render_storm_timeline,
        status_of_checkpoint,
    )

    data_dir = Path(args.data_dir)
    status_path = data_dir / "stats.json"
    if not args.from_checkpoint and status_path.exists():
        status = json.loads(status_path.read_text())
        source = str(status_path)
    else:
        checkpoint = CheckpointLoader(data_dir).latest()
        if checkpoint is None:
            print(f"no stats.json or checkpoint found in {data_dir}")
            return 2
        status = status_of_checkpoint(checkpoint)
        source = f"checkpoint epoch {checkpoint.seq}"
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    view = {
        "report": render_ops_report,
        "qoa": render_qoa_scoreboard,
        "storms": render_storm_timeline,
        "rules": render_rule_history,
        "planes": render_plane_health,
        "detection": render_detection,
    }[args.view]
    print(f"[{source}]")
    print(view(status))
    return 0


def _cmd_qoa(args) -> int:
    trace, _ = _load(args)
    print(evaluate_qoa_pipeline(trace, seed=trace.seed).render())
    return 0


def _cmd_storm(args) -> int:
    config = StormConfig(seed=args.seed)
    topology = _topology_for(args.seed)
    storm = build_representative_storm(config, topology)
    first_hour = config.day * 24 + config.start_hour
    hours = list(range(first_hour, first_hour + config.n_hours))
    series: dict[str, list[int]] = {"HAProxy": [], "Kafka": [], "Others": []}
    for hour in hours:
        bucket = [a for a in storm.alerts if hour_bucket(a.occurred_at) == hour]
        haproxy = sum(1 for a in bucket if a.strategy_id == "strategy-haproxy")
        kafka = sum(1 for a in bucket if a.strategy_id == "strategy-kafka")
        series["HAProxy"].append(haproxy)
        series["Kafka"].append(kafka)
        series["Others"].append(len(bucket) - haproxy - kafka)
    print(render_hourly_series(
        f"Figure 3 storm ({len(storm)} alerts, "
        f"{len(storm.by_strategy())} strategies)",
        [h % 24 for h in hours], series,
    ))
    return 0


def _cmd_survey(args) -> int:
    results = SurveyInstrument(seed=42).run()
    impact_rows = {
        pattern: results.counts(f"impact/{pattern}", IMPACT_OPTIONS)
        for pattern in sorted(paper.ANTIPATTERN_IMPACT)
    }
    print(render_bar_survey("Figure 2(a) — anti-pattern impact",
                            impact_rows, IMPACT_OPTIONS))
    sop_rows = {
        question: results.counts(f"sop/{question}", SOP_OPTIONS)
        for question in sorted(paper.SOP_HELPFULNESS)
    }
    print()
    print(render_bar_survey("Figure 2(b) — SOP helpfulness", sop_rows, SOP_OPTIONS))
    reaction_rows = {
        reaction: results.counts(f"reaction/{reaction}", REACTION_OPTIONS)
        for reaction in sorted(paper.REACTION_EFFECTIVENESS)
    }
    print()
    print(render_bar_survey("Figure 2(c) — reaction effectiveness",
                            reaction_rows, REACTION_OPTIONS))
    return 0


def _cmd_lint(args) -> int:
    topology = _topology_for(args.seed)
    strategies = StrategyFactory(topology, seed=args.seed).build(args.strategies)
    report = GuidelineChecker(topology).review(strategies)
    print(report.render())
    for violation in report.violations[:10]:
        print(f"  [{violation.aspect}] {violation.strategy_id}: {violation.message}")
    if len(report.violations) > 10:
        print(f"  ... and {len(report.violations) - 10} more")
    return 0


if __name__ == "__main__":
    sys.exit(main())
