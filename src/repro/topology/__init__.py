"""Synthetic cloud topology: regions, services, microservices, dependencies.

The paper's study system is a production cloud with 11 services and 192
microservices spread over multiple regions.  This package generates a
topology with the same shape: services decompose into microservices,
microservices form a layered dependency DAG (frontends call platform
services, platform services call infrastructure), and every microservice
is deployed in one or more regions.

The dependency DAG is what the collective anti-pattern A6 (cascading
alerts) and mitigation R3 (topological alert correlation) operate on.
"""

from repro.topology.entities import (
    DataCenter,
    Deployment,
    Instance,
    Microservice,
    Region,
    Service,
)
from repro.topology.graph import DependencyGraph
from repro.topology.generator import CloudTopology, TopologyConfig, generate_topology

__all__ = [
    "Region",
    "DataCenter",
    "Service",
    "Microservice",
    "Instance",
    "Deployment",
    "DependencyGraph",
    "TopologyConfig",
    "CloudTopology",
    "generate_topology",
]
