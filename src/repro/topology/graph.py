"""Microservice dependency graph.

Edges point from callers to callees: an edge ``A -> B`` means microservice
``A`` depends on (calls) ``B``.  Anomalies therefore propagate *against*
edge direction — when ``B`` degrades, its dependents ``A`` may degrade
next.  The graph is required to stay acyclic, matching the layered
architecture the generator produces.
"""

from __future__ import annotations

from collections import deque
import networkx as nx

from repro.common.errors import ValidationError

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """An acyclic caller→callee graph over microservice names."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._neighbourhoods: dict[tuple[str, int | None], frozenset[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_microservice(self, name: str, **attributes: object) -> None:
        """Register a node; repeated calls merge attributes."""
        if not name:
            raise ValidationError("microservice name must be non-empty")
        self._graph.add_node(name, **attributes)

    def add_dependency(self, caller: str, callee: str) -> None:
        """Add ``caller -> callee``; rejects self-loops, unknown nodes, and cycles."""
        if caller == callee:
            raise ValidationError(f"self-dependency on {caller!r} is not allowed")
        for node in (caller, callee):
            if node not in self._graph:
                raise ValidationError(f"unknown microservice {node!r}")
        self._graph.add_edge(caller, callee)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(caller, callee)
            raise ValidationError(f"dependency {caller!r} -> {callee!r} would create a cycle")
        self._neighbourhoods.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def microservices(self) -> list[str]:
        """All node names, in insertion order."""
        return list(self._graph.nodes)

    @property
    def edge_count(self) -> int:
        """Number of dependency edges."""
        return self._graph.number_of_edges()

    def attributes(self, name: str) -> dict[str, object]:
        """Node attributes supplied at :meth:`add_microservice` time."""
        self._require(name)
        return dict(self._graph.nodes[name])

    def dependencies(self, name: str) -> list[str]:
        """Direct callees of ``name`` (what it depends on)."""
        self._require(name)
        return list(self._graph.successors(name))

    def dependents(self, name: str) -> list[str]:
        """Direct callers of ``name`` (what depends on it)."""
        self._require(name)
        return list(self._graph.predecessors(name))

    def upstream_impact(self, name: str, max_depth: int | None = None) -> dict[str, int]:
        """All transitive dependents of ``name`` with their hop distance.

        This is the blast radius of a failure in ``name``: the
        microservices whose calls (directly or transitively) flow into it.
        ``max_depth`` bounds the traversal; ``None`` means unbounded.
        """
        return self._bfs(name, forward=False, max_depth=max_depth)

    def downstream_dependencies(self, name: str, max_depth: int | None = None) -> dict[str, int]:
        """All transitive callees of ``name`` with hop distance."""
        return self._bfs(name, forward=True, max_depth=max_depth)

    def topological_order(self) -> list[str]:
        """Nodes ordered callers-before-callees."""
        return list(nx.topological_sort(self._graph))

    def shortest_dependency_distance(self, source: str, target: str) -> int | None:
        """Hops from ``source`` to ``target`` along dependency edges, or ``None``."""
        self._require(source)
        self._require(target)
        try:
            return nx.shortest_path_length(self._graph, source, target)
        except nx.NetworkXNoPath:
            return None

    def related_within(self, name: str, max_depth: int | None = None) -> frozenset[str]:
        """All nodes with a dependency path to or from ``name`` within ``max_depth``.

        The neighbourhood is cached per (node, depth) — the correlation
        hot loop asks "are these two related?" for the same nodes over
        and over, and a bounded BFS answers every such query for one node
        at once.  Mutating the graph invalidates the cache.
        """
        self._require(name)
        key = (name, max_depth)
        cached = self._neighbourhoods.get(key)
        if cached is None:
            cached = frozenset(self._bfs(name, forward=True, max_depth=max_depth)) | \
                frozenset(self._bfs(name, forward=False, max_depth=max_depth))
            self._neighbourhoods[key] = cached
        return cached

    def are_related(self, first: str, second: str, max_depth: int | None = None) -> bool:
        """Whether a dependency path exists between the two nodes (either way)."""
        self._require(second)
        return first == second or second in self.related_within(first, max_depth)

    def subgraph_services(self, service_of: dict[str, str]) -> nx.DiGraph:
        """Collapse to a service-level graph given a microservice→service map."""
        collapsed = nx.DiGraph()
        for node in self._graph.nodes:
            collapsed.add_node(service_of.get(node, node))
        for caller, callee in self._graph.edges:
            source = service_of.get(caller, caller)
            target = service_of.get(callee, callee)
            if source != target:
                collapsed.add_edge(source, target)
        return collapsed

    def to_networkx(self) -> nx.DiGraph:
        """A defensive copy of the underlying graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require(self, name: str) -> None:
        if name not in self._graph:
            raise ValidationError(f"unknown microservice {name!r}")

    def _bfs(self, name: str, forward: bool, max_depth: int | None) -> dict[str, int]:
        self._require(name)
        neighbours = self._graph.successors if forward else self._graph.predecessors
        distances: dict[str, int] = {}
        queue: deque[tuple[str, int]] = deque([(name, 0)])
        while queue:
            node, depth = queue.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for neighbour in neighbours(node):
                if neighbour not in distances:
                    distances[neighbour] = depth + 1
                    queue.append((neighbour, depth + 1))
        return distances


def validate_layering(graph: DependencyGraph, layer_of: dict[str, int]) -> list[str]:
    """Return edges that violate "callers live in higher-or-equal layers".

    Utility for tests: the generator promises that dependencies never point
    from lower layers up to higher ones.
    """
    violations = []
    for caller in graph.microservices:
        for callee in graph.dependencies(caller):
            if layer_of[caller] < layer_of[callee]:
                violations.append(f"{caller} -> {callee}")
    return violations
