"""Entity records for the simulated cloud.

The hierarchy mirrors the paper's terminology: a *cloud system* consists
of *services* (Block Storage, Database, ...), each split into
*microservices*; microservices are deployed as *instances* in
*datacenters* grouped into *regions*.  Alert location strings follow the
paper's Table II style (``Region=X;DC=1;...``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError

__all__ = ["Region", "DataCenter", "Service", "Microservice", "Instance", "Deployment"]


@dataclass(frozen=True, slots=True)
class Region:
    """A geographic region, e.g. ``region-A``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("region name must be non-empty")


@dataclass(frozen=True, slots=True)
class DataCenter:
    """A datacenter within a region."""

    name: str
    region: str

    def __post_init__(self) -> None:
        if not self.name or not self.region:
            raise ValidationError("datacenter name and region must be non-empty")


@dataclass(frozen=True, slots=True)
class Service:
    """A user-facing cloud service composed of microservices.

    ``layer`` encodes the service's depth in the dependency stack:
    0 = infrastructure (storage, network), increasing towards user-facing
    frontends.  ``archetype`` is a coarse category used when assigning
    telemetry profiles and alert strategies.
    """

    name: str
    layer: int
    archetype: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("service name must be non-empty")
        if self.layer < 0:
            raise ValidationError(f"layer must be >= 0, got {self.layer}")


@dataclass(frozen=True, slots=True)
class Microservice:
    """One independently deployable unit of a service."""

    name: str
    service: str
    layer: int
    role: str = "worker"

    def __post_init__(self) -> None:
        if not self.name or not self.service:
            raise ValidationError("microservice name and service must be non-empty")
        if self.layer < 0:
            raise ValidationError(f"layer must be >= 0, got {self.layer}")


@dataclass(frozen=True, slots=True)
class Instance:
    """A running copy of a microservice placed in a datacenter."""

    name: str
    microservice: str
    datacenter: str
    region: str

    def location(self) -> str:
        """Location string in the paper's Table II format."""
        return f"Region={self.region};DC={self.datacenter};Instance={self.name}"


@dataclass(slots=True)
class Deployment:
    """The set of instances of one microservice in one region."""

    microservice: str
    region: str
    instances: list[Instance] = field(default_factory=list)

    def __post_init__(self) -> None:
        for instance in self.instances:
            if instance.microservice != self.microservice:
                raise ValidationError(
                    f"instance {instance.name} belongs to {instance.microservice}, "
                    f"not {self.microservice}"
                )
            if instance.region != self.region:
                raise ValidationError(
                    f"instance {instance.name} is in region {instance.region}, "
                    f"not {self.region}"
                )

    @property
    def size(self) -> int:
        """Number of instances in this deployment."""
        return len(self.instances)
