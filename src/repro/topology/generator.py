"""Layered topology generator.

Produces a cloud with the paper's shape — 11 services decomposed into 192
microservices by default — as a layered DAG: frontend services call
platform services, platform services call infrastructure.  All randomness
comes from a named substream of the root seed, so a given
:class:`TopologyConfig` always yields the identical cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.rng import derive_rng
from repro.common.validation import require_positive
from repro.topology.entities import DataCenter, Deployment, Instance, Microservice, Region, Service
from repro.topology.graph import DependencyGraph

__all__ = ["TopologyConfig", "CloudTopology", "generate_topology", "SERVICE_CATALOG"]

#: The 11 services of the study system: (name, layer, archetype, weight).
#: Weights set each service's share of the microservice budget.
SERVICE_CATALOG: tuple[tuple[str, int, str, float], ...] = (
    ("block-storage", 0, "storage", 1.2),
    ("object-storage", 0, "storage", 1.0),
    ("virtual-network", 0, "network", 1.3),
    ("identity", 1, "platform", 0.7),
    ("database", 1, "database", 1.2),
    ("message-queue", 1, "middleware", 0.8),
    ("container-engine", 1, "platform", 1.1),
    ("elastic-compute", 2, "compute", 1.4),
    ("load-balancer", 2, "network", 0.8),
    ("api-gateway", 3, "frontend", 0.8),
    ("web-console", 3, "frontend", 0.7),
)

#: Microservice roles, cycled within each service.  ``api`` roles are the
#: preferred inter-service dependency targets.
_ROLES: tuple[str, ...] = (
    "api", "controller", "scheduler", "worker", "store",
    "agent", "replicator", "proxy", "janitor", "metering",
)


@dataclass(frozen=True, slots=True)
class TopologyConfig:
    """Parameters of the generated cloud.

    Defaults match the paper's study system scale (11 services, 192
    microservices).  ``inter_service_degree`` is the mean number of
    lower-layer dependencies per microservice.
    """

    seed: int = 42
    n_microservices: int = 192
    n_regions: int = 3
    datacenters_per_region: int = 2
    instances_per_deployment: tuple[int, int] = (2, 4)
    inter_service_degree: float = 1.6

    def __post_init__(self) -> None:
        require_positive(self.n_microservices, "n_microservices")
        require_positive(self.n_regions, "n_regions")
        require_positive(self.datacenters_per_region, "datacenters_per_region")
        require_positive(self.inter_service_degree, "inter_service_degree")
        low, high = self.instances_per_deployment
        if not 1 <= low <= high:
            raise ValidationError(
                f"instances_per_deployment must satisfy 1 <= low <= high, "
                f"got {self.instances_per_deployment}"
            )
        if self.n_microservices < len(SERVICE_CATALOG):
            raise ValidationError(
                f"need at least one microservice per service: "
                f"{self.n_microservices} < {len(SERVICE_CATALOG)}"
            )


@dataclass(slots=True)
class CloudTopology:
    """The generated cloud: entities plus the dependency graph."""

    config: TopologyConfig
    services: dict[str, Service]
    microservices: dict[str, Microservice]
    regions: list[Region]
    datacenters: list[DataCenter]
    deployments: list[Deployment]
    graph: DependencyGraph
    service_of: dict[str, str] = field(default_factory=dict)

    def microservices_of(self, service: str) -> list[str]:
        """Names of the microservices belonging to ``service``."""
        if service not in self.services:
            raise ValidationError(f"unknown service {service!r}")
        return [name for name, micro in self.microservices.items() if micro.service == service]

    def deployments_of(self, microservice: str) -> list[Deployment]:
        """Per-region deployments of one microservice."""
        if microservice not in self.microservices:
            raise ValidationError(f"unknown microservice {microservice!r}")
        return [d for d in self.deployments if d.microservice == microservice]

    def region_names(self) -> list[str]:
        """Names of all regions."""
        return [region.name for region in self.regions]

    @property
    def instance_count(self) -> int:
        """Total instances across all deployments."""
        return sum(deployment.size for deployment in self.deployments)

    def summary(self) -> str:
        """One-line description, e.g. for bench output headers."""
        return (
            f"{len(self.services)} services, {len(self.microservices)} microservices, "
            f"{self.graph.edge_count} dependencies, {len(self.regions)} regions, "
            f"{self.instance_count} instances"
        )


def _allocate_budget(total: int) -> dict[str, int]:
    """Split ``total`` microservices across the catalog by weight.

    Every service receives at least one; remainders go to the heaviest
    services first, deterministically.
    """
    weight_sum = sum(weight for _, _, _, weight in SERVICE_CATALOG)
    allocation: dict[str, int] = {}
    fractional: list[tuple[float, str]] = []
    assigned = 0
    for name, _, _, weight in SERVICE_CATALOG:
        exact = total * weight / weight_sum
        count = max(1, int(exact))
        allocation[name] = count
        assigned += count
        fractional.append((exact - count, name))
    fractional.sort(reverse=True)
    index = 0
    while assigned < total:
        _, name = fractional[index % len(fractional)]
        allocation[name] += 1
        assigned += 1
        index += 1
    while assigned > total:
        _, name = fractional[(index := index + 1) % len(fractional)]
        if allocation[name] > 1:
            allocation[name] -= 1
            assigned -= 1
    return allocation


def generate_topology(config: TopologyConfig | None = None) -> CloudTopology:
    """Build the full cloud for ``config`` (defaults to paper scale)."""
    config = config or TopologyConfig()
    rng = derive_rng(config.seed, "topology")

    services = {
        name: Service(name=name, layer=layer, archetype=archetype)
        for name, layer, archetype, _ in SERVICE_CATALOG
    }
    allocation = _allocate_budget(config.n_microservices)

    graph = DependencyGraph()
    microservices: dict[str, Microservice] = {}
    service_of: dict[str, str] = {}
    for service_name, count in allocation.items():
        service = services[service_name]
        for index in range(count):
            role = _ROLES[index % len(_ROLES)]
            name = f"{service_name}-{role}-{index:02d}"
            micro = Microservice(name=name, service=service_name, layer=service.layer, role=role)
            microservices[name] = micro
            service_of[name] = service_name
            graph.add_microservice(name, service=service_name, layer=service.layer, role=role)

    _wire_intra_service(graph, microservices, allocation)
    _wire_inter_service(graph, microservices, services, config, rng)

    regions = [Region(f"region-{chr(ord('A') + i)}") for i in range(config.n_regions)]
    datacenters = [
        DataCenter(name=f"{region.name}-dc{j + 1}", region=region.name)
        for region in regions
        for j in range(config.datacenters_per_region)
    ]
    deployments = _place_instances(microservices, regions, datacenters, config, rng)

    return CloudTopology(
        config=config,
        services=services,
        microservices=microservices,
        regions=regions,
        datacenters=datacenters,
        deployments=deployments,
        graph=graph,
        service_of=service_of,
    )


def _wire_intra_service(
    graph: DependencyGraph,
    microservices: dict[str, Microservice],
    allocation: dict[str, int],
) -> None:
    """Wire each service internally: the api fronts a chain of workers.

    Within a service the microservices are ordered by index; each one
    depends on the next (api -> controller -> worker -> ...), forming the
    call chain a request traverses inside the service.
    """
    for service_name in allocation:
        members = sorted(
            name for name, micro in microservices.items() if micro.service == service_name
        )
        for caller, callee in zip(members, members[1:]):
            graph.add_dependency(caller, callee)


def _wire_inter_service(
    graph: DependencyGraph,
    microservices: dict[str, Microservice],
    services: dict[str, Service],
    config: TopologyConfig,
    rng,
) -> None:
    """Wire dependencies from higher layers onto lower-layer api nodes."""
    api_nodes_by_layer: dict[int, list[str]] = {}
    for name, micro in microservices.items():
        if micro.role == "api":
            api_nodes_by_layer.setdefault(micro.layer, []).append(name)
    for layer in api_nodes_by_layer:
        api_nodes_by_layer[layer].sort()

    for name in sorted(microservices):
        micro = microservices[name]
        lower_apis = [
            api
            for layer, apis in api_nodes_by_layer.items()
            if layer < micro.layer
            for api in apis
        ]
        if not lower_apis:
            continue
        degree = int(rng.poisson(config.inter_service_degree))
        degree = min(max(degree, 1), len(lower_apis))
        targets = rng.choice(len(lower_apis), size=degree, replace=False)
        for target_index in sorted(int(t) for t in targets):
            callee = lower_apis[target_index]
            if callee != name:
                graph.add_dependency(name, callee)


def _place_instances(
    microservices: dict[str, Microservice],
    regions: list[Region],
    datacenters: list[DataCenter],
    config: TopologyConfig,
    rng,
) -> list[Deployment]:
    """Deploy every microservice in every region, instances spread over DCs."""
    low, high = config.instances_per_deployment
    by_region: dict[str, list[DataCenter]] = {}
    for datacenter in datacenters:
        by_region.setdefault(datacenter.region, []).append(datacenter)

    deployments = []
    for name in sorted(microservices):
        for region in regions:
            dcs = by_region[region.name]
            size = int(rng.integers(low, high + 1))
            instances = [
                Instance(
                    name=f"{name}.{region.name}.{i}",
                    microservice=name,
                    datacenter=dcs[i % len(dcs)].name,
                    region=region.name,
                )
                for i in range(size)
            ]
            deployments.append(
                Deployment(microservice=name, region=region.name, instances=instances)
            )
    return deployments
