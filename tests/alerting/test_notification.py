"""Tests for notification routing."""

from repro.alerting.alert import Alert, Severity
from repro.alerting.notification import MEDIUM_BY_SEVERITY, NotificationRouter


def make_alert(severity=Severity.CRITICAL, service="database"):
    return Alert(
        alert_id="alert-1",
        strategy_id="s-1",
        strategy_name="n",
        title="t",
        description="d",
        severity=severity,
        service=service,
        microservice="m",
        region="region-A",
        datacenter="dc",
        channel="metric",
        occurred_at=0.0,
    )


class TestRouting:
    def test_default_team(self):
        router = NotificationRouter(default_team="fallback")
        assert router.team_for(make_alert()) == "fallback"

    def test_assigned_team(self):
        router = NotificationRouter()
        router.assign("database", "team-db")
        assert router.team_for(make_alert()) == "team-db"

    def test_medium_by_severity(self):
        router = NotificationRouter()
        for severity, medium in MEDIUM_BY_SEVERITY.items():
            notification = router.dispatch(make_alert(severity=severity), 10.0)
            assert notification.medium == medium

    def test_critical_pages_by_phone(self):
        assert MEDIUM_BY_SEVERITY[Severity.CRITICAL] == "phone"
        assert MEDIUM_BY_SEVERITY[Severity.WARNING] == "email"

    def test_log_and_interrupts(self):
        router = NotificationRouter()
        router.assign("database", "team-db")
        for _ in range(3):
            router.dispatch(make_alert(), 10.0)
        router.dispatch(make_alert(service="web"), 10.0)
        interrupts = router.interrupts_per_team()
        assert interrupts["team-db"] == 3
        assert interrupts["default-team"] == 1
        assert len(router.log) == 4
