"""Tests for the alert book (dedup, cooldown, clearance)."""

import pytest

from repro.alerting.alert import AlertState, Severity
from repro.alerting.lifecycle import AlertBook
from repro.alerting.rules import ProbeRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow


def make_strategy(cooldown=900.0, quality=None):
    return AlertStrategy(
        strategy_id="strategy-000001",
        name="probe_no_heartbeat",
        service="database",
        microservice="database-api-00",
        rule=ProbeRule(),
        severity=Severity.CRITICAL,
        true_severity=Severity.CRITICAL,
        title="database-api-00: process not responding to probes",
        description="The target stopped answering heartbeats.",
        cooldown_seconds=cooldown,
        quality=quality or StrategyQuality(),
    )


class TestOpen:
    def test_opens_alert_with_attributes(self):
        book = AlertBook()
        strategy = make_strategy()
        alert = book.open_alert(strategy, "region-A", "dc1", 100.0, fault_id="fault-7")
        assert alert is not None
        assert alert.severity is Severity.CRITICAL
        assert alert.fault_id == "fault-7"
        assert alert.channel == "probe"

    def test_dedup_while_active(self):
        book = AlertBook()
        strategy = make_strategy()
        assert book.open_alert(strategy, "region-A", "dc1", 100.0) is not None
        assert book.open_alert(strategy, "region-A", "dc1", 200.0) is None

    def test_regions_independent(self):
        book = AlertBook()
        strategy = make_strategy()
        assert book.open_alert(strategy, "region-A", "dc1", 100.0) is not None
        assert book.open_alert(strategy, "region-B", "dc1", 100.0) is not None

    def test_cooldown_blocks_refire(self):
        book = AlertBook()
        strategy = make_strategy(cooldown=900.0)
        book.open_alert(strategy, "region-A", "dc1", 100.0)
        book.auto_clear(strategy.strategy_id, "region-A", 200.0)
        assert book.open_alert(strategy, "region-A", "dc1", 500.0) is None
        assert book.open_alert(strategy, "region-A", "dc1", 1200.0) is not None

    def test_repeat_prone_strategy_refires_quickly(self):
        book = AlertBook()
        strategy = make_strategy(cooldown=900.0,
                                 quality=StrategyQuality(repeat_proneness=0.9))
        book.open_alert(strategy, "region-A", "dc1", 100.0)
        book.auto_clear(strategy.strategy_id, "region-A", 200.0)
        # Effective cooldown collapsed to 90s.
        assert book.open_alert(strategy, "region-A", "dc1", 350.0) is not None


class TestClear:
    def test_auto_clear(self):
        book = AlertBook()
        strategy = make_strategy()
        alert = book.open_alert(strategy, "region-A", "dc1", 100.0)
        cleared = book.auto_clear(strategy.strategy_id, "region-A", 400.0)
        assert cleared is alert
        assert alert.state is AlertState.CLEARED_AUTO

    def test_auto_clear_without_active_is_noop(self):
        book = AlertBook()
        assert book.auto_clear("strategy-000001", "region-A", 100.0) is None

    def test_manual_clear(self):
        book = AlertBook()
        strategy = make_strategy()
        alert = book.open_alert(strategy, "region-A", "dc1", 100.0)
        book.manual_clear(alert.alert_id, 400.0)
        assert alert.state is AlertState.CLEARED_MANUAL
        assert not book.is_active(strategy.strategy_id, "region-A")

    def test_manual_clear_unknown_rejected(self):
        with pytest.raises(ValidationError):
            AlertBook().manual_clear("alert-999999", 100.0)

    def test_manual_clear_twice_rejected(self):
        book = AlertBook()
        alert = book.open_alert(make_strategy(), "region-A", "dc1", 100.0)
        book.manual_clear(alert.alert_id, 200.0)
        with pytest.raises(ValidationError):
            book.manual_clear(alert.alert_id, 300.0)

    def test_clear_all_active(self):
        book = AlertBook()
        strategy = make_strategy()
        book.open_alert(strategy, "region-A", "dc1", 100.0)
        book.open_alert(strategy, "region-B", "dc1", 100.0)
        assert book.clear_all_active(500.0) == 2
        assert book.active_alerts() == []


class TestQueries:
    def test_alerts_in_window(self):
        book = AlertBook()
        strategy = make_strategy(cooldown=0.0)
        book.open_alert(strategy, "region-A", "dc1", 100.0)
        book.auto_clear(strategy.strategy_id, "region-A", 150.0)
        book.open_alert(strategy, "region-A", "dc1", 5000.0)
        inside = book.alerts_in(TimeWindow(0, 1000.0))
        assert len(inside) == 1

    def test_by_strategy_and_counts(self):
        book = AlertBook()
        strategy = make_strategy(cooldown=0.0)
        book.open_alert(strategy, "region-A", "dc1", 100.0)
        book.auto_clear(strategy.strategy_id, "region-A", 150.0)
        book.open_alert(strategy, "region-A", "dc1", 200.0)
        grouped = book.by_strategy()
        assert len(grouped[strategy.strategy_id]) == 2
        counts = book.counts_by_state()
        assert counts[AlertState.CLEARED_AUTO] == 1
        assert counts[AlertState.ACTIVE] == 1

    def test_get(self):
        book = AlertBook()
        alert = book.open_alert(make_strategy(), "region-A", "dc1", 100.0)
        assert book.get(alert.alert_id) is alert
        with pytest.raises(ValidationError):
            book.get("nope")
