"""Tests for the monitoring engine on the simulation kernel."""

import pytest

from repro.alerting.alert import AlertState, Severity
from repro.alerting.engine import MonitoringConfig, MonitoringEngine
from repro.alerting.lifecycle import AlertBook
from repro.alerting.notification import NotificationRouter
from repro.alerting.rules import MetricRule, ProbeRule
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.detection.threshold import StaticThresholdDetector
from repro.sim.engine import SimulationEngine
from repro.telemetry.metrics import MetricEffect
from repro.telemetry.probes import OutageWindow


def cpu_strategy(micro, auto_clear=True):
    return AlertStrategy(
        strategy_id=f"strategy-{micro}-cpu",
        name=f"{micro}_cpu_over_90",
        service="whatever",
        microservice=micro,
        rule=MetricRule(metric_name="cpu_util",
                        detector=StaticThresholdDetector(90.0),
                        lookback_seconds=1800.0),
        severity=Severity.MAJOR,
        true_severity=Severity.MAJOR,
        title=f"{micro}: CPU usage continuously over 90%",
        description="CPU saturated.",
        check_interval=60.0,
        auto_clear=auto_clear,
    )


@pytest.fixture()
def target(small_topology):
    return sorted(small_topology.microservices)[0]


class TestMonitoring:
    def test_alert_generated_on_fault(self, hub, target):
        region = hub.topology.region_names()[0]
        hub.metric(target, region, "cpu_util").add_effect(
            MetricEffect(TimeWindow(2 * HOUR, 4 * HOUR), "set", 97.0)
        )
        book = AlertBook()
        engine = MonitoringEngine(hub, book)
        engine.register(cpu_strategy(target))
        sim = SimulationEngine()
        engine.attach(sim, end_time=6 * HOUR)
        sim.run_until(6 * HOUR)
        alerts = [a for a in book.alerts if a.region == region]
        assert len(alerts) >= 1
        first = alerts[0]
        assert 2 * HOUR <= first.occurred_at <= 2 * HOUR + 600.0

    def test_auto_clear_after_recovery(self, hub, target):
        region = hub.topology.region_names()[0]
        hub.metric(target, region, "cpu_util").add_effect(
            MetricEffect(TimeWindow(2 * HOUR, 3 * HOUR), "set", 97.0)
        )
        book = AlertBook()
        engine = MonitoringEngine(hub, book)
        engine.register(cpu_strategy(target))
        sim = SimulationEngine()
        engine.attach(sim, end_time=6 * HOUR)
        sim.run_until(6 * HOUR)
        alerts = [a for a in book.alerts if a.region == region]
        assert alerts
        assert alerts[0].state is AlertState.CLEARED_AUTO
        assert alerts[0].cleared_at < 3 * HOUR + 900.0

    def test_no_fault_no_alert(self, hub, target):
        book = AlertBook()
        engine = MonitoringEngine(hub, book)
        engine.register(cpu_strategy(target))
        sim = SimulationEngine()
        engine.attach(sim, end_time=4 * HOUR)
        sim.run_until(4 * HOUR)
        assert len(book) == 0
        assert engine.checks_performed > 0

    def test_probe_strategy_end_to_end(self, hub, target):
        region = hub.topology.region_names()[0]
        hub.probe(target, region).add_outage(
            OutageWindow(window=TimeWindow(HOUR, 2 * HOUR))
        )
        strategy = AlertStrategy(
            strategy_id="s-probe",
            name=f"{target}_no_heartbeat",
            service="whatever",
            microservice=target,
            rule=ProbeRule(no_response_threshold=120.0),
            severity=Severity.CRITICAL,
            true_severity=Severity.CRITICAL,
            title=f"{target}: process not responding to probes",
            description="No heartbeat.",
            check_interval=60.0,
        )
        book = AlertBook()
        engine = MonitoringEngine(hub, book)
        engine.register(strategy)
        sim = SimulationEngine()
        engine.attach(sim, end_time=3 * HOUR)
        sim.run_until(3 * HOUR)
        regional = [a for a in book.alerts if a.region == region]
        assert regional
        assert regional[0].severity is Severity.CRITICAL

    def test_fault_attribution_recorded(self, hub, target):
        region = hub.topology.region_names()[0]
        hub.metric(target, region, "cpu_util").add_effect(
            MetricEffect(TimeWindow(2 * HOUR, 4 * HOUR), "set", 97.0)
        )
        book = AlertBook()
        engine = MonitoringEngine(
            hub, book,
            fault_attribution=lambda micro, reg, now: "fault-x",
        )
        engine.register(cpu_strategy(target))
        sim = SimulationEngine()
        engine.attach(sim, end_time=5 * HOUR)
        sim.run_until(5 * HOUR)
        assert all(a.fault_id == "fault-x" for a in book.alerts)

    def test_router_notified(self, hub, target):
        region = hub.topology.region_names()[0]
        hub.metric(target, region, "cpu_util").add_effect(
            MetricEffect(TimeWindow(2 * HOUR, 4 * HOUR), "set", 97.0)
        )
        router = NotificationRouter()
        book = AlertBook()
        engine = MonitoringEngine(hub, book, router=router)
        engine.register(cpu_strategy(target))
        sim = SimulationEngine()
        engine.attach(sim, end_time=5 * HOUR)
        sim.run_until(5 * HOUR)
        assert len(router.log) == len([a for a in book.alerts])

    def test_unknown_microservice_rejected(self, hub):
        engine = MonitoringEngine(hub, AlertBook())
        with pytest.raises(ValidationError):
            engine.register(cpu_strategy("ghost"))

    def test_warmup_delays_first_check(self, hub, target):
        book = AlertBook()
        engine = MonitoringEngine(hub, book, config=MonitoringConfig(warmup_seconds=1800.0))
        engine.register(cpu_strategy(target))
        sim = SimulationEngine()
        engine.attach(sim, end_time=1200.0)
        sim.run_until(1200.0)
        assert engine.checks_performed == 0
