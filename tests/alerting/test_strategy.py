"""Tests for alert strategies and quality knobs."""

import pytest

from repro.alerting.alert import Severity
from repro.alerting.rules import LogKeywordRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.common.errors import ValidationError


def make_strategy(quality=None, **overrides):
    defaults = dict(
        strategy_id="strategy-000001",
        name="db_error_logs",
        service="database",
        microservice="database-api-00",
        rule=LogKeywordRule(),
        severity=Severity.MINOR,
        true_severity=Severity.MINOR,
        title="database-api-00: error logs burst detected",
        description="The error-log rate exceeded the rule threshold.",
        quality=quality or StrategyQuality(),
    )
    defaults.update(overrides)
    return AlertStrategy(**defaults)


class TestStrategyQuality:
    def test_clean_by_default(self):
        assert StrategyQuality().is_clean
        assert StrategyQuality().injected_antipatterns() == frozenset()

    def test_a1_injection(self):
        quality = StrategyQuality(title_clarity=0.2)
        assert quality.injected_antipatterns() == {"A1"}

    def test_a2_injection_either_sign(self):
        assert StrategyQuality(severity_bias=1).injected_antipatterns() == {"A2"}
        assert StrategyQuality(severity_bias=-2).injected_antipatterns() == {"A2"}

    def test_a3_injection(self):
        assert StrategyQuality(target_relevance=0.1).injected_antipatterns() == {"A3"}

    def test_a4_injection(self):
        assert StrategyQuality(sensitivity=0.9).injected_antipatterns() == {"A4"}

    def test_a5_injection(self):
        assert StrategyQuality(repeat_proneness=0.9).injected_antipatterns() == {"A5"}

    def test_combined_injection(self):
        quality = StrategyQuality(title_clarity=0.1, severity_bias=1, sensitivity=0.9)
        assert quality.injected_antipatterns() == {"A1", "A2", "A4"}

    def test_boundary_values_not_injected(self):
        quality = StrategyQuality(title_clarity=0.5, sensitivity=0.6,
                                  repeat_proneness=0.6, target_relevance=0.5)
        assert quality.is_clean

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            StrategyQuality(title_clarity=1.5)
        with pytest.raises(ValidationError):
            StrategyQuality(severity_bias=5)


class TestAlertStrategy:
    def test_channel_from_rule(self):
        assert make_strategy().channel == "log"

    def test_effective_cooldown_clean(self):
        strategy = make_strategy(cooldown_seconds=900.0)
        assert strategy.effective_cooldown() == 900.0

    def test_effective_cooldown_repeat_prone(self):
        strategy = make_strategy(
            quality=StrategyQuality(repeat_proneness=0.9), cooldown_seconds=900.0
        )
        assert strategy.effective_cooldown() == pytest.approx(90.0)

    def test_describe_lists_patterns(self):
        strategy = make_strategy(quality=StrategyQuality(title_clarity=0.1))
        assert "A1" in strategy.describe()

    def test_describe_clean(self):
        assert "clean" in make_strategy().describe()

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            make_strategy(strategy_id="")

    def test_bad_check_interval_rejected(self):
        with pytest.raises(ValidationError):
            make_strategy(check_interval=0.0)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValidationError):
            make_strategy(cooldown_seconds=-1.0)
