"""Tests for SOP records and the library."""

import pytest

from repro.alerting.alert import Severity
from repro.alerting.rules import MetricRule
from repro.alerting.sop import SOP, SOPLibrary
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.common.errors import ValidationError
from repro.detection.threshold import StaticThresholdDetector


def make_strategy(clarity=1.0):
    return AlertStrategy(
        strategy_id="s-1",
        name="nginx_cpu_usage_over_80",
        service="elastic-compute",
        microservice="elastic-compute-api-00",
        rule=MetricRule(metric_name="cpu_util",
                        detector=StaticThresholdDetector(80.0)),
        severity=Severity.MAJOR,
        true_severity=Severity.MAJOR,
        title="elastic-compute-api-00: CPU usage continuously over 80%",
        description="CPU usage of the instance exceeded 80%.",
        quality=StrategyQuality(title_clarity=clarity),
    )


class TestSOP:
    def test_render_matches_figure5_shape(self):
        sop = SOP(
            alert_name="nginx_cpu_usage_over_80",
            description="CPU usage of nginx instance is higher than 80%",
            generation_rule="Continuously check the CPU usage.",
            potential_impact="Affects the forwarding of all requests.",
            possible_causes=("The workload is too high.",),
            steps=("Step 1: execute command top -bn1 in the instance.",),
        )
        text = sop.render()
        assert text.startswith("SOP for alert nginx_cpu_usage_over_80")
        assert "Generation Rule" in text
        assert "Potential Impact" in text
        assert "a) The workload is too high." in text

    def test_actionable_requires_steps(self):
        sop = SOP(alert_name="x", description="", generation_rule="",
                  potential_impact="", steps=("1", "2", "3"))
        assert sop.is_actionable
        assert not SOP(alert_name="x", description="", generation_rule="",
                       potential_impact="", steps=("1",)).is_actionable

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            SOP(alert_name="", description="", generation_rule="", potential_impact="")


class TestSOPLibrary:
    def test_build_default_clear_strategy(self):
        library = SOPLibrary()
        sop = library.build_default(make_strategy(clarity=1.0))
        assert sop.is_actionable
        assert "nginx_cpu_usage_over_80" in library
        assert library.lookup("nginx_cpu_usage_over_80") is sop

    def test_build_default_vague_strategy_gets_vague_sop(self):
        library = SOPLibrary()
        sop = library.build_default(make_strategy(clarity=0.1))
        assert not sop.is_actionable
        assert sop.possible_causes == ("Unknown.",)

    def test_lookup_missing_returns_none(self):
        assert SOPLibrary().lookup("nope") is None

    def test_add_replaces(self):
        library = SOPLibrary()
        library.add(SOP(alert_name="x", description="old", generation_rule="",
                        potential_impact=""))
        library.add(SOP(alert_name="x", description="new", generation_rule="",
                        potential_impact=""))
        assert library.lookup("x").description == "new"
        assert len(library) == 1

    def test_channel_specific_steps(self):
        library = SOPLibrary()
        sop = library.build_default(make_strategy())
        assert any("metric dashboard" in step for step in sop.steps)
