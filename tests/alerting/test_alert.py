"""Tests for alert records and lifecycle."""

import pytest

from repro.alerting.alert import Alert, AlertState, Severity
from repro.common.errors import ValidationError
from repro.common.timeutil import MINUTE


def make_alert(**overrides):
    defaults = dict(
        alert_id="alert-000000",
        strategy_id="strategy-000000",
        strategy_name="db_commit_latency_high",
        title="database-api-00: failed to commit changes",
        description="Write transactions are rejected.",
        severity=Severity.CRITICAL,
        service="database",
        microservice="database-api-00",
        region="region-A",
        datacenter="region-A-dc1",
        channel="metric",
        occurred_at=1000.0,
    )
    defaults.update(overrides)
    return Alert(**defaults)


class TestSeverity:
    def test_ordering_most_severe_first(self):
        assert Severity.CRITICAL < Severity.MAJOR < Severity.MINOR < Severity.WARNING

    def test_labels(self):
        assert Severity.CRITICAL.label == "Critical"
        assert Severity.WARNING.label == "Warning"

    def test_escalated_clamps(self):
        assert Severity.MAJOR.escalated() is Severity.CRITICAL
        assert Severity.CRITICAL.escalated() is Severity.CRITICAL

    def test_demoted_clamps(self):
        assert Severity.MINOR.demoted() is Severity.WARNING
        assert Severity.WARNING.demoted() is Severity.WARNING

    def test_multi_step(self):
        assert Severity.WARNING.escalated(3) is Severity.CRITICAL


class TestLifecycle:
    def test_starts_active(self):
        alert = make_alert()
        assert alert.is_active
        assert alert.state is AlertState.ACTIVE

    def test_manual_clear(self):
        alert = make_alert()
        alert.clear(2000.0, manual=True)
        assert alert.state is AlertState.CLEARED_MANUAL
        assert alert.cleared_at == 2000.0

    def test_auto_clear(self):
        alert = make_alert()
        alert.clear(2000.0, manual=False)
        assert alert.state is AlertState.CLEARED_AUTO

    def test_double_clear_rejected(self):
        alert = make_alert()
        alert.clear(2000.0, manual=True)
        with pytest.raises(ValidationError):
            alert.clear(3000.0, manual=True)

    def test_clear_before_occurrence_rejected(self):
        alert = make_alert()
        with pytest.raises(ValidationError):
            alert.clear(500.0, manual=True)

    def test_negative_occurrence_rejected(self):
        with pytest.raises(ValidationError):
            make_alert(occurred_at=-1.0)


class TestDerived:
    def test_duration_after_clear(self):
        alert = make_alert()
        alert.clear(1000.0 + 10 * MINUTE, manual=False)
        assert alert.duration() == 10 * MINUTE

    def test_duration_active_needs_now(self):
        alert = make_alert()
        with pytest.raises(ValidationError):
            alert.duration()
        assert alert.duration(now=1600.0) == 600.0

    def test_transient_definition(self):
        # Paper A4: auto-cleared AND shorter than the intermittent threshold.
        alert = make_alert()
        alert.clear(1000.0 + 5 * MINUTE, manual=False)
        assert alert.is_transient(10 * MINUTE)
        assert not alert.is_transient(2 * MINUTE)

    def test_manually_cleared_never_transient(self):
        alert = make_alert()
        alert.clear(1000.0 + 1 * MINUTE, manual=True)
        assert not alert.is_transient(10 * MINUTE)

    def test_location_format(self):
        location = make_alert().location()
        assert location == "Region=region-A;DC=region-A-dc1;Microservice=database-api-00"

    def test_render_row_contains_attributes(self):
        alert = make_alert()
        alert.clear(1000.0 + 10 * MINUTE, manual=False)
        row = alert.render_row()
        assert "Critical" in row
        assert "database" in row
        assert "10 min" in row
