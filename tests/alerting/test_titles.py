"""Tests for title synthesis and the vagueness lexicon."""

import numpy as np
import pytest

from repro.alerting.titles import (
    MANIFESTATIONS,
    VAGUE_WORDS,
    make_description,
    make_title,
    vagueness_score,
)
from repro.common.errors import ValidationError


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestMakeTitle:
    def test_clear_title_contains_component_and_manifestation(self, rng):
        title = make_title("block-storage", "block-storage-api-00", "disk_full", 0.9, rng)
        assert "block-storage-api-00" in title
        assert "disk full" in title

    def test_vague_title_lacks_manifestation(self, rng):
        title = make_title("elastic-compute", "elastic-compute-api-00", "cpu_overload",
                           0.1, rng)
        assert "CPU" not in title
        assert any(word in title.lower() for word in VAGUE_WORDS) or "attention" in title

    def test_unknown_manifestation_passes_through(self, rng):
        title = make_title("s", "c", "custom weirdness", 0.9, rng)
        assert "custom weirdness" in title

    def test_clarity_bounds_enforced(self, rng):
        with pytest.raises(ValidationError):
            make_title("s", "c", "disk_full", 1.5, rng)

    def test_paper_examples_producible(self):
        # "Instance x is abnormal" style titles must be reachable.
        rng = np.random.default_rng(1)
        titles = {
            make_title("elastic-compute", "x", "cpu_overload", 0.0, rng)
            for _ in range(50)
        }
        assert any("is abnormal" in t for t in titles)


class TestMakeDescription:
    def test_clear_description_names_component(self, rng):
        text = make_description("db-api-00", "commit_failure", 0.9, rng)
        assert "db-api-00" in text
        assert "storage backend" in text

    def test_vague_description(self, rng):
        text = make_description("db-api-00", "commit_failure", 0.1, rng)
        assert "db-api-00" not in text


class TestVaguenessScore:
    def test_vague_text_scores_high(self):
        assert vagueness_score("Instance is abnormal") > 0.3

    def test_clear_text_scores_low(self):
        score = vagueness_score("failed to allocate new blocks, disk full")
        assert score < 0.2

    def test_empty_text_is_maximally_vague(self):
        assert vagueness_score("") == 1.0

    def test_punctuation_stripped(self):
        assert vagueness_score("abnormal!") == 1.0


class TestManifestations:
    def test_all_manifestations_have_title_and_description(self):
        for key, (fragment, description) in MANIFESTATIONS.items():
            assert fragment and description, key
