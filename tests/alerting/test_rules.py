"""Tests for generation rules against live telemetry."""

import pytest

from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, MINUTE, TimeWindow
from repro.detection.threshold import StaticThresholdDetector
from repro.telemetry.logs import LogBurst
from repro.telemetry.metrics import MetricEffect
from repro.telemetry.probes import OutageWindow


@pytest.fixture()
def component(small_topology):
    return sorted(small_topology.microservices)[0], small_topology.region_names()[0]


class TestProbeRule:
    def test_fires_after_threshold(self, hub, component):
        micro, region = component
        hub.probe(micro, region).add_outage(
            OutageWindow(window=TimeWindow(HOUR, 3 * HOUR))
        )
        rule = ProbeRule(no_response_threshold=120.0)
        assert not rule.evaluate(hub, micro, region, HOUR + 60.0)
        assert rule.evaluate(hub, micro, region, HOUR + 180.0)

    def test_quiet_when_responding(self, hub, component):
        micro, region = component
        assert not ProbeRule().evaluate(hub, micro, region, HOUR)

    def test_describe(self):
        assert "120" in ProbeRule(no_response_threshold=120.0).describe()

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValidationError):
            ProbeRule(no_response_threshold=0.0)


class TestLogKeywordRule:
    def test_fires_on_burst(self, hub, component):
        micro, region = component
        hub.logs(micro, region).add_burst(
            LogBurst(window=TimeWindow(HOUR, 2 * HOUR), rate_per_hour=600.0)
        )
        rule = LogKeywordRule(min_count=5, window_seconds=120.0)
        assert rule.evaluate(hub, micro, region, HOUR + 30 * MINUTE)

    def test_quiet_on_background(self, hub, component):
        micro, region = component
        rule = LogKeywordRule(min_count=5, window_seconds=120.0)
        assert not rule.evaluate(hub, micro, region, HOUR)

    def test_describe_matches_paper_phrasing(self):
        text = LogKeywordRule(min_count=5, window_seconds=120.0).describe()
        assert "5 ERRORs" in text
        assert "2 minutes" in text

    def test_bad_count_rejected(self):
        with pytest.raises(ValidationError):
            LogKeywordRule(min_count=0)


class TestMetricRule:
    def test_fires_on_saturated_metric(self, hub, component):
        micro, region = component
        hub.metric(micro, region, "cpu_util").add_effect(
            MetricEffect(TimeWindow(HOUR, 3 * HOUR), "set", 97.0)
        )
        rule = MetricRule(
            metric_name="cpu_util",
            detector=StaticThresholdDetector(90.0),
            lookback_seconds=1800.0,
        )
        assert rule.evaluate(hub, micro, region, 2 * HOUR)

    def test_quiet_on_normal_metric(self, hub, component):
        micro, region = component
        rule = MetricRule(
            metric_name="cpu_util",
            detector=StaticThresholdDetector(90.0),
        )
        assert not rule.evaluate(hub, micro, region, 2 * HOUR)

    def test_interval_longer_than_lookback_rejected(self):
        with pytest.raises(ValidationError):
            MetricRule(metric_name="cpu_util",
                       detector=StaticThresholdDetector(90.0),
                       lookback_seconds=60.0, sample_interval=120.0)

    def test_empty_metric_rejected(self):
        with pytest.raises(ValidationError):
            MetricRule(metric_name="", detector=StaticThresholdDetector(90.0))

    def test_channel_markers(self):
        assert ProbeRule().channel == "probe"
        assert LogKeywordRule().channel == "log"
        assert MetricRule(metric_name="m",
                          detector=StaticThresholdDetector(1.0)).channel == "metric"
