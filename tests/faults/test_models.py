"""Tests for fault records."""

import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.faults.models import Fault, FaultKind


class TestFaultKind:
    def test_gray_kinds(self):
        assert FaultKind.MEMORY_LEAK.is_gray
        assert FaultKind.CPU_OVERLOAD.is_gray
        assert not FaultKind.CRASH.is_gray
        assert not FaultKind.DISK_FULL.is_gray


class TestFault:
    def _fault(self, **overrides):
        defaults = dict(
            fault_id="fault-000001",
            kind=FaultKind.DISK_FULL,
            microservice="block-storage-api-00",
            region="region-A",
            window=TimeWindow(0, HOUR),
        )
        defaults.update(overrides)
        return Fault(**defaults)

    def test_root_fault(self):
        fault = self._fault()
        assert fault.is_root
        assert fault.root_id() == "fault-000001"

    def test_child_fault(self):
        child = self._fault(fault_id="fault-000002", parent_fault_id="fault-000001",
                            root_fault_id="fault-000001", depth=1)
        assert not child.is_root
        assert child.root_id() == "fault-000001"

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            self._fault(fault_id="")

    def test_negative_depth_rejected(self):
        with pytest.raises(ValidationError):
            self._fault(depth=-1)
