"""Tests for named fault scenarios."""

import pytest

from repro.common.timeutil import HOUR
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind
from repro.faults.propagation import CascadeModel
from repro.faults.scenarios import (
    disk_full_cascade,
    flapping_metric_scenario,
    gray_failure_scenario,
)
from repro.telemetry.store import TelemetryHub


@pytest.fixture()
def env(topology):
    hub = TelemetryHub(topology, seed=21)
    injector = FaultInjector(hub)
    cascade = CascadeModel(topology, injector, seed=21)
    return topology, hub, injector, cascade


class TestDiskFullCascade:
    def test_root_on_block_storage(self, env):
        topology, hub, injector, cascade = env
        root, children = disk_full_cascade(topology, injector, cascade, start=HOUR)
        assert root.kind is FaultKind.DISK_FULL
        assert topology.service_of[root.microservice] == "block-storage"

    def test_cascade_reaches_other_services(self, env):
        topology, hub, injector, cascade = env
        root, children = disk_full_cascade(topology, injector, cascade, start=HOUR)
        services = {topology.service_of[c.microservice] for c in children}
        assert len(services) >= 2

    def test_table2_shape_storage_then_database(self, env):
        # Table II: the database fails to commit shortly after the disk
        # full; the database service must be in the blast radius.
        topology, hub, injector, cascade = env
        root, children = disk_full_cascade(topology, injector, cascade, start=HOUR)
        affected = {topology.service_of[c.microservice] for c in children}
        assert "database" in affected


class TestGrayFailure:
    def test_root_is_memory_leak(self, env):
        topology, hub, injector, cascade = env
        root, children = gray_failure_scenario(topology, injector, cascade, start=HOUR)
        assert root.kind is FaultKind.MEMORY_LEAK

    def test_children_anchored_to_eruption(self, env):
        topology, hub, injector, cascade = env
        root, children = gray_failure_scenario(topology, injector, cascade, start=HOUR)
        eruption = root.window.start + 0.8 * root.window.duration
        assert children
        for child in children:
            assert child.window.start >= eruption


class TestFlapping:
    def test_fault_kind(self, env):
        topology, hub, injector, _ = env
        fault = flapping_metric_scenario(topology, injector, start=HOUR)
        assert fault.kind is FaultKind.FLAPPING
        assert topology.service_of[fault.microservice] == "elastic-compute"

    def test_custom_target(self, env):
        topology, hub, injector, _ = env
        target = sorted(topology.microservices)[0]
        fault = flapping_metric_scenario(topology, injector, start=HOUR,
                                         microservice=target)
        assert fault.microservice == target
