"""Tests for cascade propagation."""

import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind
from repro.faults.propagation import CascadeConfig, CascadeModel
from repro.telemetry.store import TelemetryHub


@pytest.fixture()
def setup(small_topology):
    hub = TelemetryHub(small_topology, seed=11)
    injector = FaultInjector(hub)
    return small_topology, hub, injector


def most_depended(topology):
    return max(
        topology.microservices,
        key=lambda n: (len(topology.graph.dependents(n)), n),
    )


class TestConfig:
    def test_defaults_valid(self):
        CascadeConfig()

    def test_bad_probability_rejected(self):
        with pytest.raises(ValidationError):
            CascadeConfig(base_probability=1.5)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValidationError):
            CascadeConfig(max_depth=0)


class TestTrigger:
    def test_children_are_dependents(self, setup):
        topology, hub, injector = setup
        model = CascadeModel(topology, injector, seed=3)
        root_micro = most_depended(topology)
        root = injector.new_fault(FaultKind.DISK_FULL, root_micro,
                                  topology.region_names()[0], TimeWindow(0, 2 * HOUR))
        children = model.trigger(root)
        impact = set(topology.graph.upstream_impact(root_micro))
        for child in children:
            assert child.microservice in impact
            assert child.root_id() == root.fault_id
            assert child.depth >= 1

    def test_children_start_after_root(self, setup):
        topology, hub, injector = setup
        model = CascadeModel(topology, injector, seed=3)
        root = injector.new_fault(FaultKind.DISK_FULL, most_depended(topology),
                                  topology.region_names()[0], TimeWindow(0, 2 * HOUR))
        for child in model.trigger(root):
            assert child.window.start >= root.window.start

    def test_no_duplicate_members(self, setup):
        topology, hub, injector = setup
        model = CascadeModel(topology, injector, seed=5)
        root = injector.new_fault(FaultKind.CRASH, most_depended(topology),
                                  topology.region_names()[0], TimeWindow(0, 2 * HOUR))
        children = model.trigger(root)
        names = [c.microservice for c in children]
        assert len(names) == len(set(names))
        assert root.microservice not in names

    def test_zero_probability_no_cascade(self, setup):
        topology, hub, injector = setup
        model = CascadeModel(topology, injector,
                             config=CascadeConfig(base_probability=0.0), seed=3)
        root = injector.new_fault(FaultKind.CRASH, most_depended(topology),
                                  topology.region_names()[0], TimeWindow(0, 2 * HOUR))
        assert model.trigger(root) == []

    def test_leaf_root_no_cascade(self, setup):
        topology, hub, injector = setup
        model = CascadeModel(topology, injector, seed=3)
        leaf = next(
            name for name in sorted(topology.microservices)
            if not topology.graph.dependents(name)
        )
        root = injector.new_fault(FaultKind.CRASH, leaf,
                                  topology.region_names()[0], TimeWindow(0, 2 * HOUR))
        assert model.trigger(root) == []

    def test_depth_bound_respected(self, setup):
        topology, hub, injector = setup
        config = CascadeConfig(base_probability=1.0, decay_per_hop=1.0, max_depth=2)
        model = CascadeModel(topology, injector, config=config, seed=3)
        root = injector.new_fault(FaultKind.CRASH, most_depended(topology),
                                  topology.region_names()[0], TimeWindow(0, 2 * HOUR))
        children = model.trigger(root)
        assert children
        assert max(c.depth for c in children) <= 2

    def test_deterministic_per_seed(self, small_topology):
        def run(seed):
            hub = TelemetryHub(small_topology, seed=1)
            injector = FaultInjector(hub)
            model = CascadeModel(small_topology, injector, seed=seed)
            root = injector.new_fault(FaultKind.CRASH, most_depended(small_topology),
                                      small_topology.region_names()[0],
                                      TimeWindow(0, 2 * HOUR))
            return [c.microservice for c in model.trigger(root)]

        assert run(9) == run(9)
