"""Tests for the fault injector's telemetry signatures."""

import numpy as np
import pytest

from repro.common.timeutil import HOUR, MINUTE, TimeWindow
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultKind


@pytest.fixture()
def injector(hub):
    return FaultInjector(hub)


@pytest.fixture()
def target(small_topology):
    return sorted(small_topology.microservices)[0], small_topology.region_names()[0]


def window():
    return TimeWindow(2 * HOUR, 4 * HOUR)


class TestSignatures:
    def test_crash_breaks_probe(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.CRASH, micro, region, window())
        assert not hub.probe(micro, region).is_responding(3 * HOUR)
        assert hub.probe(micro, region).is_responding(5 * HOUR)

    def test_disk_full_saturates_disk(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.DISK_FULL, micro, region, window())
        series = hub.metric(micro, region, "disk_util")
        late = series.sample(np.array([4 * HOUR - 60.0]))[0]
        before = series.sample(np.array([HOUR]))[0]
        assert late > before + 40.0

    def test_cpu_overload_pins_cpu_and_latency(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.CPU_OVERLOAD, micro, region, window())
        cpu = hub.metric(micro, region, "cpu_util").sample(np.array([3 * HOUR]))[0]
        assert cpu >= 95.0
        latency_in = hub.metric(micro, region, "latency_ms").sample(np.array([3 * HOUR]))[0]
        latency_out = hub.metric(micro, region, "latency_ms").sample(np.array([6 * HOUR]))[0]
        assert latency_in > latency_out * 1.5

    def test_memory_leak_errors_only_near_end(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.MEMORY_LEAK, micro, region, window())
        logs = hub.logs(micro, region)
        early = logs.error_count(TimeWindow(2 * HOUR, 2 * HOUR + 30 * MINUTE))
        late = logs.error_count(TimeWindow(4 * HOUR - 20 * MINUTE, 4 * HOUR))
        assert early <= 2
        assert late > 20

    def test_error_burst_only_touches_logs(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.ERROR_BURST, micro, region, window())
        assert hub.logs(micro, region).error_count(window()) > 100
        assert hub.probe(micro, region).is_responding(3 * HOUR)

    def test_flapping_creates_spike_train(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.FLAPPING, micro, region, window())
        series = hub.metric(micro, region, "cpu_util")
        times = np.arange(2 * HOUR, 4 * HOUR, 30.0)
        values = series.sample(times)
        high = values > 90.0
        # Spikes present but not sustained — both states occur repeatedly.
        assert 0.1 < high.mean() < 0.6

    def test_latency_regression(self, injector, hub, target):
        micro, region = target
        injector.new_fault(FaultKind.LATENCY_REGRESSION, micro, region, window())
        latency = hub.metric(micro, region, "latency_ms").sample(np.array([3 * HOUR]))[0]
        assert latency > 300.0


class TestAttribution:
    def test_fault_at_inside_window(self, injector, target):
        micro, region = target
        fault = injector.new_fault(FaultKind.CRASH, micro, region, window())
        assert injector.fault_at(micro, region, 3 * HOUR) == fault.fault_id

    def test_fault_at_outside_window(self, injector, target):
        micro, region = target
        injector.new_fault(FaultKind.CRASH, micro, region, window())
        assert injector.fault_at(micro, region, 5 * HOUR) is None

    def test_fault_at_prefers_earliest(self, injector, target):
        micro, region = target
        first = injector.new_fault(FaultKind.CRASH, micro, region,
                                   TimeWindow(0, 4 * HOUR))
        injector.new_fault(FaultKind.ERROR_BURST, micro, region,
                           TimeWindow(2 * HOUR, 4 * HOUR))
        assert injector.fault_at(micro, region, 3 * HOUR) == first.fault_id

    def test_fault_at_other_component(self, injector, target, small_topology):
        micro, region = target
        other = sorted(small_topology.microservices)[1]
        injector.new_fault(FaultKind.CRASH, micro, region, window())
        assert injector.fault_at(other, region, 3 * HOUR) is None

    def test_parent_links(self, injector, target):
        micro, region = target
        parent = injector.new_fault(FaultKind.CRASH, micro, region, window())
        child = injector.new_fault(FaultKind.ERROR_BURST, micro, region, window(),
                                   parent=parent)
        assert child.parent_fault_id == parent.fault_id
        assert child.root_id() == parent.fault_id
        assert child.depth == 1
