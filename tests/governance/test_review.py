"""Tests for the periodic review (Finding 4's mechanism)."""

import numpy as np
import pytest

from repro.core.governance import GuidelineChecker, PeriodicReview
from repro.oce.engineer import build_panel
from repro.oce.processing import ProcessingModel
from repro.workload import StrategyFactory


@pytest.fixture(scope="module")
def population(topology):
    return StrategyFactory(topology, seed=13).build(300)


class TestStrictReview:
    def test_full_compliance_fixes_everything(self, topology, population):
        review = PeriodicReview(topology, compliance=1.0, seed=1)
        outcome = review.run(population)
        assert outcome.flagged > 0
        assert outcome.fixed == outcome.flagged
        # Re-linting the reviewed population finds (almost) nothing.
        report = GuidelineChecker(topology).review(outcome.strategies)
        assert report.compliance_rate() >= 0.99

    def test_fixed_strategies_lose_preventable_antipatterns(self, topology, population):
        review = PeriodicReview(topology, compliance=1.0, seed=1)
        outcome = review.run(population)
        before = sum(
            1 for s in population if s.injected_antipatterns() & {"A1", "A2", "A3", "A4"}
        )
        after = sum(
            1 for s in outcome.strategies
            if s.injected_antipatterns() & {"A1", "A3", "A4"}
        )
        assert after < before * 0.2

    def test_population_size_preserved(self, topology, population):
        outcome = PeriodicReview(topology, compliance=1.0, seed=1).run(population)
        assert len(outcome.strategies) == len(population)

    def test_diagnosis_gets_faster(self, topology, population):
        """Finding 4: strictly obeyed guidelines make diagnosis easier."""
        outcome = PeriodicReview(topology, compliance=1.0, seed=1).run(population)
        model = ProcessingModel(seed=1)
        senior = build_panel()[0]
        before = np.mean([model.expected_seconds(s, senior) for s in population])
        after = np.mean([model.expected_seconds(s, senior)
                         for s in outcome.strategies])
        assert after < before * 0.9


class TestLaxReview:
    def test_zero_compliance_changes_nothing(self, topology, population):
        outcome = PeriodicReview(topology, compliance=0.0, seed=1).run(population)
        assert outcome.fixed == 0
        assert outcome.strategies == population

    def test_partial_compliance_partial_fixes(self, topology, population):
        outcome = PeriodicReview(topology, compliance=0.5, seed=1).run(population)
        assert 0 < outcome.fixed < outcome.flagged
        assert outcome.fix_rate == pytest.approx(0.5, abs=0.15)

    def test_compliance_monotone_in_residual_violations(self, topology, population):
        checker = GuidelineChecker(topology)
        residuals = []
        for compliance in (0.0, 0.5, 1.0):
            outcome = PeriodicReview(topology, compliance=compliance, seed=1).run(
                population
            )
            report = checker.review(outcome.strategies)
            residuals.append(len(report.non_compliant_strategies()))
        assert residuals[0] > residuals[1] > residuals[2]
