"""Tests for guideline linting (§III-D Target/Timing/Presentation)."""

import pytest

from repro.alerting.alert import Severity
from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.common.errors import ValidationError
from repro.core.governance import GuidelineChecker, GuidelineViolation
from repro.detection.threshold import StaticThresholdDetector
from repro.workload import StrategyFactory


@pytest.fixture(scope="module")
def checker(topology):
    return GuidelineChecker(topology)


def make_strategy(topology, rule, title="database-api-00: request latency above SLO threshold",
                  description="P99 latency exceeded the SLO threshold."):
    micro = topology.microservices_of("database")[0]
    return AlertStrategy(
        strategy_id="s-x",
        name="db_latency",
        service="database",
        microservice=micro,
        rule=rule,
        severity=Severity.MAJOR,
        true_severity=Severity.MAJOR,
        title=title,
        description=description,
    )


class TestTarget:
    def test_infra_metric_violates(self, checker, topology):
        rule = MetricRule(metric_name="cpu_util",
                          detector=StaticThresholdDetector(90.0, min_consecutive=3))
        violations = checker.check(make_strategy(topology, rule))
        assert any(v.aspect == "target" for v in violations)

    def test_quality_metric_passes(self, checker, topology):
        rule = MetricRule(metric_name="latency_ms",
                          detector=StaticThresholdDetector(200.0, min_consecutive=3))
        violations = checker.check(make_strategy(topology, rule))
        assert not any(v.aspect == "target" for v in violations)


class TestTiming:
    def test_undebounced_threshold_violates(self, checker, topology):
        rule = MetricRule(metric_name="latency_ms",
                          detector=StaticThresholdDetector(200.0, min_consecutive=1))
        violations = checker.check(make_strategy(topology, rule))
        assert any(v.aspect == "timing" for v in violations)

    def test_threshold_inside_normal_band_violates(self, checker, topology):
        # latency_ms normal peak ~ 45 + 15 + 12 = 72; threshold 60 is inside.
        rule = MetricRule(metric_name="latency_ms",
                          detector=StaticThresholdDetector(60.0, min_consecutive=3))
        violations = checker.check(make_strategy(topology, rule))
        assert any("normal operating band" in v.message for v in violations)

    def test_hair_trigger_log_rule_violates(self, checker, topology):
        violations = checker.check(
            make_strategy(topology, LogKeywordRule(min_count=1))
        )
        assert any(v.aspect == "timing" for v in violations)

    def test_hair_trigger_probe_violates(self, checker, topology):
        violations = checker.check(
            make_strategy(topology, ProbeRule(no_response_threshold=30.0))
        )
        assert any(v.aspect == "timing" for v in violations)

    def test_sane_rules_pass(self, checker, topology):
        for rule in (
            LogKeywordRule(min_count=5),
            ProbeRule(no_response_threshold=120.0),
            MetricRule(metric_name="latency_ms",
                       detector=StaticThresholdDetector(200.0, min_consecutive=3)),
        ):
            violations = checker.check(make_strategy(topology, rule))
            assert not any(v.aspect == "timing" for v in violations), rule


class TestPresentation:
    def test_vague_title_violates(self, checker, topology):
        violations = checker.check(make_strategy(
            topology, LogKeywordRule(min_count=5),
            title="Instance x is abnormal", description="State is abnormal.",
        ))
        assert any(v.aspect == "presentation" for v in violations)

    def test_informative_title_passes(self, checker, topology):
        violations = checker.check(make_strategy(topology, LogKeywordRule(min_count=5)))
        assert not any(v.aspect == "presentation" for v in violations)


class TestReview:
    def test_violations_align_with_injected_antipatterns(self, checker, topology):
        # Strategies flagged by the static linter should be heavily
        # enriched in injected A1/A3/A4 — the patterns guidelines prevent.
        strategies = StrategyFactory(topology, seed=11).build(300)
        report = checker.review(strategies)
        flagged = report.non_compliant_strategies()
        preventable = {
            s.strategy_id for s in strategies
            if s.injected_antipatterns() & {"A1", "A3", "A4"}
        }
        hits = len(flagged & preventable)
        assert hits / len(preventable) >= 0.9       # nearly all caught
        assert hits / len(flagged) >= 0.8           # few spurious flags

    def test_report_rendering(self, checker, topology):
        strategies = StrategyFactory(topology, seed=11).build(50)
        report = checker.review(strategies)
        text = report.render()
        assert "checked 50 strategies" in text
        assert "compliant" in text

    def test_compliance_rate_bounds(self, checker, topology):
        strategies = StrategyFactory(topology, seed=11).build(50)
        report = checker.review(strategies)
        assert 0.0 <= report.compliance_rate() <= 1.0


class TestViolationRecord:
    def test_bad_aspect_rejected(self):
        with pytest.raises(ValidationError):
            GuidelineViolation(aspect="vibes", strategy_id="s", message="m")
