"""Tests for the EWMA control-chart detector."""

import numpy as np
import pytest

from repro.detection.ewma import EwmaDetector


class TestDetection:
    def test_level_shift_flagged(self):
        rng = np.random.default_rng(1)
        values = np.concatenate([10 + rng.normal(0, 0.5, 50), [40.0]])
        times = np.arange(len(values)) * 60.0
        assert EwmaDetector(alpha=0.2, k=4.0).detect(times, values)[-1]

    def test_sustained_shift_keeps_firing(self):
        rng = np.random.default_rng(2)
        values = np.concatenate([10 + rng.normal(0, 0.5, 50), np.full(10, 40.0)])
        times = np.arange(len(values)) * 60.0
        flags = EwmaDetector(alpha=0.2, k=4.0).detect(times, values)
        assert flags[-10:].all()

    def test_slow_drift_absorbed(self):
        values = np.linspace(10, 12, 100)
        times = np.arange(100) * 60.0
        flags = EwmaDetector(alpha=0.3, k=5.0).detect(times, values)
        assert not flags.any()

    def test_empty_series(self):
        detector = EwmaDetector()
        assert detector.detect(np.empty(0), np.empty(0)).size == 0

    def test_single_point_not_flagged(self):
        detector = EwmaDetector()
        assert not detector.detect(np.array([0.0]), np.array([5.0])).any()

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaDetector(alpha=1.5)
