"""Tests for the k-sigma detector."""

import numpy as np
import pytest

from repro.detection.ksigma import KSigmaDetector


def _flat_with_spike(n=60, spike_at=-1, spike=50.0, base=10.0, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    values = base + rng.normal(0, noise, n)
    values[spike_at] += spike
    return np.arange(n) * 60.0, values


class TestDetection:
    def test_spike_flagged(self):
        times, values = _flat_with_spike()
        detector = KSigmaDetector(k=3.0)
        assert detector.latest_is_anomalous(times, values)

    def test_quiet_series_unflagged(self):
        times, values = _flat_with_spike(spike=0.0)
        detector = KSigmaDetector(k=3.0)
        assert not detector.detect(times, values)[-1]

    def test_short_series_never_flags(self):
        detector = KSigmaDetector(k=3.0, min_baseline_points=10)
        times = np.arange(5) * 60.0
        values = np.array([0, 0, 0, 0, 1000.0])
        assert not detector.detect(times, values).any()

    def test_constant_baseline_handled(self):
        detector = KSigmaDetector(k=3.0)
        times = np.arange(30) * 60.0
        values = np.full(30, 10.0)
        values[-1] = 100.0
        assert detector.detect(times, values)[-1]

    def test_k_controls_sensitivity(self):
        times, values = _flat_with_spike(spike=2.5)
        loose = KSigmaDetector(k=8.0).detect(times, values)[-1]
        tight = KSigmaDetector(k=2.0).detect(times, values)[-1]
        assert tight and not loose

    def test_bad_k_rejected(self):
        with pytest.raises(Exception):
            KSigmaDetector(k=0.0)
