"""Tests for the static threshold detector."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.detection.threshold import StaticThresholdDetector


def _series(values):
    values = np.asarray(values, dtype=float)
    return np.arange(len(values), dtype=float) * 60.0, values


class TestAbove:
    def test_flags_crossings(self):
        times, values = _series([10, 20, 95, 15])
        flags = StaticThresholdDetector(80.0).detect(times, values)
        assert flags.tolist() == [False, False, True, False]

    def test_exact_threshold_not_flagged(self):
        times, values = _series([80.0])
        flags = StaticThresholdDetector(80.0).detect(times, values)
        assert not flags[0]


class TestBelow:
    def test_flags_drops(self):
        times, values = _series([100, 5, 100])
        flags = StaticThresholdDetector(10.0, direction="below").detect(times, values)
        assert flags.tolist() == [False, True, False]


class TestDebounce:
    def test_min_consecutive_suppresses_spikes(self):
        times, values = _series([0, 95, 0, 95, 95, 95])
        detector = StaticThresholdDetector(80.0, min_consecutive=3)
        flags = detector.detect(times, values)
        assert flags.tolist() == [False, False, False, False, False, True]

    def test_run_keeps_firing_after_threshold(self):
        times, values = _series([95] * 5)
        detector = StaticThresholdDetector(80.0, min_consecutive=3)
        flags = detector.detect(times, values)
        assert flags.tolist() == [False, False, True, True, True]

    def test_bad_min_consecutive_rejected(self):
        with pytest.raises(ValueError):
            StaticThresholdDetector(80.0, min_consecutive=0)


class TestInterface:
    def test_latest_is_anomalous(self):
        times, values = _series([10, 95])
        assert StaticThresholdDetector(80.0).latest_is_anomalous(times, values)

    def test_latest_on_empty_is_false(self):
        detector = StaticThresholdDetector(80.0)
        assert not detector.latest_is_anomalous(np.empty(0), np.empty(0))

    def test_mismatched_shapes_rejected(self):
        detector = StaticThresholdDetector(80.0)
        with pytest.raises(ValidationError):
            detector.detect(np.arange(3.0), np.arange(4.0))

    def test_bad_direction_rejected(self):
        with pytest.raises(ValidationError):
            StaticThresholdDetector(80.0, direction="sideways")

    def test_describe(self):
        assert "above" in StaticThresholdDetector(80.0).describe()
