"""Tests for the rate-of-change detector."""

import numpy as np
import pytest

from repro.detection.rate import RateOfChangeDetector


class TestDetection:
    def test_jump_flagged(self):
        times = np.array([0.0, 60.0, 120.0])
        values = np.array([10.0, 11.0, 500.0])
        flags = RateOfChangeDetector(max_rate=1.0).detect(times, values)
        assert flags.tolist() == [False, False, True]

    def test_gradual_change_unflagged(self):
        times = np.arange(10) * 60.0
        values = np.arange(10) * 5.0  # slope 5/60 < 1.0
        assert not RateOfChangeDetector(max_rate=1.0).detect(times, values).any()

    def test_drop_also_flagged(self):
        times = np.array([0.0, 60.0])
        values = np.array([500.0, 0.0])
        assert RateOfChangeDetector(max_rate=1.0).detect(times, values)[1]

    def test_irregular_sampling_uses_dt(self):
        times = np.array([0.0, 3600.0])
        values = np.array([0.0, 360.0])  # 0.1/s over an hour
        assert not RateOfChangeDetector(max_rate=1.0).detect(times, values).any()

    def test_single_point(self):
        detector = RateOfChangeDetector(max_rate=1.0)
        assert not detector.detect(np.array([0.0]), np.array([5.0])).any()

    def test_bad_rate_rejected(self):
        with pytest.raises(Exception):
            RateOfChangeDetector(max_rate=0.0)
