"""Tests for the MAD (robust z-score) detector."""

import numpy as np
import pytest

from repro.detection.mad import MadDetector


class TestDetection:
    def test_outlier_flagged(self):
        rng = np.random.default_rng(3)
        values = np.concatenate([20 + rng.normal(0, 1.0, 40), [80.0]])
        times = np.arange(len(values)) * 60.0
        assert MadDetector(k=5.0).detect(times, values)[-1]

    def test_robust_to_contamination(self):
        # A third of the window is already anomalous; the median holds.
        rng = np.random.default_rng(4)
        values = np.concatenate([
            20 + rng.normal(0, 1.0, 30),
            np.full(15, 80.0),
        ])
        times = np.arange(len(values)) * 60.0
        flags = MadDetector(k=5.0).detect(times, values)
        assert flags[-15:].all()
        assert not flags[:30].any()

    def test_short_series_never_flags(self):
        detector = MadDetector(min_points=8)
        times = np.arange(5) * 60.0
        values = np.array([0, 0, 0, 0, 1000.0])
        assert not detector.detect(times, values).any()

    def test_constant_series_spike(self):
        values = np.full(30, 5.0)
        values[-1] = 50.0
        times = np.arange(30) * 60.0
        assert MadDetector(k=5.0).detect(times, values)[-1]

    def test_bad_k_rejected(self):
        with pytest.raises(Exception):
            MadDetector(k=-1.0)
