"""Tests for event records and periodic process bookkeeping."""

import pytest

from repro.common.errors import ValidationError
from repro.sim.events import Event, PeriodicProcess


class TestEvent:
    def test_ordering_by_time_then_sequence(self):
        early = Event(time=1.0, sequence=5, callback=lambda t, p: None)
        late = Event(time=2.0, sequence=0, callback=lambda t, p: None)
        tie_a = Event(time=2.0, sequence=1, callback=lambda t, p: None)
        assert early < late
        assert late < tie_a

    def test_fire_invokes_callback(self):
        seen = []
        event = Event(time=1.0, sequence=0,
                      callback=lambda t, p: seen.append((t, p)), payload="x")
        event.fire()
        assert seen == [(1.0, "x")]

    def test_cancelled_fire_is_noop(self):
        seen = []
        event = Event(time=1.0, sequence=0, callback=lambda t, p: seen.append(t))
        event.cancel()
        event.fire()
        assert seen == []


class TestPeriodicProcess:
    def test_next_tick(self):
        process = PeriodicProcess(interval=10.0, callback=lambda t, p: None)
        assert process.next_tick_after(0.0) == 10.0

    def test_next_tick_respects_end(self):
        process = PeriodicProcess(interval=10.0, callback=lambda t, p: None, end=15.0)
        assert process.next_tick_after(0.0) == 10.0
        assert process.next_tick_after(10.0) is None

    def test_stopped_process_has_no_tick(self):
        process = PeriodicProcess(interval=10.0, callback=lambda t, p: None)
        process.stop()
        assert process.next_tick_after(0.0) is None

    def test_bad_interval_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicProcess(interval=0.0, callback=lambda t, p: None)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicProcess(interval=1.0, callback=lambda t, p: None, start=10.0, end=5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            PeriodicProcess(interval=1.0, callback=lambda t, p: None, start=-1.0)
