"""Tests for the discrete-event simulation engine."""

import pytest

from repro.common.errors import SimulationError, ValidationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import PeriodicProcess


class TestScheduling:
    def test_fires_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(5.0, lambda t, p: seen.append(t))
        engine.schedule(2.0, lambda t, p: seen.append(t))
        engine.schedule(8.0, lambda t, p: seen.append(t))
        engine.run_until(10.0)
        assert seen == [2.0, 5.0, 8.0]

    def test_ties_fire_in_schedule_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(5.0, lambda t, p: seen.append("a"))
        engine.schedule(5.0, lambda t, p: seen.append("b"))
        engine.run_until(10.0)
        assert seen == ["a", "b"]

    def test_payload_delivered(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda t, p: seen.append(p), payload={"k": 1})
        engine.run_until(2.0)
        assert seen == [{"k": 1}]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule(5.0, lambda t, p: None)

    def test_schedule_at_now_allowed(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule(10.0, lambda t, p: seen.append(t))
        engine.run_until(10.0)
        assert seen == [10.0]

    def test_schedule_after(self):
        engine = SimulationEngine(start_time=10.0)
        seen = []
        engine.schedule_after(5.0, lambda t, p: seen.append(t))
        engine.run_until(20.0)
        assert seen == [15.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda t, p: None)

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValidationError):
            SimulationEngine(start_time=-1.0)


class TestRunUntil:
    def test_now_advances_to_end(self):
        engine = SimulationEngine()
        engine.run_until(100.0)
        assert engine.now == 100.0

    def test_events_beyond_end_not_fired(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(50.0, lambda t, p: seen.append(t))
        engine.run_until(10.0)
        assert seen == []
        engine.run_until(100.0)
        assert seen == [50.0]

    def test_backwards_run_rejected(self):
        engine = SimulationEngine()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_cancelled_events_skipped(self):
        engine = SimulationEngine()
        seen = []
        event = engine.schedule(5.0, lambda t, p: seen.append(t))
        event.cancel()
        engine.run_until(10.0)
        assert seen == []
        assert engine.fired == 0

    def test_events_scheduled_during_run_fire(self):
        engine = SimulationEngine()
        seen = []

        def chain(time, _):
            seen.append(time)
            if time < 3.0:
                engine.schedule(time + 1.0, chain)

        engine.schedule(1.0, chain)
        engine.run_until(10.0)
        assert seen == [1.0, 2.0, 3.0]


class TestRunAll:
    def test_drains_queue(self):
        engine = SimulationEngine()
        for t in (3.0, 1.0, 2.0):
            engine.schedule(t, lambda t_, p: None)
        engine.run_all()
        assert engine.pending == 0
        assert engine.fired == 3

    def test_safety_limit(self):
        engine = SimulationEngine()

        def forever(time, _):
            engine.schedule(time + 1.0, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run_all(safety_limit=100)


class TestPeriodicProcess:
    def test_ticks_at_interval(self):
        engine = SimulationEngine()
        seen = []
        engine.add_periodic(PeriodicProcess(
            interval=10.0, callback=lambda t, p: seen.append(t), start=5.0, end=40.0,
        ))
        engine.run_until(100.0)
        assert seen == [5.0, 15.0, 25.0, 35.0]

    def test_stop_halts_ticks(self):
        engine = SimulationEngine()
        seen = []
        process = PeriodicProcess(interval=10.0, callback=lambda t, p: seen.append(t))
        engine.add_periodic(process)

        def stopper(time, _):
            process.stop()

        engine.schedule(25.0, stopper)
        engine.run_until(100.0)
        assert seen == [0.0, 10.0, 20.0]

    def test_start_in_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.add_periodic(PeriodicProcess(interval=1.0, callback=lambda t, p: None,
                                                start=5.0))

    def test_empty_range_is_noop(self):
        engine = SimulationEngine()
        engine.add_periodic(PeriodicProcess(interval=1.0, callback=lambda t, p: None,
                                            start=5.0, end=5.0))
        assert engine.pending == 0
