"""Tests for the composed mitigation pipeline."""

import pytest

from repro.core.mitigation.pipeline import MitigationPipeline, evaluate_root_inference
from repro.core.mitigation.correlation import rulebook_from_ground_truth


@pytest.fixture(scope="module")
def pipeline_report(default_trace, topology):
    book = rulebook_from_ground_truth(default_trace, coverage=0.6)
    pipeline = MitigationPipeline(topology.graph, rulebook=book)
    return pipeline.run(default_trace)


class TestVolumeReduction:
    def test_each_stage_reduces_load(self, pipeline_report):
        report = pipeline_report
        assert report.after_blocking < report.input_alerts
        assert report.after_aggregation < report.after_blocking
        assert report.after_correlation <= report.after_aggregation

    def test_total_reduction_substantial(self, pipeline_report):
        # R1+R2+R3 should cut OCE load by at least half on a trace full of
        # noise strategies and storms.
        assert pipeline_report.total_reduction > 0.5

    def test_blocked_alerts_are_noise(self, pipeline_report, default_trace):
        # The blocked volume must be dominated by strategies with injected
        # noise anti-patterns (A4/A5).
        blocked = pipeline_report.blocked_alerts
        assert blocked > 0

    def test_render(self, pipeline_report):
        text = pipeline_report.render()
        assert "after R1 blocking" in text
        assert "OCE-load reduction" in text


class TestRootInference:
    def test_scores_computed(self, pipeline_report, default_trace, topology):
        scores = evaluate_root_inference(
            pipeline_report.clusters, default_trace, service_of=topology.service_of
        )
        assert scores["clusters_evaluated"] > 0

    def test_achievable_at_least_strict(self, pipeline_report, default_trace):
        scores = evaluate_root_inference(pipeline_report.clusters, default_trace)
        assert scores["achievable_hit_rate"] >= scores["hit_rate"] - 1e-9

    def test_empty_clusters(self, default_trace):
        scores = evaluate_root_inference([], default_trace)
        assert scores["clusters_evaluated"] == 0
        assert scores["hit_rate"] == 0.0


class TestEmergingStage:
    def test_disabled_by_default(self, pipeline_report):
        assert not pipeline_report.emerging_enabled
        assert pipeline_report.emerging == []

    def test_enabled_runs(self, smoke_trace, topology):
        pipeline = MitigationPipeline(topology.graph, enable_emerging=True)
        report = pipeline.run(smoke_trace)
        assert report.emerging_enabled
