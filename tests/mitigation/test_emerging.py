"""Tests for R4 emerging-alert detection."""

import pytest

from repro.alerting.alert import Alert, Severity
from repro.common.timeutil import HOUR
from repro.core.mitigation.emerging import EmergingAlertDetector


def make_alert(alert_id, occurred_at, strategy_name, title, micro="m-a"):
    return Alert(
        alert_id=alert_id, strategy_id=strategy_name, strategy_name=strategy_name,
        title=title, description=title, severity=Severity.MINOR, service="svc",
        microservice=micro, region="region-A", datacenter="dc", channel="metric",
        occurred_at=occurred_at,
    )


def routine_stream(n_hours=10, per_hour=12):
    """A steady stream of familiar alert text."""
    alerts = []
    templates = [
        ("disk_util_high", "storage node disk usage over threshold"),
        ("latency_slo", "request latency above slo threshold"),
        ("error_burst", "error logs burst detected on worker"),
    ]
    counter = 0
    for hour in range(n_hours):
        for i in range(per_hour):
            name, title = templates[i % len(templates)]
            alerts.append(make_alert(f"a-{counter}", hour * HOUR + i * 240.0,
                                     name, title))
            counter += 1
    return alerts


class TestEmergingDetection:
    def test_novel_alert_flagged(self):
        alerts = routine_stream()
        novel = make_alert("novel-1", 8 * HOUR + 120.0, "gpu_xid_errors",
                           "gpu thermal runaway nvlink xid errors detected",
                           micro="gpu-node-7")
        alerts.append(novel)
        detector = EmergingAlertDetector(n_topics=4, warmup_windows=4, seed=1)
        flagged = detector.run(alerts)
        assert any(e.alert.alert_id == "novel-1" for e in flagged)

    def test_routine_stream_mostly_quiet(self):
        detector = EmergingAlertDetector(n_topics=4, warmup_windows=4, seed=1)
        flagged = detector.run(routine_stream())
        assert len(flagged) <= 3

    def test_no_flags_during_warmup(self):
        alerts = routine_stream(n_hours=3)
        novel = make_alert("novel-1", 2 * HOUR, "weird", "totally novel words here")
        alerts.append(novel)
        detector = EmergingAlertDetector(n_topics=4, warmup_windows=6, seed=1)
        assert detector.run(alerts) == []

    def test_empty_stream(self):
        assert EmergingAlertDetector().run([]) == []

    def test_novelty_scores_positive_for_flagged(self):
        alerts = routine_stream()
        alerts.append(make_alert("novel-1", 8 * HOUR, "gpu_xid",
                                 "gpu thermal runaway xid nvlink"))
        detector = EmergingAlertDetector(n_topics=4, warmup_windows=4, seed=1)
        for emerging in detector.run(alerts):
            assert emerging.novelty > 0

    def test_document_of_includes_component(self):
        alert = make_alert("a", 0.0, "strategy_x", "some title", micro="comp-api-01")
        doc = EmergingAlertDetector.document_of(alert)
        assert "comp-api-01" in doc


class TestLeadTime:
    def test_lead_time_positive_when_before_eruption(self):
        alerts = routine_stream()
        novel = make_alert("novel-1", 8 * HOUR, "leak", "memory leak suspected growing")
        alerts.append(novel)
        detector = EmergingAlertDetector(n_topics=4, warmup_windows=4, seed=1)
        flagged = detector.run(alerts)
        if not flagged:
            pytest.skip("nothing flagged under this seed")
        lead = detector.lead_time(flagged, eruption_start=9.5 * HOUR)
        assert lead is not None and lead > 0

    def test_lead_time_none_without_early_flags(self):
        detector = EmergingAlertDetector()
        assert detector.lead_time([], eruption_start=100.0) is None
