"""Tests for R2 alert aggregation."""

import pytest

from repro.alerting.alert import Severity
from repro.common.errors import ValidationError
from repro.core.mitigation.aggregation import AlertAggregator
from tests.antipatterns.test_collective import make_alert


class TestAggregation:
    def test_session_grouping(self):
        # Three alerts within the window, one far away.
        alerts = [
            make_alert("a-1", 0.0),
            make_alert("a-2", 300.0),
            make_alert("a-3", 600.0),
            make_alert("a-4", 10_000.0),
        ]
        aggregates = AlertAggregator(window_seconds=900.0).aggregate(alerts)
        assert len(aggregates) == 2
        assert aggregates[0].count == 3
        assert aggregates[1].count == 1

    def test_count_preserved(self):
        alerts = [make_alert(f"a-{i}", i * 100.0) for i in range(50)]
        aggregates = AlertAggregator(window_seconds=900.0).aggregate(alerts)
        assert sum(agg.count for agg in aggregates) == 50

    def test_strategies_never_mixed(self):
        alerts = [
            make_alert("a-1", 0.0, strategy_id="s-1"),
            make_alert("a-2", 1.0, strategy_id="s-2"),
        ]
        aggregates = AlertAggregator().aggregate(alerts)
        assert len(aggregates) == 2

    def test_regions_never_mixed(self):
        alerts = [
            make_alert("a-1", 0.0, region="region-A"),
            make_alert("a-2", 1.0, region="region-B"),
        ]
        assert len(AlertAggregator().aggregate(alerts)) == 2

    def test_representative_is_most_severe(self):
        alerts = [make_alert("a-1", 0.0), make_alert("a-2", 10.0)]
        alerts[1].severity = Severity.CRITICAL
        aggregate = AlertAggregator().aggregate(alerts)[0]
        assert aggregate.representative.alert_id == "a-2"
        assert aggregate.severity is Severity.CRITICAL

    def test_window_covers_members(self):
        alerts = [make_alert("a-1", 100.0), make_alert("a-2", 400.0)]
        aggregate = AlertAggregator().aggregate(alerts)[0]
        assert aggregate.window.start == 100.0
        assert aggregate.window.contains(400.0)

    def test_alert_ids_recorded(self):
        alerts = [make_alert("a-1", 0.0), make_alert("a-2", 10.0)]
        aggregate = AlertAggregator().aggregate(alerts)[0]
        assert aggregate.alert_ids == ("a-1", "a-2")

    def test_compression_ratio(self):
        alerts = [make_alert(f"a-{i}", i * 10.0) for i in range(100)]
        ratio = AlertAggregator(window_seconds=900.0).compression_ratio(alerts)
        assert ratio == pytest.approx(100.0)

    def test_compression_of_empty(self):
        assert AlertAggregator().compression_ratio([]) == 1.0

    def test_is_group_flag(self):
        alerts = [make_alert("a-1", 0.0)]
        assert not AlertAggregator().aggregate(alerts)[0].is_group

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            AlertAggregator(window_seconds=0.0)

    def test_results_sorted_by_start(self):
        alerts = [
            make_alert("a-1", 5000.0, strategy_id="s-2"),
            make_alert("a-2", 100.0, strategy_id="s-1"),
        ]
        aggregates = AlertAggregator().aggregate(alerts)
        assert aggregates[0].window.start <= aggregates[1].window.start
