"""Tests for R1 alert blocking."""

import pytest

from repro.common.errors import ValidationError
from repro.core.antipatterns.base import AntiPatternFinding
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.workload.trace import AlertTrace
from tests.antipatterns.test_collective import make_alert


@pytest.fixture()
def trace():
    trace = AlertTrace()
    trace.extend_alerts([
        make_alert("a-1", 100.0, strategy_id="s-noise"),
        make_alert("a-2", 200.0, strategy_id="s-noise", region="region-B"),
        make_alert("a-3", 300.0, strategy_id="s-signal"),
    ])
    return trace


class TestBlockingRule:
    def test_strategy_scope(self):
        rule = BlockingRule(strategy_id="s-noise")
        assert rule.matches(make_alert("x", 0.0, strategy_id="s-noise"))
        assert not rule.matches(make_alert("x", 0.0, strategy_id="s-other"))

    def test_region_scope(self):
        rule = BlockingRule(strategy_id="s-noise", region="region-A")
        assert rule.matches(make_alert("x", 0.0, strategy_id="s-noise"))
        assert not rule.matches(
            make_alert("x", 0.0, strategy_id="s-noise", region="region-B")
        )

    def test_expiry(self):
        rule = BlockingRule(strategy_id="s-noise", expires_at=1000.0)
        assert rule.matches(make_alert("x", 500.0, strategy_id="s-noise"))
        assert not rule.matches(make_alert("x", 1500.0, strategy_id="s-noise"))

    def test_empty_strategy_rejected(self):
        with pytest.raises(ValidationError):
            BlockingRule(strategy_id="")


class TestBlocker:
    def test_apply_partitions(self, trace):
        blocker = AlertBlocker([BlockingRule(strategy_id="s-noise")])
        passed, blocked = blocker.apply(trace)
        assert len(blocked) == 2
        assert len(passed) == 1
        assert passed.alerts[0].strategy_id == "s-signal"

    def test_reduction(self, trace):
        blocker = AlertBlocker([BlockingRule(strategy_id="s-noise")])
        assert blocker.reduction(trace) == pytest.approx(2 / 3)

    def test_empty_trace_reduction(self):
        assert AlertBlocker().reduction(AlertTrace()) == 0.0

    def test_from_findings_noise_patterns_only(self):
        findings = [
            AntiPatternFinding("A4", "s-flappy", 0.9, "transient"),
            AntiPatternFinding("A5", "s-repeaty", 0.9, "repeats"),
            AntiPatternFinding("A1", "s-vague", 0.9, "vague title"),
        ]
        blocker = AlertBlocker.from_findings(findings)
        blocked_strategies = {rule.strategy_id for rule in blocker.rules}
        assert blocked_strategies == {"s-flappy", "s-repeaty"}

    def test_from_findings_deduplicates(self):
        findings = [
            AntiPatternFinding("A4", "s-1", 0.9, "a"),
            AntiPatternFinding("A5", "s-1", 0.9, "b"),
        ]
        assert len(AlertBlocker.from_findings(findings).rules) == 1

    def test_from_findings_carries_reason(self):
        findings = [AntiPatternFinding("A4", "s-1", 0.9, "transient share 80%")]
        rule = AlertBlocker.from_findings(findings).rules[0]
        assert "A4" in rule.reason

    def test_add_rule(self, trace):
        blocker = AlertBlocker()
        blocker.add(BlockingRule(strategy_id="s-signal"))
        assert blocker.is_blocked(trace.alerts[2])
