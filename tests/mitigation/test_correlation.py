"""Tests for R3 alert correlation."""

import pytest

from repro.common.errors import ValidationError
from repro.core.mitigation.correlation import (
    CorrelationAnalyzer,
    DependencyRuleBook,
    rulebook_from_ground_truth,
)
from repro.topology.graph import DependencyGraph
from tests.antipatterns.test_collective import make_alert


@pytest.fixture()
def graph():
    graph = DependencyGraph()
    for name in ("top", "mid", "root", "island"):
        graph.add_microservice(name)
    graph.add_dependency("top", "mid")
    graph.add_dependency("mid", "root")
    return graph


class TestRuleBook:
    def test_related_either_direction(self):
        book = DependencyRuleBook()
        book.add("s-root", "s-derived")
        assert book.related("s-root", "s-derived")
        assert book.related("s-derived", "s-root")
        assert not book.related("s-root", "s-other")

    def test_self_rule_rejected(self):
        with pytest.raises(ValidationError):
            DependencyRuleBook().add("s-1", "s-1")

    def test_len_and_pairs(self):
        book = DependencyRuleBook()
        book.add("a", "b")
        book.add("a", "b")
        assert len(book) == 1
        assert book.pairs() == {("a", "b")}


class TestTopologyCorrelation:
    def test_cascade_clustered_with_root(self, graph):
        alerts = [
            make_alert("a-1", 100.0, strategy_id="s-r", micro="root", service="svc-c"),
            make_alert("a-2", 200.0, strategy_id="s-m", micro="mid", service="svc-b"),
            make_alert("a-3", 300.0, strategy_id="s-t", micro="top", service="svc-a"),
        ]
        clusters = CorrelationAnalyzer(graph).correlate(alerts)
        assert len(clusters) == 1
        cluster = clusters[0]
        assert cluster.size == 3
        assert cluster.root_microservice == "root"
        assert cluster.root_alert.alert_id == "a-1"

    def test_unrelated_island_stays_separate(self, graph):
        alerts = [
            make_alert("a-1", 100.0, micro="root"),
            make_alert("a-2", 150.0, micro="island", strategy_id="s-i"),
        ]
        clusters = CorrelationAnalyzer(graph).correlate(alerts)
        assert len(clusters) == 2

    def test_time_window_respected(self, graph):
        alerts = [
            make_alert("a-1", 100.0, micro="root"),
            make_alert("a-2", 100_000.0, micro="mid", strategy_id="s-m"),
        ]
        clusters = CorrelationAnalyzer(graph, time_window=900.0).correlate(alerts)
        assert len(clusters) == 2

    def test_regions_never_correlated(self, graph):
        alerts = [
            make_alert("a-1", 100.0, micro="root", region="region-A"),
            make_alert("a-2", 150.0, micro="mid", region="region-B", strategy_id="s-m"),
        ]
        assert len(CorrelationAnalyzer(graph).correlate(alerts)) == 2

    def test_topology_disabled(self, graph):
        alerts = [
            make_alert("a-1", 100.0, micro="root"),
            make_alert("a-2", 150.0, micro="mid", strategy_id="s-m"),
        ]
        analyzer = CorrelationAnalyzer(graph, use_topology=False)
        assert len(analyzer.correlate(alerts)) == 2


class TestRuleCorrelation:
    def test_rule_links_without_topology(self, graph):
        book = DependencyRuleBook()
        book.add("s-r", "s-i")
        alerts = [
            make_alert("a-1", 100.0, strategy_id="s-r", micro="root"),
            make_alert("a-2", 150.0, strategy_id="s-i", micro="island"),
        ]
        analyzer = CorrelationAnalyzer(graph, rulebook=book, use_topology=False)
        clusters = analyzer.correlate(alerts)
        assert len(clusters) == 1


class TestTransitivity:
    def test_chained_clusters_merge(self, graph):
        # a-1 relates to a-2 (root-mid), a-2 to a-3 (mid-top): one cluster.
        alerts = [
            make_alert("a-1", 0.0, strategy_id="s-r", micro="root"),
            make_alert("a-2", 800.0, strategy_id="s-m", micro="mid"),
            make_alert("a-3", 1600.0, strategy_id="s-t", micro="top"),
        ]
        clusters = CorrelationAnalyzer(graph, time_window=900.0).correlate(alerts)
        assert len(clusters) == 1


class TestGroundTruthRuleBook:
    def test_full_coverage_includes_all_pairs(self, default_trace):
        book = rulebook_from_ground_truth(default_trace, coverage=1.0)
        assert len(book) > 0

    def test_partial_coverage_smaller(self, default_trace):
        full = rulebook_from_ground_truth(default_trace, coverage=1.0)
        partial = rulebook_from_ground_truth(default_trace, coverage=0.4)
        assert len(partial) < len(full)

    def test_zero_coverage_empty(self, default_trace):
        assert len(rulebook_from_ground_truth(default_trace, coverage=0.0)) == 0

    def test_deterministic(self, default_trace):
        a = rulebook_from_ground_truth(default_trace, coverage=0.5, seed=3)
        b = rulebook_from_ground_truth(default_trace, coverage=0.5, seed=3)
        assert a.pairs() == b.pairs()
