"""Tests for simulated OCE labels."""

import pytest

from repro.core.qoa.labeling import CRITERION_ANTIPATTERNS, simulate_oce_labels


@pytest.fixture(scope="module")
def labelled(default_trace):
    ids = sorted(default_trace.strategies)
    return ids, simulate_oce_labels(default_trace, ids, noise=0.0, seed=1)


class TestNoiseFree:
    def test_every_strategy_labelled(self, labelled):
        ids, labels = labelled
        assert set(labels) == set(ids)
        for row in labels.values():
            assert set(row) == {"indicativeness", "precision", "handleability"}

    def test_mapping_matches_ground_truth(self, labelled, default_trace):
        ids, labels = labelled
        for sid in ids:
            injected = default_trace.strategies[sid].injected_antipatterns()
            for criterion, patterns in CRITERION_ANTIPATTERNS.items():
                expected = 0 if any(p in injected for p in patterns) else 1
                assert labels[sid][criterion] == expected


class TestNoise:
    def test_noise_flips_some_labels(self, default_trace):
        ids = sorted(default_trace.strategies)
        clean = simulate_oce_labels(default_trace, ids, noise=0.0, seed=1)
        noisy = simulate_oce_labels(default_trace, ids, noise=0.3, seed=1)
        flips = sum(
            clean[sid][criterion] != noisy[sid][criterion]
            for sid in ids for criterion in clean[sid]
        )
        total = len(ids) * 3
        assert 0.15 < flips / total < 0.45

    def test_deterministic_per_seed(self, default_trace):
        ids = sorted(default_trace.strategies)[:50]
        a = simulate_oce_labels(default_trace, ids, noise=0.2, seed=7)
        b = simulate_oce_labels(default_trace, ids, noise=0.2, seed=7)
        assert a == b

    def test_bad_noise_rejected(self, default_trace):
        with pytest.raises(Exception):
            simulate_oce_labels(default_trace, [], noise=1.5)
