"""Tests for QoA feature extraction."""

import numpy as np
import pytest

from repro.core.qoa.features import FEATURE_NAMES, StrategyFeatureExtractor


@pytest.fixture(scope="module")
def design(default_trace):
    return StrategyFeatureExtractor(default_trace).extract(min_alerts=5)


class TestExtraction:
    def test_shape(self, design):
        ids, matrix = design
        assert matrix.shape == (len(ids), len(FEATURE_NAMES))

    def test_no_nans(self, design):
        _, matrix = design
        assert np.isfinite(matrix).all()

    def test_channel_one_hot(self, design):
        _, matrix = design
        metric = FEATURE_NAMES.index("is_metric")
        log = FEATURE_NAMES.index("is_log")
        probe = FEATURE_NAMES.index("is_probe")
        one_hot = matrix[:, [metric, log, probe]]
        assert np.allclose(one_hot.sum(axis=1), 1.0)

    def test_fractions_in_unit_range(self, design):
        _, matrix = design
        for name in ("clarity", "vagueness", "transient_share", "manual_share",
                     "incident_overlap", "severity_impact_gap"):
            column = matrix[:, FEATURE_NAMES.index(name)]
            assert (column >= 0).all() and (column <= 1.0 + 1e-9).all(), name

    def test_min_alerts_filters(self, default_trace):
        ids_loose, _ = StrategyFeatureExtractor(default_trace).extract(min_alerts=1)
        ids_tight, _ = StrategyFeatureExtractor(default_trace).extract(min_alerts=50)
        assert len(ids_tight) < len(ids_loose)

    def test_clarity_tracks_injected_a1(self, default_trace, design):
        ids, matrix = design
        clarity = matrix[:, FEATURE_NAMES.index("clarity")]
        a1 = np.array([
            "A1" in default_trace.strategies[sid].injected_antipatterns()
            for sid in ids
        ])
        if a1.sum() < 3:
            pytest.skip("too few A1 strategies in sample")
        assert clarity[a1].mean() < clarity[~a1].mean() - 0.2

    def test_transient_share_tracks_injected_a4(self, default_trace, design):
        ids, matrix = design
        transient = matrix[:, FEATURE_NAMES.index("transient_share")]
        a4 = np.array([
            "A4" in default_trace.strategies[sid].injected_antipatterns()
            for sid in ids
        ])
        assert transient[a4].mean() > transient[~a4].mean()

    def test_empty_trace(self):
        from repro.workload.trace import AlertTrace

        ids, matrix = StrategyFeatureExtractor(AlertTrace()).extract()
        assert ids == []
        assert matrix.shape == (0, len(FEATURE_NAMES))
