"""Tests for the QoA model and split helper."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.qoa.model import QoAModel, train_test_split


@pytest.fixture()
def synthetic():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(300, 5))
    labels = {
        "indicativeness": (features[:, 0] > 0).astype(float),
        "precision": (features[:, 1] > 0).astype(float),
        "handleability": (features[:, 2] > 0).astype(float),
    }
    return features, labels


class TestQoAModel:
    def test_fit_predict(self, synthetic):
        features, labels = synthetic
        model = QoAModel().fit(features, labels)
        accuracy = model.accuracy(features, labels)
        for criterion, value in accuracy.items():
            assert value > 0.9, criterion

    def test_predict_proba_shape(self, synthetic):
        features, labels = synthetic
        model = QoAModel().fit(features, labels)
        probas = model.predict_proba(features[:10])
        assert set(probas) == set(labels)
        assert all(p.shape == (10,) for p in probas.values())

    def test_unfitted_rejected(self, synthetic):
        features, _ = synthetic
        with pytest.raises(ValidationError):
            QoAModel().predict(features)

    def test_missing_criterion_rejected(self, synthetic):
        features, labels = synthetic
        del labels["precision"]
        with pytest.raises(ValidationError):
            QoAModel().fit(features, labels)


class TestSplit:
    def test_partition(self):
        train, test = train_test_split(100, test_fraction=0.3, seed=1)
        assert len(train) + len(test) == 100
        assert set(train).isdisjoint(set(test))
        assert len(test) == 30

    def test_deterministic(self):
        assert np.array_equal(train_test_split(50, seed=5)[0],
                              train_test_split(50, seed=5)[0])

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValidationError):
            train_test_split(10, test_fraction=1.5)

    def test_tiny_n_rejected(self):
        with pytest.raises(ValidationError):
            train_test_split(1)
