"""Tests for measured (learning-free) QoA."""

import numpy as np
import pytest

from repro.core.qoa.metrics import measure_qoa


@pytest.fixture(scope="module")
def scores(default_trace):
    return measure_qoa(default_trace)


class TestMeasuredQoA:
    def test_scores_in_unit_range(self, scores):
        for qoa in scores.values():
            for value in (qoa.indicativeness, qoa.precision, qoa.handleability):
                assert 0.0 <= value <= 1.0

    def test_overall_is_mean(self, scores):
        qoa = next(iter(scores.values()))
        expected = (qoa.indicativeness + qoa.precision + qoa.handleability) / 3
        assert qoa.overall == pytest.approx(expected)

    def test_handleability_tracks_a1(self, scores, default_trace):
        a1 = [s.handleability for sid, s in scores.items()
              if "A1" in default_trace.strategies[sid].injected_antipatterns()]
        clean = [s.handleability for sid, s in scores.items()
                 if not default_trace.strategies[sid].injected_antipatterns()]
        if len(a1) < 3:
            pytest.skip("too few A1 strategies")
        assert np.mean(a1) < np.mean(clean)

    def test_indicativeness_tracks_a4(self, scores, default_trace):
        a4 = [s.indicativeness for sid, s in scores.items()
              if "A4" in default_trace.strategies[sid].injected_antipatterns()]
        clean = [s.indicativeness for sid, s in scores.items()
                 if not default_trace.strategies[sid].injected_antipatterns()]
        assert np.mean(a4) < np.mean(clean)

    def test_min_alerts_respected(self, default_trace):
        few = measure_qoa(default_trace, min_alerts=100)
        many = measure_qoa(default_trace, min_alerts=5)
        assert len(few) < len(many)

    def test_empty_trace(self):
        from repro.workload.trace import AlertTrace

        assert measure_qoa(AlertTrace()) == {}

    def test_validation_on_scores(self):
        from repro.core.qoa.metrics import QoAScores

        with pytest.raises(Exception):
            QoAScores("s", indicativeness=1.4, precision=0.5, handleability=0.5)
