"""Tests for the end-to-end QoA evaluation pipeline."""

import pytest

from repro.analysis.paper_reference import QOA_CRITERIA
from repro.core.qoa.evaluator import evaluate_qoa_pipeline


@pytest.fixture(scope="module")
def report(default_trace):
    return evaluate_qoa_pipeline(default_trace, seed=42)


class TestEvaluation:
    def test_all_criteria_evaluated(self, report):
        assert set(report.accuracy) == set(QOA_CRITERIA)
        assert set(report.majority_baseline) == set(QOA_CRITERIA)

    def test_beats_or_matches_baseline(self, report):
        for criterion in QOA_CRITERIA:
            assert report.accuracy[criterion] >= report.majority_baseline[criterion] - 0.03

    def test_handleability_clearly_learnable(self, report):
        # A1 leaves a strong text footprint; the model must beat the
        # baseline by a clear margin on handleability.
        assert report.accuracy["handleability"] > report.majority_baseline[
            "handleability"
        ] + 0.03

    def test_antipattern_flagging_precision(self, report):
        agreement = report.antipattern_agreement["handleability"]
        assert agreement["precision"] >= 0.6
        assert agreement["recall"] >= 0.6

    def test_split_sizes(self, report):
        assert report.n_train > report.n_test > 0

    def test_render(self, report):
        text = report.render()
        assert "QoA model" in text
        assert "majority baseline" in text
        assert "A1" in text
