"""Tests for error-log event streams."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.telemetry.logs import ERROR_TEMPLATES, LogBurst, LogEventStream


class TestBackground:
    def test_deterministic(self):
        a = LogEventStream(seed=1, background_rate_per_hour=5.0)
        b = LogEventStream(seed=1, background_rate_per_hour=5.0)
        window = TimeWindow(0, 10 * HOUR)
        assert np.array_equal(a.error_times(window), b.error_times(window))

    def test_subwindow_consistency(self):
        stream = LogEventStream(seed=2, background_rate_per_hour=10.0)
        full = stream.error_times(TimeWindow(0, 4 * HOUR))
        part = stream.error_times(TimeWindow(HOUR, 2 * HOUR))
        expected = full[(full >= HOUR) & (full < 2 * HOUR)]
        assert np.array_equal(part, expected)

    def test_rate_scales_counts(self):
        window = TimeWindow(0, 50 * HOUR)
        low = LogEventStream(seed=3, background_rate_per_hour=1.0).error_count(window)
        high = LogEventStream(seed=3, background_rate_per_hour=20.0).error_count(window)
        assert high > low * 5

    def test_zero_rate_no_events(self):
        stream = LogEventStream(seed=4, background_rate_per_hour=0.0)
        assert stream.error_count(TimeWindow(0, 10 * HOUR)) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            LogEventStream(seed=1, background_rate_per_hour=-1.0)

    def test_events_sorted_and_in_window(self):
        stream = LogEventStream(seed=5, background_rate_per_hour=30.0)
        window = TimeWindow(HOUR / 2, 3 * HOUR)
        events = stream.error_times(window)
        assert (np.diff(events) >= 0).all()
        assert ((events >= window.start) & (events < window.end)).all()


class TestBursts:
    def test_burst_elevates_count(self):
        stream = LogEventStream(seed=6, background_rate_per_hour=0.5)
        burst_window = TimeWindow(HOUR, 2 * HOUR)
        stream.add_burst(LogBurst(window=burst_window, rate_per_hour=300.0))
        inside = stream.error_count(burst_window)
        outside = stream.error_count(TimeWindow(3 * HOUR, 4 * HOUR))
        assert inside > 200
        assert outside < 10

    def test_rate_at(self):
        stream = LogEventStream(seed=7, background_rate_per_hour=1.0)
        stream.add_burst(LogBurst(window=TimeWindow(0, HOUR), rate_per_hour=99.0))
        assert stream.rate_at(HOUR / 2) == pytest.approx(100.0)
        assert stream.rate_at(2 * HOUR) == pytest.approx(1.0)

    def test_clear_bursts(self):
        stream = LogEventStream(seed=8, background_rate_per_hour=0.0)
        stream.add_burst(LogBurst(window=TimeWindow(0, HOUR), rate_per_hour=100.0))
        stream.clear_bursts()
        assert stream.error_count(TimeWindow(0, HOUR)) == 0

    def test_partial_hour_burst(self):
        stream = LogEventStream(seed=9, background_rate_per_hour=0.0)
        stream.add_burst(LogBurst(window=TimeWindow(0.25 * HOUR, 0.5 * HOUR),
                                  rate_per_hour=240.0))
        events = stream.error_times(TimeWindow(0, HOUR))
        assert ((events >= 0.25 * HOUR) & (events < 0.5 * HOUR)).all()
        # 240/h for a quarter hour ~ 60 expected.
        assert 20 < events.size < 120

    def test_negative_burst_rate_rejected(self):
        with pytest.raises(ValidationError):
            LogBurst(window=TimeWindow(0, 1), rate_per_hour=-5.0)


class TestTemplates:
    def test_known_flavours_present(self):
        for flavour in ("disk", "network", "timeout", "commit", "oom"):
            assert "ERROR" in ERROR_TEMPLATES[flavour]
