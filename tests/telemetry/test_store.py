"""Tests for the telemetry hub."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.telemetry.logs import LogBurst
from repro.telemetry.metrics import MetricEffect
from repro.telemetry.probes import OutageWindow
from repro.telemetry.store import TelemetryHub


@pytest.fixture()
def component(small_topology):
    name = sorted(small_topology.microservices)[0]
    region = small_topology.region_names()[0]
    return name, region


class TestAccessors:
    def test_metric_generator_cached(self, hub, component):
        micro, region = component
        assert hub.metric(micro, region, "cpu_util") is hub.metric(micro, region, "cpu_util")

    def test_metric_deterministic_across_hubs(self, small_topology, component):
        micro, region = component
        hub_a = TelemetryHub(small_topology, seed=7)
        hub_b = TelemetryHub(small_topology, seed=7)
        times = np.arange(0, HOUR, 60.0)
        assert np.array_equal(
            hub_a.metric(micro, region, "cpu_util").sample(times),
            hub_b.metric(micro, region, "cpu_util").sample(times),
        )

    def test_unknown_microservice_rejected(self, hub):
        with pytest.raises(ValidationError):
            hub.metric("ghost", "region-A", "cpu_util")

    def test_unknown_region_rejected(self, hub, component):
        micro, _ = component
        with pytest.raises(ValidationError):
            hub.metric(micro, "region-Z", "cpu_util")

    def test_unknown_metric_rejected(self, hub, component):
        micro, region = component
        with pytest.raises(ValidationError):
            hub.metric(micro, region, "nonexistent_metric")

    def test_metric_names_by_archetype(self, hub, small_topology):
        db_micro = small_topology.microservices_of("database")[0]
        names = hub.metric_names(db_micro)
        assert "connection_count" in names
        assert "cpu_util" in names

    def test_logs_and_probe_cached(self, hub, component):
        micro, region = component
        assert hub.logs(micro, region) is hub.logs(micro, region)
        assert hub.probe(micro, region) is hub.probe(micro, region)

    def test_regions_isolated(self, hub, component, small_topology):
        micro, region = component
        other_region = small_topology.region_names()[1]
        times = np.arange(0, HOUR, 60.0)
        a = hub.metric(micro, region, "cpu_util").sample(times)
        b = hub.metric(micro, other_region, "cpu_util").sample(times)
        assert not np.array_equal(a, b)


class TestResetFaults:
    def test_reset_clears_everything(self, hub, component):
        micro, region = component
        window = TimeWindow(0, HOUR)
        hub.metric(micro, region, "cpu_util").add_effect(
            MetricEffect(window, "set", 99.0)
        )
        hub.logs(micro, region).add_burst(LogBurst(window=window, rate_per_hour=100.0))
        hub.probe(micro, region).add_outage(OutageWindow(window=window))
        hub.reset_faults()
        assert hub.metric(micro, region, "cpu_util").effects == []
        assert hub.logs(micro, region).bursts == []
        assert hub.probe(micro, region).outages == []
