"""Tests for metric series synthesis."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import DAY, HOUR, TimeWindow
from repro.telemetry.metrics import (
    MetricEffect,
    MetricProfile,
    MetricSeriesGenerator,
    default_profiles,
    scaled_profile,
)


@pytest.fixture()
def cpu_series():
    profile = MetricProfile("cpu_util", "%", base=40.0, daily_amplitude=10.0,
                            noise_std=2.0, ceiling=100.0)
    return MetricSeriesGenerator(profile, seed=123)


class TestProfile:
    def test_ceiling_below_floor_rejected(self):
        with pytest.raises(ValidationError):
            MetricProfile("m", "u", base=1.0, floor=10.0, ceiling=5.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValidationError):
            MetricProfile("m", "u", base=1.0, noise_std=-1.0)

    def test_scaled_profile(self):
        profile = MetricProfile("m", "u", base=10.0)
        assert scaled_profile(profile, 2.0).base == 20.0


class TestSampling:
    def test_deterministic_per_seed(self, cpu_series):
        times = np.arange(0, HOUR, 60.0)
        assert np.array_equal(cpu_series.sample(times), cpu_series.sample(times))

    def test_overlapping_queries_agree(self, cpu_series):
        window_a = cpu_series.sample(np.arange(0, 2 * HOUR, 60.0))
        window_b = cpu_series.sample(np.arange(HOUR, 2 * HOUR, 60.0))
        assert np.allclose(window_a[60:], window_b)

    def test_seed_changes_noise(self):
        profile = MetricProfile("m", "u", base=40.0, noise_std=2.0)
        a = MetricSeriesGenerator(profile, seed=1).sample(np.arange(0, HOUR, 60.0))
        b = MetricSeriesGenerator(profile, seed=2).sample(np.arange(0, HOUR, 60.0))
        assert not np.allclose(a, b)

    def test_stays_in_physical_range(self, cpu_series):
        values = cpu_series.sample(np.arange(0, DAY, 300.0))
        assert (values >= 0.0).all()
        assert (values <= 100.0).all()

    def test_diurnal_pattern_present(self):
        profile = MetricProfile("m", "u", base=100.0, daily_amplitude=50.0)
        series = MetricSeriesGenerator(profile, seed=1)
        times = np.arange(0, DAY, 600.0)
        values = series.sample(times)
        assert values.max() - values.min() > 80.0

    def test_sample_window(self, cpu_series):
        times, values = cpu_series.sample_window(TimeWindow(0, HOUR), 60.0)
        assert times.shape == values.shape
        assert len(times) == 60

    def test_sample_window_bad_interval(self, cpu_series):
        with pytest.raises(ValidationError):
            cpu_series.sample_window(TimeWindow(0, HOUR), 0.0)

    def test_noise_is_roughly_standard(self):
        profile = MetricProfile("m", "u", base=0.0, noise_std=1.0, floor=None)
        series = MetricSeriesGenerator(profile, seed=9)
        values = series.sample(np.arange(0, 30 * DAY, 300.0))
        assert abs(float(values.mean())) < 0.1
        assert 0.8 < float(values.std()) < 1.2


class TestEffects:
    def test_add(self, cpu_series):
        cpu_series.add_effect(MetricEffect(TimeWindow(0, HOUR), "add", 50.0))
        inside = cpu_series.sample(np.array([HOUR / 2]))
        outside = cpu_series.sample(np.array([2 * HOUR]))
        assert inside[0] > outside[0] + 30.0

    def test_set(self, cpu_series):
        cpu_series.add_effect(MetricEffect(TimeWindow(0, HOUR), "set", 95.0))
        assert cpu_series.sample(np.array([10.0]))[0] == 95.0

    def test_scale(self):
        profile = MetricProfile("m", "u", base=10.0)
        series = MetricSeriesGenerator(profile, seed=1)
        series.add_effect(MetricEffect(TimeWindow(0, HOUR), "scale", 3.0))
        assert series.sample(np.array([10.0]))[0] == pytest.approx(30.0)

    def test_ramp_grows_over_window(self):
        profile = MetricProfile("m", "u", base=10.0)
        series = MetricSeriesGenerator(profile, seed=1)
        series.add_effect(MetricEffect(TimeWindow(0, HOUR), "ramp", 60.0))
        early = series.sample(np.array([60.0]))[0]
        late = series.sample(np.array([HOUR - 60.0]))[0]
        assert early < 15.0
        assert late > 60.0

    def test_effect_outside_window_inert(self, cpu_series):
        baseline = cpu_series.sample(np.array([3 * HOUR]))
        cpu_series.add_effect(MetricEffect(TimeWindow(0, HOUR), "add", 100.0))
        assert cpu_series.sample(np.array([3 * HOUR]))[0] == baseline[0]

    def test_clear_effects(self, cpu_series):
        cpu_series.add_effect(MetricEffect(TimeWindow(0, HOUR), "set", 95.0))
        cpu_series.clear_effects()
        assert cpu_series.effects == []

    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError):
            MetricEffect(TimeWindow(0, 1), "explode", 1.0)

    def test_effects_stack_in_order(self):
        profile = MetricProfile("m", "u", base=10.0)
        series = MetricSeriesGenerator(profile, seed=1)
        series.add_effect(MetricEffect(TimeWindow(0, HOUR), "set", 50.0))
        series.add_effect(MetricEffect(TimeWindow(0, HOUR), "scale", 2.0))
        assert series.sample(np.array([10.0]))[0] == pytest.approx(100.0)


class TestDefaultProfiles:
    def test_universal_metrics_everywhere(self):
        for archetype in ("storage", "database", "network", "frontend"):
            profiles = default_profiles(archetype)
            for name in ("cpu_util", "memory_util", "disk_util", "latency_ms"):
                assert name in profiles

    def test_archetype_extras(self):
        assert "connection_count" in default_profiles("database")
        assert "io_throughput" in default_profiles("storage")
        assert "queue_depth" in default_profiles("middleware")

    def test_unknown_archetype_gets_universal_only(self):
        profiles = default_profiles("unknown")
        assert "cpu_util" in profiles
        assert "connection_count" not in profiles
