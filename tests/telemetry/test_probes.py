"""Tests for heartbeat probe simulation."""

import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, MINUTE, TimeWindow
from repro.telemetry.probes import OutageWindow, ProbeSimulator


class TestResponding:
    def test_healthy_target_responds(self):
        probe = ProbeSimulator(seed=1)
        assert probe.is_responding(100.0)
        assert probe.response_time_ms(100.0) is not None

    def test_response_time_positive_and_stable(self):
        probe = ProbeSimulator(seed=1)
        first = probe.response_time_ms(50.0)
        second = probe.response_time_ms(50.0)
        assert first == second
        assert first > 0.0

    def test_bad_base_response_rejected(self):
        with pytest.raises(ValidationError):
            ProbeSimulator(seed=1, base_response_ms=0.0)


class TestOutages:
    def test_outage_blocks_response(self):
        probe = ProbeSimulator(seed=1)
        probe.add_outage(OutageWindow(window=TimeWindow(HOUR, 2 * HOUR)))
        assert not probe.is_responding(HOUR + 1)
        assert probe.response_time_ms(HOUR + 1) is None
        assert probe.is_responding(2 * HOUR + 1)

    def test_unresponsive_duration(self):
        probe = ProbeSimulator(seed=1)
        probe.add_outage(OutageWindow(window=TimeWindow(HOUR, 2 * HOUR)))
        assert probe.unresponsive_duration(HOUR + 10 * MINUTE) == pytest.approx(10 * MINUTE)

    def test_unresponsive_duration_zero_when_up(self):
        probe = ProbeSimulator(seed=1)
        assert probe.unresponsive_duration(500.0) == 0.0

    def test_adjacent_outages_merge(self):
        probe = ProbeSimulator(seed=1)
        probe.add_outage(OutageWindow(window=TimeWindow(HOUR, 2 * HOUR)))
        probe.add_outage(OutageWindow(window=TimeWindow(2 * HOUR, 3 * HOUR)))
        duration = probe.unresponsive_duration(2 * HOUR + 30 * MINUTE)
        assert duration == pytest.approx(HOUR + 30 * MINUTE)

    def test_clear_outages(self):
        probe = ProbeSimulator(seed=1)
        probe.add_outage(OutageWindow(window=TimeWindow(0, HOUR)))
        probe.clear_outages()
        assert probe.is_responding(10.0)
        assert probe.outages == []
