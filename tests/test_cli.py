"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory, capsys_disabled=None):
    directory = tmp_path_factory.mktemp("cli-trace")
    code = main(["generate", "--out", str(directory), "--seed", "5",
                 "--days", "7", "--strategies", "60"])
    assert code == 0
    return directory


class TestGenerate:
    def test_writes_trace(self, trace_dir):
        assert (trace_dir / "alerts.jsonl").exists()
        assert (trace_dir / "strategies.jsonl").exists()

    def test_prints_stats(self, trace_dir, capsys):
        main(["generate", "--out", str(trace_dir), "--seed", "5",
              "--days", "7", "--strategies", "60"])
        out = capsys.readouterr().out
        assert "alerts:" in out
        assert "saved to" in out


class TestAnalyses:
    def test_mine(self, trace_dir, capsys):
        assert main(["mine", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "individual candidates" in out

    def test_mitigate(self, trace_dir, capsys):
        assert main(["mitigate", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "OCE-load reduction" in out

    def test_stream(self, trace_dir, capsys):
        assert main(["stream", "--trace", str(trace_dir), "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "OCE-load reduction" in out

    def test_stream_reconciles_with_batch(self, trace_dir, capsys):
        assert main(["stream", "--trace", str(trace_dir), "--reconcile"]) == 0
        out = capsys.readouterr().out
        assert "matches batch pipeline exactly" in out

    def test_stream_thread_backend_reconciles(self, trace_dir, capsys):
        assert main(["stream", "--trace", str(trace_dir), "--backend", "thread",
                     "--planes", "2", "--workers", "2", "--flush-size", "256",
                     "--reconcile"]) == 0
        out = capsys.readouterr().out
        assert "thread x2 workers" in out
        assert "matches batch pipeline exactly" in out
        assert "per-plane accounting:" in out
        assert "plane 1 [" in out

    def test_stream_planes_reconcile(self, trace_dir, capsys):
        assert main(["stream", "--trace", str(trace_dir), "--planes", "3",
                     "--reconcile"]) == 0
        out = capsys.readouterr().out
        assert "planes:                     3" in out
        assert "matches batch pipeline exactly" in out

    def test_stream_rebalance_midway_reconciles(self, trace_dir, capsys):
        assert main(["stream", "--trace", str(trace_dir), "--shards", "2",
                     "--rebalance-to", "6", "--reconcile"]) == 0
        out = capsys.readouterr().out
        assert "shard rebalances" in out
        assert "matches batch pipeline exactly" in out

    def test_qoa(self, trace_dir, capsys):
        assert main(["qoa", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "QoA model" in out


class TestStandalone:
    def test_storm(self, capsys):
        assert main(["storm"]) == 0
        out = capsys.readouterr().out
        assert "HAProxy" in out
        assert "2,751" in out or "2751" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out
        assert "Figure 2(c)" in out

    def test_lint(self, capsys):
        assert main(["lint", "--strategies", "50"]) == 0
        out = capsys.readouterr().out
        assert "checked 50 strategies" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "repro-alerts" in capsys.readouterr().out
