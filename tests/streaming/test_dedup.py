"""Online aggregation: batch parity, eviction, and bounded state."""

from repro.alerting.alert import Severity
from repro.core.mitigation.aggregation import AlertAggregator
from repro.streaming.dedup import OnlineAggregator
from tests.streaming.conftest import make_alert


def _aggregate_key(aggregate):
    return (
        aggregate.strategy_id,
        aggregate.region,
        aggregate.count,
        round(aggregate.window.start, 6),
        aggregate.representative.alert_id,
        aggregate.alert_ids,
    )


def _mixed_stream():
    """Interleaved strategies/regions with window-edge and burst shapes."""
    alerts = []
    for i in range(40):
        alerts.append(make_alert(i * 60.0, strategy_id="s-burst", region="region-A"))
    # Exactly-at-window gap must extend the session (<=, as in batch).
    alerts.append(make_alert(0.0, strategy_id="s-edge", region="region-A"))
    alerts.append(make_alert(900.0, strategy_id="s-edge", region="region-A"))
    # Just-past-window gap must split.
    alerts.append(make_alert(0.0, strategy_id="s-split", region="region-A"))
    alerts.append(make_alert(900.1, strategy_id="s-split", region="region-A"))
    # Same strategy, different region: independent sessions.
    alerts.append(make_alert(100.0, strategy_id="s-burst", region="region-B"))
    # Severity tie-breaking for the representative.
    alerts.append(make_alert(50.0, strategy_id="s-sev", severity=Severity.WARNING))
    alerts.append(make_alert(60.0, strategy_id="s-sev", severity=Severity.CRITICAL))
    alerts.append(make_alert(70.0, strategy_id="s-sev", severity=Severity.CRITICAL))
    alerts.sort(key=lambda a: a.occurred_at)
    return alerts


class TestBatchParity:
    def test_sessions_match_batch_aggregator(self):
        alerts = _mixed_stream()
        batch = AlertAggregator(900.0).aggregate(alerts)
        online = OnlineAggregator(900.0)
        emitted = []
        for alert in alerts:
            emitted.extend(online.ingest(alert))
        emitted.extend(online.drain())
        assert sorted(map(_aggregate_key, emitted)) == sorted(map(_aggregate_key, batch))

    def test_representative_prefers_severity_then_time(self):
        online = OnlineAggregator(900.0)
        emitted = []
        for alert in _mixed_stream():
            emitted.extend(online.ingest(alert))
        emitted.extend(online.drain())
        sev = next(a for a in emitted if a.strategy_id == "s-sev")
        assert sev.severity is Severity.CRITICAL
        assert sev.representative.occurred_at == 60.0  # earliest CRITICAL


class TestEviction:
    def test_idle_sessions_close_when_watermark_passes(self):
        online = OnlineAggregator(900.0)
        online.ingest(make_alert(0.0, strategy_id="s-old"))
        # An unrelated event far later closes the idle session.
        emitted = online.ingest(make_alert(5000.0, strategy_id="s-new"))
        assert [a.strategy_id for a in emitted] == ["s-old"]
        assert online.open_sessions == 1  # only s-new remains

    def test_exact_window_gap_does_not_evict(self):
        online = OnlineAggregator(900.0)
        online.ingest(make_alert(0.0, strategy_id="s-a"))
        emitted = online.ingest(make_alert(900.0, strategy_id="s-b"))
        assert emitted == []  # s-a could still be extended at t=900
        emitted = online.ingest(make_alert(900.0, strategy_id="s-a"))
        assert emitted == []  # and indeed is
        assert online.open_sessions == 2

    def test_open_state_stays_bounded_on_long_stream(self):
        online = OnlineAggregator(900.0)
        for i in range(5000):
            online.ingest(make_alert(i * 30.0, strategy_id=f"s-{i % 10}"))
        # 10 keys all active within the window: exactly 10 open sessions.
        assert online.open_sessions == 10

    def test_min_open_first_tracks_earliest_session(self):
        online = OnlineAggregator(900.0)
        assert online.min_open_first() is None
        online.ingest(make_alert(100.0, strategy_id="s-a"))
        online.ingest(make_alert(200.0, strategy_id="s-b"))
        assert online.min_open_first() == 100.0
        online.drain()
        assert online.min_open_first() is None


class TestBatchIngestion:
    def test_ingest_batch_matches_per_event_path(self):
        alerts = _mixed_stream()
        per_event = OnlineAggregator(900.0)
        a = []
        for alert in alerts:
            a.extend(per_event.ingest(alert))
        a.extend(per_event.drain())
        batched = OnlineAggregator(900.0)
        b = list(batched.ingest_batch(alerts))
        b.extend(batched.drain())
        assert sorted(map(_aggregate_key, a)) == sorted(map(_aggregate_key, b))

    def test_ingest_batch_splits_runs_on_window_gaps(self):
        online = OnlineAggregator(900.0)
        run = [
            make_alert(0.0, strategy_id="s-run"),
            make_alert(100.0, strategy_id="s-run"),
            make_alert(1500.0, strategy_id="s-run"),  # gap > window: new session
        ]
        emitted = online.ingest_batch(run)
        assert len(emitted) == 1
        assert emitted[0].count == 2
        assert online.open_sessions == 1

    def test_ingest_batch_arbitrary_chunking_is_equivalent(self):
        alerts = _mixed_stream()
        whole = OnlineAggregator(900.0)
        a = list(whole.ingest_batch(alerts))
        a.extend(whole.drain())
        chunked = OnlineAggregator(900.0)
        b = []
        for start in range(0, len(alerts), 7):
            b.extend(chunked.ingest_batch(alerts[start:start + 7]))
        b.extend(chunked.drain())
        assert sorted(map(_aggregate_key, a)) == sorted(map(_aggregate_key, b))


class TestSessionMigration:
    def test_export_then_adopt_round_trips(self):
        source = OnlineAggregator(900.0)
        source.ingest(make_alert(100.0, strategy_id="s-a"))
        source.ingest(make_alert(200.0, strategy_id="s-b"))
        sessions = source.export_sessions()
        assert source.open_sessions == 0
        assert [s.strategy_id for s in sessions] == ["s-a", "s-b"]
        target = OnlineAggregator(900.0)
        target.adopt(sessions)
        assert target.open_sessions == 2
        assert target.min_open_first() == 100.0
        # The migrated session keeps extending as if nothing happened.
        emitted = target.ingest(make_alert(500.0, strategy_id="s-a"))
        assert emitted == []
        final = target.drain()
        assert {(a.strategy_id, a.count) for a in final} == {("s-a", 2), ("s-b", 1)}

    def test_adopt_rejects_duplicate_keys(self):
        import pytest

        from repro.common.errors import ValidationError

        source = OnlineAggregator(900.0)
        source.ingest(make_alert(100.0, strategy_id="s-a"))
        sessions = source.export_sessions()
        target = OnlineAggregator(900.0)
        target.ingest(make_alert(50.0, strategy_id="s-a"))
        with pytest.raises(ValidationError):
            target.adopt(sessions)
