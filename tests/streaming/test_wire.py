"""Round-trip tests for the struct-packed process-backend wire format."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import BlockingRule
from repro.streaming import (
    OpenSession,
    PlaneRegionState,
    RegionStormState,
    iter_jsonl_alerts,
    pack_aggregates,
    pack_alerts,
    pack_clusters,
    pack_plane_state,
    unpack_aggregates,
    unpack_alerts,
    unpack_clusters,
    unpack_plane_state,
)
from repro.workload.trace import AlertTrace
from tests.streaming.conftest import make_alert
from tests.streaming.test_golden_trace import (
    TRACE_PATH,
    WINDOW,
    golden_blocker,
    golden_graph,
)


@pytest.fixture(scope="module")
def golden_alerts():
    return list(iter_jsonl_alerts(TRACE_PATH))


class TestAlertRoundTrip:
    def test_empty_batch(self):
        assert unpack_alerts(pack_alerts([])) == []

    def test_golden_trace_round_trips_exactly(self, golden_alerts):
        assert unpack_alerts(pack_alerts(golden_alerts)) == golden_alerts

    def test_optional_fields_survive(self):
        active = make_alert(5.0, cleared_after=None)  # still ACTIVE
        active.fault_id = "fault-0007"
        active.tags = {"team": "edge", "ünïcode": "✓ value"}
        cleared = make_alert(10.0, cleared_after=3.5)
        batch = [active, cleared]
        decoded = unpack_alerts(pack_alerts(batch))
        assert decoded == batch
        assert decoded[0].cleared_at is None
        assert decoded[0].fault_id == "fault-0007"
        assert decoded[0].tags["ünïcode"] == "✓ value"
        assert decoded[1].cleared_at == pytest.approx(13.5)

    def test_dictionary_encoding_beats_pickle_on_repetitive_batches(
        self, golden_alerts
    ):
        packed = pack_alerts(golden_alerts)
        assert len(packed) < len(pickle.dumps(golden_alerts))

    def test_magic_mismatch_rejected(self, golden_alerts):
        blob = pack_alerts(golden_alerts[:3])
        with pytest.raises(ValidationError, match="magic"):
            unpack_aggregates(blob)


class TestSnapshotRoundTrip:
    @pytest.fixture(scope="class")
    def report(self, golden_alerts):
        trace = AlertTrace(alerts=list(golden_alerts), label="wire", seed=0)
        return MitigationPipeline(
            golden_graph(), aggregation_window=WINDOW, correlation_window=WINDOW,
        ).run(trace, blocker=golden_blocker())

    def test_aggregates_round_trip_exactly(self, report):
        aggregates = report.aggregates
        assert len(aggregates) > 0
        assert unpack_aggregates(pack_aggregates(aggregates)) == aggregates

    def test_empty_aggregates(self):
        assert unpack_aggregates(pack_aggregates([])) == []

    def test_clusters_round_trip(self, report):
        clusters = report.clusters
        assert len(clusters) > 0
        decoded = unpack_clusters(pack_clusters(clusters))
        assert len(decoded) == len(clusters)
        for restored, original in zip(decoded, clusters):
            assert restored.alerts == original.alerts
            assert restored.root_microservice == original.root_microservice
            assert restored.coverage == original.coverage
            # root identity is positional: the restored root must be the
            # same member, not a stray copy
            if original.root_alert is not None:
                assert restored.root_alert == original.root_alert
                assert restored.root_alert is restored.alerts[
                    original.alerts.index(original.root_alert)
                ]

    def test_empty_clusters(self):
        assert unpack_clusters(pack_clusters([])) == []


# ----------------------------------------------------------------------
# plane-state snapshots (live plane scale-out migration payloads)
# ----------------------------------------------------------------------
_TEXT = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1, max_size=12,
)


def _session(index: int, region: str, strategy: str, title: str,
             n_ids: int) -> OpenSession:
    representative = make_alert(
        occurred_at=100.0 * index,
        strategy_id=strategy,
        region=region,
        title=title,
    )
    return OpenSession(
        strategy_id=strategy,
        region=region,
        first_at=100.0 * index,
        last_at=100.0 * index + 42.0,
        count=n_ids + 1,
        representative=representative,
        alert_ids=[representative.alert_id] + [
            f"id-{index}-{position}" for position in range(n_ids)
        ],
    )


@st.composite
def plane_states(draw):
    """Randomized region slices: unicode vocab, deep components, rules."""
    region = draw(_TEXT)
    strategies = draw(st.lists(_TEXT, min_size=1, max_size=4, unique=True))
    sessions = [
        _session(index, region, draw(st.sampled_from(strategies)),
                 draw(_TEXT), draw(st.integers(min_value=0, max_value=6)))
        for index in range(draw(st.integers(min_value=0, max_value=4)))
    ]
    components = []
    for component in range(draw(st.integers(min_value=0, max_value=3))):
        # "Deep union-find chains": up to a few dozen members per
        # component, all travelling as one contiguous alert block.
        size = draw(st.integers(min_value=1, max_value=24))
        members = [
            make_alert(
                occurred_at=1000.0 * component + 10.0 * position,
                strategy_id=draw(st.sampled_from(strategies)),
                region=region,
                title=draw(_TEXT),
            )
            for position in range(size)
        ]
        components.append((members, members[-1].occurred_at))
    storm = None
    if draw(st.booleans()):
        has_counter = draw(st.booleans())
        counts = (
            draw(st.lists(st.integers(min_value=0, max_value=10_000),
                          min_size=1, max_size=60))
            if has_counter else None
        )
        storm = RegionStormState(
            region=region,
            bucket_seconds=60.0,
            counts=counts,
            total=sum(counts) if counts else 0,
            head=draw(st.integers(min_value=0, max_value=10**9))
            if has_counter and draw(st.booleans()) else None,
            episode_started_at=draw(st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
            )),
            episode_peak_rate=draw(st.floats(
                min_value=0, max_value=1e6, allow_nan=False,
            )),
            last_seen={
                strategy: draw(st.floats(
                    min_value=0, max_value=1e6, allow_nan=False,
                ))
                for strategy in draw(st.lists(
                    _TEXT, max_size=4, unique=True,
                ))
            },
            episode_count=draw(st.integers(min_value=0, max_value=50)),
            emerging_count=draw(st.integers(min_value=0, max_value=50)),
            ingested=draw(st.integers(min_value=0, max_value=10**6)),
        )
    rules = [
        BlockingRule(
            strategy_id=draw(st.sampled_from(strategies)),
            region=draw(st.one_of(st.none(), st.just(region))),
            reason=draw(_TEXT),
            expires_at=draw(st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1e7, allow_nan=False),
            )),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    return PlaneRegionState(
        region=region,
        counters=[
            draw(st.integers(min_value=0, max_value=10**9)) for _ in range(4)
        ],
        sessions=sessions,
        components=components,
        storm=storm,
        rules=rules,
        shard_pins={
            strategy: draw(st.integers(min_value=0, max_value=63))
            for strategy in draw(st.lists(_TEXT, max_size=4, unique=True))
        },
    )


class TestPlaneStateRoundTrip:
    def test_empty_plane_state(self):
        state = PlaneRegionState(
            region="region-∅", counters=[0, 0, 0, 0], sessions=[],
            components=[], storm=None,
        )
        assert unpack_plane_state(pack_plane_state(state)) == state

    def test_unicode_titles_and_regions_survive(self):
        session = _session(0, "région-α", "stratégie-β", "queue ∞ saturée", 3)
        state = PlaneRegionState(
            region="région-α", counters=[7, 1, 2, 1], sessions=[session],
            components=[([session.representative], 100.0)],
            storm=None,
            rules=[BlockingRule(strategy_id="stratégie-β",
                                reason="ünïcode ✓", expires_at=1234.5)],
        )
        decoded = unpack_plane_state(pack_plane_state(state))
        assert decoded == state
        assert decoded.rules[0].expires_at == 1234.5

    def test_live_learner_rules_with_ttls_survive(self):
        rules = [
            BlockingRule(strategy_id="s-noise",
                         reason="learned A5: 31 alerts of one region",
                         expires_at=7200.0),
            BlockingRule(strategy_id="s-flaky", region="region-B",
                         reason="operator", expires_at=None),
        ]
        state = PlaneRegionState(
            region="region-B", counters=[1, 0, 0, 0], sessions=[],
            components=[], storm=None, rules=rules,
        )
        decoded = unpack_plane_state(pack_plane_state(state))
        assert decoded.rules == rules

    def test_magic_mismatch_rejected(self):
        state = PlaneRegionState(
            region="r", counters=[0, 0, 0, 0], sessions=[], components=[],
            storm=None,
        )
        with pytest.raises(ValidationError, match="magic"):
            unpack_alerts(pack_plane_state(state))

    def test_deterministic_bytes(self):
        state = PlaneRegionState(
            region="region-A", counters=[5, 1, 1, 0],
            sessions=[_session(0, "region-A", "s-api", "latency 42 ms", 2)],
            components=[], storm=None,
        )
        assert pack_plane_state(state) == pack_plane_state(state)

    @settings(max_examples=50, deadline=None)
    @given(state=plane_states())
    def test_fuzz_round_trip_exactly(self, state):
        assert unpack_plane_state(pack_plane_state(state)) == state

    def test_exported_state_round_trips_through_a_live_plane(self):
        """End to end: export a region from a real plane, pack, unpack,
        adopt into a fresh plane, and drain both plane sets to the same
        accounting (the exact path a process-backend migration takes)."""
        from repro.streaming import PlaneConfig, RegionPlane

        def build_plane(plane_id=0):
            return RegionPlane(plane_id, PlaneConfig(
                graph=golden_graph(), blocker=golden_blocker(),
                rulebook=None, n_shards=2, aggregation_window=WINDOW,
                correlation_window=WINDOW, correlation_max_hops=4,
                enable_storm_detection=True, retain_artifacts=True,
                finalize_every=256,
            ))

        alerts = sorted(
            [
                make_alert(occurred_at=60.0 * index,
                           strategy_id=f"s-{index % 3}",
                           region=("region-A", "region-B")[index % 2],
                           microservice=("m-1", "m-2")[index % 2])
                for index in range(80)
            ],
            key=lambda alert: alert.occurred_at,
        )
        source = build_plane()
        source.process_batch(alerts, in_warmup=0, watermark=alerts[-1].occurred_at)
        exported = source.export_region("region-B")
        restored = unpack_plane_state(pack_plane_state(exported))
        assert restored == exported
        target = build_plane(plane_id=1)
        target.adopt_region(restored)
        total = (
            source.drain(alerts[-1].occurred_at).counters()["aggregates"]
            + target.drain(alerts[-1].occurred_at).counters()["aggregates"]
        )
        whole = build_plane(plane_id=2)
        whole.process_batch(alerts, in_warmup=0, watermark=alerts[-1].occurred_at)
        assert total == whole.drain(alerts[-1].occurred_at).counters()["aggregates"]


class TestDetectionRoundTrip:
    CATALOG = [
        ("s-1", 10.0, "alert-000001", "disk full on node",
         "usage over threshold", 2, "svc-a", 500.0),
        ("s-β", 20.0, "alert-000002", "titre: débit élevé",
         "description en français", 0, "svc-β", 400.0),
    ]
    STATS = [
        ("s-1", "region-A", 0, 4, 1, 2, 3, 360.5, (1.0, 2.0, 3.0, 4.0)),
        ("s-β", "région-β", 7, 1, 0, 0, 1, 60.0, (25_201.5,)),
    ]
    DOCS = [((1, 5, 9), (2, 1, 1)), ((), ())]
    DOC_ROWS = [(10.0, "s-1", 0), (20.0, "s-β", 1)]

    def test_round_trip_is_exact(self):
        from repro.streaming import pack_detection, unpack_detection

        data = pack_detection(self.CATALOG, self.STATS, self.DOCS,
                              self.DOC_ROWS)
        catalog, stats, docs, doc_rows = unpack_detection(data)
        assert catalog == self.CATALOG
        assert stats == self.STATS
        assert docs == self.DOCS
        assert doc_rows == self.DOC_ROWS

    def test_empty_digest_round_trips(self):
        from repro.streaming import pack_detection, unpack_detection

        assert unpack_detection(pack_detection([], [], [], [])) == \
            ([], [], [], [])

    def test_deterministic_bytes(self):
        from repro.streaming import pack_detection

        args = (self.CATALOG, self.STATS, self.DOCS, self.DOC_ROWS)
        assert pack_detection(*args) == pack_detection(*args)

    def test_magic_mismatch_rejected(self):
        from repro.streaming import pack_detection, unpack_detection

        data = pack_detection(self.CATALOG, [], [], [])
        with pytest.raises(ValidationError, match="magic"):
            unpack_alerts(data)
        with pytest.raises(ValidationError, match="magic"):
            unpack_detection(pack_alerts([]))
