"""Round-trip tests for the struct-packed process-backend wire format."""

import pickle

import pytest

from repro.common.errors import ValidationError
from repro.core.mitigation import MitigationPipeline
from repro.streaming import (
    iter_jsonl_alerts,
    pack_aggregates,
    pack_alerts,
    pack_clusters,
    unpack_aggregates,
    unpack_alerts,
    unpack_clusters,
)
from repro.workload.trace import AlertTrace
from tests.streaming.conftest import make_alert
from tests.streaming.test_golden_trace import (
    TRACE_PATH,
    WINDOW,
    golden_blocker,
    golden_graph,
)


@pytest.fixture(scope="module")
def golden_alerts():
    return list(iter_jsonl_alerts(TRACE_PATH))


class TestAlertRoundTrip:
    def test_empty_batch(self):
        assert unpack_alerts(pack_alerts([])) == []

    def test_golden_trace_round_trips_exactly(self, golden_alerts):
        assert unpack_alerts(pack_alerts(golden_alerts)) == golden_alerts

    def test_optional_fields_survive(self):
        active = make_alert(5.0, cleared_after=None)  # still ACTIVE
        active.fault_id = "fault-0007"
        active.tags = {"team": "edge", "ünïcode": "✓ value"}
        cleared = make_alert(10.0, cleared_after=3.5)
        batch = [active, cleared]
        decoded = unpack_alerts(pack_alerts(batch))
        assert decoded == batch
        assert decoded[0].cleared_at is None
        assert decoded[0].fault_id == "fault-0007"
        assert decoded[0].tags["ünïcode"] == "✓ value"
        assert decoded[1].cleared_at == pytest.approx(13.5)

    def test_dictionary_encoding_beats_pickle_on_repetitive_batches(
        self, golden_alerts
    ):
        packed = pack_alerts(golden_alerts)
        assert len(packed) < len(pickle.dumps(golden_alerts))

    def test_magic_mismatch_rejected(self, golden_alerts):
        blob = pack_alerts(golden_alerts[:3])
        with pytest.raises(ValidationError, match="magic"):
            unpack_aggregates(blob)


class TestSnapshotRoundTrip:
    @pytest.fixture(scope="class")
    def report(self, golden_alerts):
        trace = AlertTrace(alerts=list(golden_alerts), label="wire", seed=0)
        return MitigationPipeline(
            golden_graph(), aggregation_window=WINDOW, correlation_window=WINDOW,
        ).run(trace, blocker=golden_blocker())

    def test_aggregates_round_trip_exactly(self, report):
        aggregates = report.aggregates
        assert len(aggregates) > 0
        assert unpack_aggregates(pack_aggregates(aggregates)) == aggregates

    def test_empty_aggregates(self):
        assert unpack_aggregates(pack_aggregates([])) == []

    def test_clusters_round_trip(self, report):
        clusters = report.clusters
        assert len(clusters) > 0
        decoded = unpack_clusters(pack_clusters(clusters))
        assert len(decoded) == len(clusters)
        for restored, original in zip(decoded, clusters):
            assert restored.alerts == original.alerts
            assert restored.root_microservice == original.root_microservice
            assert restored.coverage == original.coverage
            # root identity is positional: the restored root must be the
            # same member, not a stray copy
            if original.root_alert is not None:
                assert restored.root_alert == original.root_alert
                assert restored.root_alert is restored.alerts[
                    original.alerts.index(original.root_alert)
                ]

    def test_empty_clusters(self):
        assert unpack_clusters(pack_clusters([])) == []
