"""GatewayStats merge paths: per-plane counters vs gateway totals.

The gateway's lifetime totals are *derived* — every flush and drain
merges per-plane counter dicts into ``GatewayStats`` via
``_refresh_totals``.  These tests pin the merge invariant directly (the
property suite only exercises it indirectly through parity): at any
observable point — mid-stream snapshot, after a live rebalance, after a
mid-stream drain, across backends — the per-plane rows must partition
the gateway totals exactly, and the ``snapshot()`` payload must agree
with the dataclass counters it summarises.
"""

from __future__ import annotations

import pytest

from repro.streaming import AlertGateway
from repro.topology.graph import DependencyGraph

from tests.streaming.conftest import make_alert


def _graph() -> DependencyGraph:
    graph = DependencyGraph()
    for name in ("m-1", "m-2", "m-3"):
        graph.add_microservice(name, service="svc")
    graph.add_dependency("m-1", "m-2")
    return graph


def _alerts(n: int = 240) -> list:
    """Four regions interleaved, several strategies, session-window gaps."""
    alerts = []
    for index in range(n):
        region = ("region-A", "region-B", "region-C", "region-D")[index % 4]
        strategy = f"s-{index % 5}"
        alerts.append(make_alert(
            occurred_at=index * 37.0,
            strategy_id=strategy,
            region=region,
            microservice=("m-1", "m-2", "m-3")[index % 3],
        ))
    return alerts


def _assert_planes_partition_totals(stats) -> None:
    planes = stats.planes.values()
    assert sum(p["processed"] for p in planes) == stats.input_alerts
    assert sum(p["blocked"] for p in planes) == stats.blocked_alerts
    assert sum(p["aggregates"] for p in planes) == stats.aggregates_emitted
    assert sum(p["clusters"] for p in planes) == stats.clusters_finalized
    assert sum(p["storm_episodes"] for p in planes) == stats.storm_episodes
    assert sum(p["emerging_flags"] for p in planes) == stats.emerging_flags


def _assert_snapshot_agrees(stats) -> None:
    payload = stats.snapshot()
    assert payload["input_alerts"] == stats.input_alerts
    assert payload["blocked_alerts"] == stats.blocked_alerts
    assert payload["aggregates"] == stats.aggregates_emitted
    assert payload["clusters"] == stats.clusters_finalized
    assert len(payload["planes"]) == len(stats.planes)
    for row in payload["planes"]:
        assert row == stats.planes[row["plane_id"]]


@pytest.mark.parametrize("backend,kwargs", [
    ("serial", {"n_planes": 1}),
    ("serial", {"n_planes": 4}),
    ("thread", {"n_planes": 2, "n_workers": 2}),
    ("process", {"n_planes": 2, "n_workers": 2}),
])
class TestPlaneMergePartitionsTotals:
    def test_mid_stream_snapshot_merge(self, backend, kwargs):
        gateway = AlertGateway(
            _graph(), backend=backend, flush_size=32,
            retain_artifacts=False, **kwargs,
        )
        alerts = _alerts()
        gateway.ingest_batch(alerts[:150])
        gateway.snapshot()  # forces a flush + plane-counter refresh
        _assert_planes_partition_totals(gateway.stats)
        _assert_snapshot_agrees(gateway.stats)
        gateway.ingest_batch(alerts[150:])
        gateway.drain()

    def test_merge_under_rebalance(self, backend, kwargs):
        gateway = AlertGateway(
            _graph(), backend=backend, flush_size=32, n_shards=2,
            retain_artifacts=False, **kwargs,
        )
        alerts = _alerts()
        gateway.ingest_batch(alerts[:100])
        gateway.rebalance(5)
        gateway.snapshot()
        _assert_planes_partition_totals(gateway.stats)
        assert gateway.stats.rebalances == 1
        assert gateway.stats.n_shards == 5
        gateway.ingest_batch(alerts[100:])
        stats = gateway.drain()
        _assert_planes_partition_totals(stats)
        _assert_snapshot_agrees(stats)

    def test_merge_under_mid_stream_drain(self, backend, kwargs):
        """Draining with sessions and buffers still open: the drain flush
        plus the final per-plane drain results must still partition."""
        gateway = AlertGateway(
            _graph(), backend=backend, flush_size=64,
            retain_artifacts=False, **kwargs,
        )
        alerts = _alerts()
        # 70 events: partial flush buffered, sessions open everywhere.
        gateway.ingest_batch(alerts[:70])
        stats = gateway.drain()
        assert stats.input_alerts == 70
        _assert_planes_partition_totals(stats)
        _assert_snapshot_agrees(stats)


@pytest.mark.parametrize("backend,kwargs", [
    ("serial", {"n_planes": 1}),
    ("serial", {"n_planes": 4}),
    ("thread", {"n_planes": 2, "n_workers": 2}),
    ("process", {"n_planes": 2, "n_workers": 2}),
])
class TestPlaneMergeSurvivesMigration:
    """The satellite fix: per-plane rows must reconcile to gateway totals
    even though a scale event re-homes counter history — the old merge
    assumed plane identity was stable, so scale-in left stale rows for
    dead planes (double counting) and scale-out left moved history on
    the wrong plane."""

    def test_merge_after_scale_out(self, backend, kwargs):
        gateway = AlertGateway(
            _graph(), backend=backend, flush_size=32,
            retain_artifacts=False, **kwargs,
        )
        alerts = _alerts()
        gateway.ingest_batch(alerts[:150])
        gateway.scale_planes(4)
        # Immediately after the migration — before any further flush —
        # the rebuilt rows must already partition the totals.
        _assert_planes_partition_totals(gateway.stats)
        assert set(gateway.stats.planes) == set(range(4))
        gateway.ingest_batch(alerts[150:])
        stats = gateway.drain()
        _assert_planes_partition_totals(stats)
        _assert_snapshot_agrees(stats)

    def test_merge_after_scale_in(self, backend, kwargs):
        gateway = AlertGateway(
            _graph(), backend=backend, flush_size=32,
            retain_artifacts=False, **kwargs,
        )
        alerts = _alerts()
        gateway.ingest_batch(alerts[:150])
        gateway.scale_planes(1)
        # Rows keyed by dead plane ids must be gone, not lingering as
        # stale duplicates of the migrated history.
        assert set(gateway.stats.planes) == {0}
        _assert_planes_partition_totals(gateway.stats)
        gateway.ingest_batch(alerts[150:])
        stats = gateway.drain()
        assert set(stats.planes) == {0}
        _assert_planes_partition_totals(stats)
        _assert_snapshot_agrees(stats)

    def test_merge_after_scale_then_rebalance(self, backend, kwargs):
        gateway = AlertGateway(
            _graph(), backend=backend, flush_size=32, n_shards=2,
            retain_artifacts=False, **kwargs,
        )
        alerts = _alerts()
        gateway.ingest_batch(alerts[:100])
        gateway.scale_planes(3)
        gateway.rebalance(5)
        gateway.snapshot()
        _assert_planes_partition_totals(gateway.stats)
        gateway.ingest_batch(alerts[100:])
        stats = gateway.drain()
        assert stats.plane_scales == 1
        assert stats.rebalances == 1
        _assert_planes_partition_totals(stats)
        _assert_snapshot_agrees(stats)


def test_scale_events_land_in_the_snapshot_payload():
    gateway = AlertGateway(_graph(), n_planes=1, flush_size=16,
                           retain_artifacts=False)
    alerts = _alerts(120)
    gateway.ingest_batch(alerts[:60])
    gateway.scale_planes(3)
    gateway.ingest_batch(alerts[60:])
    stats = gateway.drain()
    payload = stats.snapshot()
    assert payload["plane_scales"] == 1
    assert payload["scales"] == [{
        "at_input": 60, "from_planes": 1, "to_planes": 3,
        "moved_regions": stats.scales[0]["moved_regions"],
    }]
    assert payload["scales"][0]["moved_regions"] > 0


def test_post_drain_snapshot_is_rebuilt_from_frozen_totals():
    gateway = AlertGateway(_graph(), n_planes=2, flush_size=16,
                           retain_artifacts=False)
    gateway.ingest_batch(_alerts(120))
    stats = gateway.drain()
    snapshot = gateway.snapshot()
    assert snapshot.input_alerts == stats.input_alerts
    assert snapshot.blocked_alerts == stats.blocked_alerts
    assert snapshot.open_sessions == 0
    assert sum(p.processed for p in snapshot.planes) == stats.input_alerts


def test_learner_and_qoa_counters_survive_the_merge():
    """The learning-side counters ride the same snapshot payload."""
    gateway = AlertGateway(
        _graph(), n_planes=2, flush_size=16, learn_rules=True,
        enable_qoa=True, retain_artifacts=False,
    )
    gateway.ingest_batch(_alerts(120))
    stats = gateway.drain()
    payload = stats.snapshot()
    assert payload["learner"]["enabled"] is True
    assert payload["learner"]["rules_promoted"] == stats.rules_promoted
    assert payload["qoa"] is not None
    assert sum(row["seen"] for row in payload["qoa"].values()) == (
        stats.input_alerts
    )
