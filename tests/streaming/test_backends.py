"""Backend parity harness: every execution backend must count identically.

The core correctness invariant of the streaming subsystem is that the
gateway's end-of-run volume accounting reproduces the batch
``MitigationPipeline`` *exactly*.  This module pins that invariant
across every execution backend, plane count, shard count, and flush
size — including a consistent-hash rebalance in the middle of the
stream — plus the mechanics the plane backends themselves must honour
(plane-local rebalance, worker lifecycle, deterministic results).
"""

import pytest

from repro.common.errors import ValidationError
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import (
    AlertGateway,
    PlaneConfig,
    ProcessPlaneBackend,
    SerialPlaneBackend,
    ThreadPlaneBackend,
    make_backend,
)
from repro.topology.graph import DependencyGraph
from tests.streaming.conftest import make_alert


@pytest.fixture(scope="module")
def storm_setup(storm_trace):
    """Trace, topology, derived blocker/rulebook, and the batch report."""
    trace, topology = storm_trace
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6, seed=trace.seed)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )
    return trace, topology, blocker, rulebook, report


def _gateway(setup, **kwargs):
    trace, topology, blocker, rulebook, _ = setup
    kwargs.setdefault("retain_artifacts", False)
    return AlertGateway(
        topology.graph, blocker=blocker, rulebook=rulebook, **kwargs
    )


def _plane_config(n_shards: int = 2, **overrides) -> PlaneConfig:
    defaults = dict(
        graph=DependencyGraph(),
        blocker=AlertBlocker(),
        rulebook=None,
        n_shards=n_shards,
        aggregation_window=900.0,
        correlation_window=900.0,
        correlation_max_hops=4,
        enable_storm_detection=True,
        retain_artifacts=False,
        finalize_every=256,
    )
    defaults.update(overrides)
    return PlaneConfig(**defaults)


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("n_planes", [1, 2])
    @pytest.mark.parametrize("n_shards", [1, 4, 16])
    @pytest.mark.parametrize("flush_size", [1, 64, 512])
    def test_batched_ingestion_reconciles_exactly(
        self, storm_setup, backend, n_planes, n_shards, flush_size
    ):
        trace, _, _, _, report = storm_setup
        gateway = _gateway(
            storm_setup, backend=backend, n_planes=n_planes,
            n_shards=n_shards, flush_size=flush_size, n_workers=4,
        )
        gateway.ingest_batch(trace.iter_ordered())
        stats = gateway.drain()
        assert stats.reconcile(report) == {}
        assert stats.total_reduction == pytest.approx(report.total_reduction)

    @pytest.mark.parametrize("n_planes,n_shards,n_workers", [
        (1, 2, 2), (2, 5, 2), (4, 2, 2),
    ])
    def test_process_backend_reconciles_exactly(
        self, storm_setup, n_planes, n_shards, n_workers
    ):
        trace, _, _, _, report = storm_setup
        gateway = _gateway(
            storm_setup, backend="process", n_planes=n_planes,
            n_shards=n_shards, n_workers=n_workers, flush_size=512,
        )
        gateway.ingest_batch(trace.iter_ordered())
        stats = gateway.drain()
        assert stats.reconcile(report) == {}

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("new_shards", [2, 8])
    @pytest.mark.parametrize("n_planes", [1, 2])
    def test_rebalance_mid_stream_stays_exact(
        self, storm_setup, backend, new_shards, n_planes
    ):
        trace, _, _, _, report = storm_setup
        gateway = _gateway(
            storm_setup, backend=backend, n_planes=n_planes, n_shards=4,
            flush_size=256, n_workers=2,
        )
        alerts = list(trace.iter_ordered())
        midpoint = len(alerts) // 2
        gateway.ingest_batch(alerts[:midpoint])
        gateway.rebalance(new_shards)
        assert gateway.n_shards == new_shards
        gateway.ingest_batch(alerts[midpoint:])
        stats = gateway.drain()
        assert stats.rebalances == 1
        assert stats.n_shards == new_shards
        assert stats.reconcile(report) == {}

    def test_double_rebalance_stays_exact(self, storm_setup):
        trace, _, _, _, report = storm_setup
        gateway = _gateway(storm_setup, n_planes=2, n_shards=1, flush_size=128)
        alerts = list(trace.iter_ordered())
        third = len(alerts) // 3
        gateway.ingest_batch(alerts[:third])
        gateway.rebalance(8)
        gateway.ingest_batch(alerts[third:2 * third])
        gateway.rebalance(3)
        gateway.ingest_batch(alerts[2 * third:])
        stats = gateway.drain()
        assert stats.rebalances == 2
        assert stats.reconcile(report) == {}


class TestIngestionPaths:
    def test_ingest_batch_matches_per_event_ingest(self, storm_setup):
        trace = storm_setup[0]
        per_event = _gateway(storm_setup, n_planes=2, n_shards=4)
        per_event.ingest_many(trace.iter_ordered())
        batched = _gateway(storm_setup, n_planes=2, n_shards=4, flush_size=512)
        batched.ingest_batch(trace.iter_ordered())
        a, b = per_event.drain(), batched.drain()
        for field in ("input_alerts", "blocked_alerts", "aggregates_emitted",
                      "clusters_finalized", "storm_episodes", "emerging_flags",
                      "late_events", "watermark"):
            assert getattr(a, field) == getattr(b, field), field

    def test_ingest_honours_flush_size(self, storm_setup):
        trace = storm_setup[0]
        gateway = _gateway(storm_setup, n_shards=2, flush_size=100)
        for alert in list(trace.iter_ordered())[:250]:
            gateway.ingest(alert)
        # 250 buffered events cross the 100-event threshold twice.
        assert gateway.stats.flushes == 2
        gateway.drain()
        assert gateway.stats.input_alerts == 250

    def test_per_event_ingest_latency_counts_every_event(self, small_topology):
        """A flush of N events must add N to the latency count, not 1."""
        gateway = AlertGateway(small_topology.graph, n_shards=2, flush_size=50)
        for step in range(200):
            gateway.ingest(make_alert(float(step)))
        assert gateway.stats.latency.count == 200

    def test_flush_interval_bounds_staleness(self, small_topology):
        gateway = AlertGateway(
            small_topology.graph, n_shards=2, flush_size=10_000,
            flush_interval=60.0,
        )
        for step in range(100):
            gateway.ingest(make_alert(float(step * 10)))
        # Event time advances 990s; a 60s flush interval must have fired
        # repeatedly despite the huge flush_size.
        assert gateway.stats.flushes >= 10
        gateway.drain()

    def test_buffered_events_surface_in_snapshot(self, small_topology):
        gateway = AlertGateway(
            small_topology.graph, n_shards=2, flush_size=10_000,
        )
        gateway.ingest_batch([make_alert(float(i)) for i in range(50)])
        snapshot = gateway.snapshot()  # snapshot flushes pending buffers
        assert snapshot.input_alerts == 50
        assert gateway.stats.flushes == 1
        assert snapshot.open_sessions > 0


class TestRebalanceMechanics:
    def test_open_sessions_migrate(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_shards=4)
        for index in range(8):
            gateway.ingest(make_alert(100.0 + index, strategy_id=f"s-{index}"))
        before = gateway.snapshot().open_sessions
        assert before == 8
        gateway.rebalance(2)
        assert gateway.snapshot().open_sessions == before
        stats = gateway.drain()
        assert stats.aggregates_emitted == 8

    def test_sessions_keep_extending_after_rebalance(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_shards=4,
                               aggregation_window=900.0)
        gateway.ingest(make_alert(100.0, strategy_id="s-x"))
        gateway.rebalance(7)
        gateway.ingest(make_alert(500.0, strategy_id="s-x"))  # same session
        stats = gateway.drain()
        assert stats.aggregates_emitted == 1

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_rebalance_then_immediate_drain_keeps_sessions(
        self, small_topology, backend
    ):
        """Open sessions must survive a rebalance straight into a drain."""
        gateway = AlertGateway(small_topology.graph, n_shards=2, n_planes=2,
                               backend=backend, n_workers=2)
        for index in range(3):
            gateway.ingest(make_alert(100.0 + index, strategy_id=f"s-{index}",
                                      region=f"region-{index % 2}"))
        gateway.rebalance(4)
        stats = gateway.drain()
        assert stats.aggregates_emitted == 3

    def test_rebalance_before_first_flush_takes_effect(self, small_topology):
        """A never-started process backend re-shards its config, not workers."""
        gateway = AlertGateway(small_topology.graph, n_shards=2,
                               backend="process", n_workers=2,
                               flush_size=10_000)
        gateway.rebalance(5)
        gateway.ingest(make_alert(1.0))
        snapshot = gateway.snapshot()
        assert snapshot.planes[0].n_shards == 5
        gateway.drain()

    def test_rebalance_after_drain_rejected(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_shards=2)
        gateway.drain()
        with pytest.raises(ValidationError):
            gateway.rebalance(4)

    def test_process_backend_resizes_workers_live(self, small_topology):
        # Pinned the old "fixed at construction" limitation until PR 9
        # taught the fleet to resize live via plane-state migration.
        gateway = AlertGateway(small_topology.graph, n_planes=2, n_shards=2,
                               backend="process", n_workers=2)
        gateway.ingest(make_alert(1.0))
        gateway.rebalance(4, n_workers=1)
        assert gateway.stats.n_workers == 1
        gateway.drain()

    def test_thread_backend_resizes_workers(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_planes=4, n_shards=2,
                               backend="thread", n_workers=2)
        gateway.ingest(make_alert(1.0))
        gateway.rebalance(2, n_workers=3)
        assert gateway.stats.n_workers == 3
        gateway.drain()


class TestBackendMechanics:
    def test_factory_rejects_unknown_backend(self):
        with pytest.raises(ValidationError, match="unknown backend"):
            make_backend("gpu", n_planes=2, config=_plane_config())

    def test_factory_builds_each_backend(self):
        config = _plane_config()
        assert isinstance(make_backend("serial", 2, config), SerialPlaneBackend)
        assert isinstance(make_backend("thread", 2, config), ThreadPlaneBackend)
        process = make_backend("process", 2, config)
        assert isinstance(process, ProcessPlaneBackend)
        process.close()

    def test_worker_pools_clamp_to_plane_count(self):
        config = _plane_config()
        thread = make_backend("thread", 2, config, n_workers=8)
        assert thread.n_workers == 2
        process = make_backend("process", 3, config, n_workers=8)
        assert process.n_workers == 3
        process.close()

    def test_process_backend_spawns_lazily_and_closes(self):
        backend = ProcessPlaneBackend(2, _plane_config(), n_workers=2)
        assert backend._workers is None  # nothing spawned yet
        backend.flush([(0, [make_alert(1.0)], 1)], 1.0)
        assert backend._workers is not None
        assert all(worker.is_alive() for worker in backend._workers)
        backend.close()
        assert backend._workers is None
        with pytest.raises(ValidationError):
            backend.flush([(0, [make_alert(2.0)], 0)], 2.0)

    def test_process_backend_counts_match_serial(self):
        alerts = [
            make_alert(float(i) * 30.0, strategy_id=f"s-{i % 5}",
                       region=f"region-{i % 3}")
            for i in range(200)
        ]
        batches = [(i, [], 0) for i in range(3)]
        for alert in alerts:
            batches[int(alert.region[-1])][1].append(alert)
        serial = SerialPlaneBackend(3, _plane_config())
        process = ProcessPlaneBackend(3, _plane_config(), n_workers=2)
        try:
            serial_results = {
                r.plane_id: r for r in serial.flush(batches, alerts[-1].occurred_at)
            }
            process_results = {
                r.plane_id: r for r in process.flush(batches, alerts[-1].occurred_at)
            }
            assert serial_results.keys() == process_results.keys()
            for plane, expected in serial_results.items():
                actual = process_results[plane]
                for field in ("processed", "blocked", "aggregates", "clusters",
                              "storm_episodes", "emerging_flags",
                              "open_sessions", "active_components",
                              "retained_representatives"):
                    assert getattr(actual, field) == getattr(expected, field), field
                # the wire strips emitted objects; counts already compared
                assert actual.emitted is None
                assert expected.emitted is not None
        finally:
            process.close()

    def test_thread_backend_is_deterministic(self, storm_setup):
        trace = storm_setup[0]
        counts = set()
        for _ in range(2):
            gateway = _gateway(storm_setup, backend="thread", n_planes=2,
                               n_shards=8, flush_size=256, n_workers=4)
            gateway.ingest_batch(trace.iter_ordered())
            stats = gateway.drain()
            counts.add((stats.blocked_alerts, stats.aggregates_emitted,
                        stats.clusters_finalized))
        assert len(counts) == 1

    def test_processors_not_addressable_for_process_backend(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_shards=2,
                               backend="process", n_workers=2)
        with pytest.raises(ValidationError, match="worker processes"):
            gateway.processors
        gateway.drain()

    def test_processors_flatten_across_planes(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_planes=3, n_shards=2)
        assert len(gateway.processors) == 6
        gateway.drain()
