"""Partitioned ingress lanes: parity, builder byte-identity, lifecycle.

The lane path moves routing-adjacent work (buffering, wire-encoding,
backend hand-off) off the gateway thread, so the one thing these tests
must pin down is that it changes *nothing observable*: drain accounting
and retained artifacts are byte-identical to the classic single-threaded
ingress for every backend × plane count × lane count, the reusable
:class:`~repro.streaming.wire.AlertBatchBuilder` emits exactly
``pack_alerts``'s bytes, and region partitioning + up-front plane
assignment reproduce record-at-a-time routing exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.streaming import (
    AlertBatchBuilder,
    AlertGateway,
    PlaneRouter,
    iter_jsonl_alerts,
    pack_alerts,
    partition_by_region,
    partition_jsonl_by_region,
)
from tests.streaming.conftest import make_alert
from tests.streaming.test_golden_trace import (
    TRACE_PATH,
    WINDOW,
    golden_blocker,
    golden_graph,
)


@pytest.fixture(scope="module")
def golden_alerts():
    return list(iter_jsonl_alerts(TRACE_PATH))


def _run(alerts, *, backend="serial", n_planes=4, ingress_lanes=1, **kwargs):
    gateway = AlertGateway(
        golden_graph(), blocker=golden_blocker(), backend=backend,
        n_planes=n_planes, ingress_lanes=ingress_lanes,
        aggregation_window=WINDOW, correlation_window=WINDOW, **kwargs,
    )
    gateway.ingest_batch(alerts)
    stats = gateway.drain()
    return gateway, stats


def _accounting(stats) -> dict:
    return {
        "input_alerts": stats.input_alerts,
        "blocked_alerts": stats.blocked_alerts,
        "aggregates": stats.aggregates_emitted,
        "clusters": stats.clusters_finalized,
        "storm_episodes": stats.storm_episodes,
        "emerging_flags": stats.emerging_flags,
        "late_events": stats.late_events,
        "watermark": stats.watermark,
    }


def _artifacts(gateway) -> tuple:
    return (
        [
            (a.strategy_id, a.region, a.window.start, a.window.end, a.count)
            for a in gateway.aggregates
        ],
        [
            (c.size, c.alerts[0].occurred_at, sorted(a.alert_id for a in c.alerts))
            for c in gateway.clusters
        ],
    )


# ---------------------------------------------------------------------------
# AlertBatchBuilder: byte-identical to pack_alerts, reusable across batches
# ---------------------------------------------------------------------------
class TestAlertBatchBuilder:
    def test_empty_batch_matches_pack_alerts(self):
        assert AlertBatchBuilder().finish() == pack_alerts([])

    def test_golden_trace_bytes_identical(self, golden_alerts):
        builder = AlertBatchBuilder()
        builder.extend(golden_alerts)
        assert builder.finish() == pack_alerts(golden_alerts)

    def test_incremental_append_equals_bulk_extend(self, golden_alerts):
        builder = AlertBatchBuilder()
        for alert in golden_alerts[:100]:
            builder.append(alert)
        assert builder.finish() == pack_alerts(golden_alerts[:100])

    def test_optional_fields_covered(self):
        active = make_alert(5.0, cleared_after=None)  # no cleared_at
        active.fault_id = "fault-0007"
        active.tags = {"team": "edge", "ünïcode": "✓ value"}
        cleared = make_alert(10.0, cleared_after=3.5)
        batch = [active, cleared]
        builder = AlertBatchBuilder()
        builder.extend(batch)
        assert builder.finish() == pack_alerts(batch)

    def test_finish_resets_for_reuse(self, golden_alerts):
        builder = AlertBatchBuilder()
        builder.extend(golden_alerts[:50])
        first = builder.finish()
        assert len(builder) == 0
        # The second batch must not see the first batch's string table.
        builder.extend(golden_alerts[50:90])
        second = builder.finish()
        assert first == pack_alerts(golden_alerts[:50])
        assert second == pack_alerts(golden_alerts[50:90])

    def test_len_tracks_appends(self):
        builder = AlertBatchBuilder()
        assert len(builder) == 0
        builder.append(make_alert(1.0))
        builder.append(make_alert(2.0))
        assert len(builder) == 2

    def test_finish_parts_concatenates_to_pack_alerts(self, golden_alerts):
        builder = AlertBatchBuilder()
        builder.extend(golden_alerts[:80])
        parts = builder.finish_parts()
        assert b"".join(parts) == pack_alerts(golden_alerts[:80])
        # finish_parts resets like finish: the next batch starts clean.
        builder.extend(golden_alerts[80:120])
        assert builder.finish() == pack_alerts(golden_alerts[80:120])

    @settings(max_examples=40, deadline=None)
    @given(
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(0, 3),
                    st.floats(0.0, 1000.0),
                    st.booleans(),
                ),
                max_size=12,
            ),
            min_size=1, max_size=6,
        ),
        abort_prefix=st.integers(0, 5),
    )
    def test_interleaved_reuse_matches_one_shot(self, batches, abort_prefix):
        """One long-lived builder, arbitrary append/extend interleavings,
        and mid-build resets: every finish is byte-identical to a
        one-shot ``pack_alerts`` of just that batch."""
        builder = AlertBatchBuilder()
        for i, spec in enumerate(batches):
            alerts = [
                make_alert(
                    t, region=f"region-{r}", strategy_id=f"strategy-{r}",
                    cleared_after=3.0 if cleared else None,
                )
                for r, t, cleared in spec
            ]
            if i % 2 == 0 and alerts:
                # Poison with a half-built batch, then reset: nothing of
                # it — bytes or string-table entries — may leak through.
                builder.extend(alerts[:abort_prefix])
                builder.reset()
            for j, alert in enumerate(alerts):
                if j % 2:
                    builder.append(alert)
                else:
                    builder.extend([alert])
            produced = (
                b"".join(builder.finish_parts()) if i % 2 else builder.finish()
            )
            assert produced == pack_alerts(alerts)


# ---------------------------------------------------------------------------
# Region partitioning + up-front plane assignment
# ---------------------------------------------------------------------------
class TestPartitioning:
    def test_partition_preserves_order_and_is_identity(self):
        alerts = [
            make_alert(float(i), region=f"region-{i % 3}") for i in range(30)
        ]
        parts = partition_by_region(alerts)
        # First-seen key order.
        assert list(parts) == ["region-0", "region-1", "region-2"]
        for region, bucket in parts.items():
            assert all(a.region == region for a in bucket)
            occurred = [a.occurred_at for a in bucket]
            assert occurred == sorted(occurred)
        # Stable partition: merging back by arrival order is the identity.
        flat = sorted(
            (a for bucket in parts.values() for a in bucket),
            key=lambda a: a.occurred_at,
        )
        assert flat == alerts

    def test_partition_jsonl_matches_in_memory(self, golden_alerts):
        assert partition_jsonl_by_region(TRACE_PATH) == partition_by_region(
            golden_alerts
        )

    def test_assign_all_matches_record_at_a_time(self, golden_alerts):
        streamed = PlaneRouter(3)
        for alert in golden_alerts:
            streamed.plane_of(alert.region)
        upfront = PlaneRouter(3)
        table = upfront.assign_all(partition_by_region(golden_alerts))
        assert table == streamed.assignments
        # The returned table is the live cache, not a copy.
        assert table is upfront.plane_cache


# ---------------------------------------------------------------------------
# Drain parity: lanes × backends × planes vs the classic ingress
# ---------------------------------------------------------------------------
class TestLaneParity:
    @pytest.fixture(scope="class")
    def baseline(self, golden_alerts):
        gateway, stats = _run(
            golden_alerts, backend="serial", n_planes=4,
            ingress_lanes=1, flush_size=64,
        )
        return _accounting(stats), _artifacts(gateway)

    @pytest.mark.parametrize("backend,lanes", [
        ("serial", 2),
        ("serial", 4),
        ("thread", 2),
        ("thread", 4),
        ("process", 4),
    ])
    def test_lane_drain_parity(self, golden_alerts, baseline, backend, lanes):
        gateway, stats = _run(
            golden_alerts, backend=backend, n_planes=4,
            ingress_lanes=lanes, flush_size=64,
        )
        accounting, artifacts = baseline
        assert _accounting(stats) == accounting
        # Retained artifacts survive every transport (the process
        # backend ships them wire-packed at drain) and merge into the
        # same deterministic order.
        assert _artifacts(gateway) == artifacts

    @pytest.mark.parametrize("transport_kwargs,expect_spills", [
        # The classic pickled-pipe hand-off, kept as an explicit knob.
        ({"lane_transport": "pipe"}, None),
        # Slots far too small for any golden batch: every hand-off takes
        # the spill path, which must stay parity-exact with the ring.
        ({"ring_slot_size": 32}, True),
        # A single slot: every write reuses it (continuous wraparound).
        ({"ring_slots": 1}, None),
    ])
    def test_process_transport_parity(
        self, golden_alerts, baseline, transport_kwargs, expect_spills,
    ):
        """Ring, spill, and pipe hand-offs all drain bit-identically."""
        gateway, stats = _run(
            golden_alerts, backend="process", n_planes=4,
            ingress_lanes=4, flush_size=64, **transport_kwargs,
        )
        accounting, artifacts = baseline
        assert _accounting(stats) == accounting
        assert _artifacts(gateway) == artifacts
        if expect_spills:
            assert gateway._backend.ring_spills > 0

    def test_per_event_ingest_path_parity(self, golden_alerts, baseline):
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(), backend="serial",
            n_planes=4, ingress_lanes=4, flush_size=64,
            aggregation_window=WINDOW, correlation_window=WINDOW,
        )
        for alert in golden_alerts:
            assert gateway.ingest(alert) == []  # emissions stay plane-side
        stats = gateway.drain()
        accounting, artifacts = baseline
        assert _accounting(stats) == accounting
        assert _artifacts(gateway) == artifacts

    def test_lanes_clamped_to_planes(self, golden_alerts, baseline):
        gateway, stats = _run(
            golden_alerts, backend="serial", n_planes=4,
            ingress_lanes=64, flush_size=64,
        )
        assert gateway.ingress_lanes == 4
        accounting, _ = baseline
        assert _accounting(stats) == accounting

    def test_single_plane_degenerates_to_classic(self, golden_alerts):
        gateway, _ = _run(
            golden_alerts, n_planes=1, ingress_lanes=8, flush_size=64,
        )
        assert gateway.ingress_lanes == 1

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 4), st.floats(0.0, 5000.0)),
            min_size=1, max_size=80,
        ),
        lanes=st.integers(2, 3),
        flush_size=st.sampled_from([1, 3, 16]),
    )
    def test_lane_count_invariance_property(self, data, lanes, flush_size):
        """Accounting is invariant to the lane count on arbitrary streams
        (in-order by construction; regions drawn from a small pool)."""
        times = sorted(t for _, t in data)
        alerts = [
            [
                make_alert(
                    t, region=f"region-{r}", strategy_id=f"strategy-{r}",
                )
                for (r, _), t in zip(data, times)
            ]
            for _ in range(2)  # two identical streams, one per run
        ]
        runs = []
        for stream, n_lanes in zip(alerts, (1, lanes)):
            _, stats = _run(
                stream, backend="serial", n_planes=3,
                ingress_lanes=n_lanes, flush_size=flush_size,
            )
            accounting = _accounting(stats)
            accounting.pop("watermark")  # equal times, distinct objects
            runs.append(accounting)
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Configuration surface
# ---------------------------------------------------------------------------
class TestLaneConfig:
    def test_lanes_compose_with_rule_learning(self, golden_alerts):
        """Exact learner parity: barrier mode keeps the classic global
        flush trigger, so the judgment schedule — and every promotion,
        renewal, demotion, and expiry — matches ``ingress_lanes=1``."""
        def learned(n_lanes):
            gateway, stats = _run(
                golden_alerts, backend="serial", n_planes=4,
                ingress_lanes=n_lanes, flush_size=64, learn_rules=True,
            )
            learner = {
                "promoted": stats.rules_promoted,
                "renewed": stats.rules_renewed,
                "demoted": stats.rules_demoted,
                "expired": stats.rules_expired,
                "active": stats.rules_active,
                "flushes": stats.flushes,
            }
            return _accounting(stats), learner, _artifacts(gateway)
        assert learned(4) == learned(1)

    def test_lanes_compose_with_streaming_qoa(self, golden_alerts):
        def scored(n_lanes):
            _, stats = _run(
                golden_alerts, backend="serial", n_planes=4,
                ingress_lanes=n_lanes, flush_size=64, enable_qoa=True,
            )
            return _accounting(stats), stats.qoa
        assert scored(2) == scored(1)

    def test_unknown_lane_transport_rejected(self):
        with pytest.raises(ValidationError, match="lane transport"):
            AlertGateway(
                golden_graph(), blocker=golden_blocker(),
                n_planes=4, ingress_lanes=2, lane_transport="carrier-pigeon",
            )

    def test_nonpositive_lanes_rejected(self):
        with pytest.raises(ValidationError):
            AlertGateway(
                golden_graph(), blocker=golden_blocker(), ingress_lanes=0,
            )

    def test_checkpoint_config_records_lanes(self):
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(),
            n_planes=4, ingress_lanes=2,
        )
        assert gateway.checkpoint_config()["ingress_lanes"] == 2
        gateway.close()

    def test_checkpoint_config_records_ring_knobs(self):
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(),
            n_planes=4, ingress_lanes=2,
            lane_transport="pipe", ring_slot_size=4096, ring_slots=2,
        )
        config = gateway.checkpoint_config()
        assert config["lane_transport"] == "pipe"
        assert config["ring_slot_size"] == 4096
        assert config["ring_slots"] == 2
        gateway.close()

    def test_backpressure_stalls_are_counted(self, monkeypatch):
        """A full bounded lane queue blocks ingest and counts the stall."""
        import time as _time
        monkeypatch.setattr("repro.streaming.lanes.LANE_QUEUE_DEPTH", 1)
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(), backend="serial",
            n_planes=2, ingress_lanes=2, flush_size=1,
        )
        inner = gateway._backend.lane_feed

        def slow(plane, batch, in_warmup, watermark):
            _time.sleep(0.002)
            return inner(plane, batch, in_warmup, watermark)

        gateway._backend.lane_feed = slow
        gateway.ingest_batch([
            make_alert(float(i), region="region-0") for i in range(40)
        ])
        stats = gateway.drain()
        assert stats.lane_stalls > 0
        assert stats.snapshot()["lane_stalls"] == stats.lane_stalls


# ---------------------------------------------------------------------------
# Lifecycle: checkpoint/restore, scale, interval stall fix on the lane path
# ---------------------------------------------------------------------------
class TestLaneLifecycle:
    def test_checkpoint_restore_continues_bit_identical(self, golden_alerts):
        kwargs = dict(backend="serial", n_planes=4, flush_size=32)
        split = len(golden_alerts) // 2
        first = AlertGateway(
            golden_graph(), blocker=golden_blocker(), ingress_lanes=2,
            aggregation_window=WINDOW, correlation_window=WINDOW, **kwargs,
        )
        first.ingest_batch(golden_alerts[:split])
        first.flush()
        assert first.at_flush_barrier
        state = first.checkpoint_state()
        first.close()
        # Restore with a *different* lane count: lanes are not part of
        # the strict config — they change where work runs, not counts.
        resumed = AlertGateway(
            golden_graph(), blocker=golden_blocker(), ingress_lanes=4,
            aggregation_window=WINDOW, correlation_window=WINDOW, **kwargs,
        )
        resumed.adopt_checkpoint(state)
        resumed.ingest_batch(golden_alerts[split:])
        resumed_stats = resumed.drain()
        _, uninterrupted = _run(
            golden_alerts, ingress_lanes=1, **kwargs,
        )
        assert _accounting(resumed_stats) == _accounting(uninterrupted)

    def test_scale_planes_with_lanes_matches_classic(self, golden_alerts):
        def scaled(ingress_lanes):
            gateway = AlertGateway(
                golden_graph(), blocker=golden_blocker(), backend="serial",
                n_planes=4, ingress_lanes=ingress_lanes, flush_size=32,
                aggregation_window=WINDOW, correlation_window=WINDOW,
                retain_artifacts=False,
            )
            gateway.ingest_batch(golden_alerts[:120])
            gateway.scale_planes(2)
            gateway.ingest_batch(golden_alerts[120:])
            return _accounting(gateway.drain())
        assert scaled(2) == scaled(1)

    def test_interval_flush_survives_late_tail(self):
        """The lane-path version of the watermark-clamp stall fix."""
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(), backend="serial",
            n_planes=2, ingress_lanes=2, flush_size=10**6,
            flush_interval=60.0,
        )
        gateway.ingest_batch([make_alert(10_000.0, region="region-A")])
        # An all-late tail: without the anchor clamp the per-plane delta
        # stays ~0 forever and nothing would flush until drain.
        gateway.ingest_batch([
            make_alert(100.0 + i, region="region-A") for i in range(5)
        ])
        gateway.flush()
        assert gateway.stats.late_events == 5
        # Interval triggers fired mid-stream, not just the final barrier.
        assert gateway.stats.flushes >= 5
        gateway.drain()

    def test_barrier_surfaces_lane_errors(self):
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(), backend="serial",
            n_planes=2, ingress_lanes=2, flush_size=4,
        )
        # Sabotage the backend after construction: the lane thread hits
        # the failure, the *caller* must see it at the next barrier.
        def boom(*_args, **_kwargs):
            raise ValidationError("lane backend failure")
        gateway._backend.lane_feed = boom
        gateway.ingest_batch([
            make_alert(float(i), region=f"region-{i % 2}") for i in range(16)
        ])
        with pytest.raises(ValidationError, match="lane backend failure"):
            gateway.flush()
        gateway.close()

    def test_close_without_drain_stops_lane_threads(self, golden_alerts):
        import threading
        before = {t.name for t in threading.enumerate()}
        gateway = AlertGateway(
            golden_graph(), blocker=golden_blocker(), backend="serial",
            n_planes=4, ingress_lanes=4, flush_size=16,
        )
        gateway.ingest_batch(golden_alerts[:64])
        gateway.close()
        lingering = {
            t.name for t in threading.enumerate()
            if t.name.startswith("ingress-lane-")
        } - before
        assert not lingering
