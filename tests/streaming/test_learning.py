"""Unit tests for the online rule learner and the streaming QoA scorer.

The differential harness and the property suite cover the end-to-end
behaviour; these tests pin the component-level life cycle — promotion,
renewal, demotion, expiry — with hand-built observation digests, plus
the wire round-trip for rule deltas and the QoA arithmetic.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.streaming import AlertGateway, LearnerConfig, OnlineRuleLearner
from repro.streaming.learning import RuleEvent, rule_set_divergence
from repro.streaming.qoa import StreamQoA, StreamQoAScorer, measure_stream_qoa
from repro.streaming.wire import pack_rules, unpack_rules
from repro.topology.graph import DependencyGraph

from tests.streaming.conftest import make_alert

CONFIG = LearnerConfig(
    window_seconds=600.0, min_alerts=10, transient_fraction=0.5,
    repeat_count=20, rule_ttl=1200.0, demote_fraction=0.2,
)


def obs(strategy, region="region-A", seen=0, blocked=0, transient=0, groups=0,
        service="svc"):
    return (strategy, region, service, seen, blocked, transient, groups)


class TestLearnerLifecycle:
    def test_a4_evidence_promotes_with_ttl(self):
        learner = OnlineRuleLearner(CONFIG)
        delta = learner.observe([obs("s-flap", seen=12, transient=10)], 100.0, 12)
        assert [r.strategy_id for r in delta.added] == ["s-flap"]
        (rule,) = delta.added
        assert rule.expires_at == pytest.approx(100.0 + CONFIG.rule_ttl)
        assert learner.events[0].kind == "promote"
        assert learner.events[0].at_input == 12

    def test_a5_evidence_promotes_per_region_volume(self):
        learner = OnlineRuleLearner(CONFIG)
        # 12 alerts in one region + 12 in another: strategy volume is 24
        # but no single region reaches repeat_count=20 -> no promotion.
        delta = learner.observe(
            [obs("s-rep", "region-A", seen=12), obs("s-rep", "region-B", seen=12)],
            100.0, 24,
        )
        assert not delta.added
        # One region crossing the threshold promotes.
        delta = learner.observe([obs("s-rep", "region-A", seen=20)], 200.0, 44)
        assert [r.strategy_id for r in delta.added] == ["s-rep"]

    def test_sustained_evidence_renews_the_expiry(self):
        learner = OnlineRuleLearner(CONFIG)
        first = learner.observe([obs("s-flap", seen=12, transient=12)], 100.0, 12)
        delta = learner.observe([obs("s-flap", seen=12, transient=12)], 400.0, 24)
        assert delta.removed == first.added  # the exact old rule retires
        assert delta.added[0].expires_at == pytest.approx(400.0 + CONFIG.rule_ttl)
        assert learner.renewed == 1
        assert learner.active_rules == 1

    def test_quiet_strategy_expires_at_ttl(self):
        learner = OnlineRuleLearner(CONFIG)
        learner.observe([obs("s-flap", seen=12, transient=12)], 100.0, 12)
        # Far-future observation of a different strategy: the window
        # empties and the TTL has elapsed.
        delta = learner.observe([obs("s-other", seen=1)], 5000.0, 13)
        assert [r.strategy_id for r in delta.removed] == ["s-flap"]
        assert not delta.added
        assert learner.expired == 1
        assert learner.active_rules == 0

    def test_clean_but_chatty_strategy_demotes_early(self):
        learner = OnlineRuleLearner(CONFIG)
        learner.observe([obs("s-flap", seen=12, transient=12)], 100.0, 12)
        # Still alerting well above min_alerts, but spread thin across
        # regions with zero transients: no signal anywhere near
        # promotion grade, so the rule now blocks real alerts -> demote
        # before the TTL would run out.
        delta = learner.observe(
            [obs("s-flap", region, seen=3, transient=0)
             for region in ("region-A", "region-B", "region-C", "region-D")],
            800.0, 24,
        )
        assert [r.strategy_id for r in delta.removed] == ["s-flap"]
        assert learner.demoted == 1
        assert learner.events[-1].kind == "demote"

    def test_single_region_volume_is_never_demoted_below_the_a5_floor(self):
        """A strategy still repeating in one region at half promotion
        grade keeps its rule until the evidence actually fades (the TTL
        handles the ambiguous middle ground)."""
        learner = OnlineRuleLearner(CONFIG)
        learner.observe([obs("s-flap", seen=12, transient=12)], 100.0, 12)
        delta = learner.observe([obs("s-flap", seen=15, transient=0)], 800.0, 27)
        assert not delta.removed
        assert learner.demoted == 0
        assert learner.active_rules == 1

    def test_finish_expires_everything(self):
        learner = OnlineRuleLearner(CONFIG)
        learner.observe([obs("s-flap", seen=12, transient=12)], 100.0, 12)
        delta = learner.finish(150.0, 12)
        assert [r.strategy_id for r in delta.removed] == ["s-flap"]
        assert learner.active_rules == 0
        assert learner.events[-1].reason == "stream drained"

    def test_rule_event_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            RuleEvent(kind="invent", strategy_id="s", at_input=0,
                      at_time=0.0, expires_at=None)

    def test_divergence_edge_cases(self):
        assert rule_set_divergence(set(), set())["precision"] == 1.0
        assert rule_set_divergence(set(), set())["recall"] == 1.0
        # No promotions = no false positives (vacuous precision), but
        # recall correctly reports everything was missed.
        assert rule_set_divergence(set(), {"s"})["precision"] == 1.0
        assert rule_set_divergence(set(), {"s"})["recall"] == 0.0
        metrics = rule_set_divergence({"a", "b"}, {"b", "c"})
        assert metrics["precision"] == pytest.approx(0.5)
        assert metrics["recall"] == pytest.approx(0.5)


class TestBlockerRuleRetirement:
    def test_remove_rule_spares_other_rules_of_the_strategy(self):
        configured = BlockingRule(strategy_id="s-1", reason="operator")
        learned = BlockingRule(strategy_id="s-1", reason="learned A4",
                               expires_at=500.0)
        blocker = AlertBlocker([configured, learned])
        assert blocker.remove_rule(learned) is True
        assert blocker.remove_rule(learned) is False
        assert blocker.rules == [configured]
        # The unconditional fast path must survive: the configured rule
        # still blocks everywhere, at any time.
        assert blocker.is_blocked(make_alert(1000.0, strategy_id="s-1"))

    def test_remove_rule_recomputes_the_unconditional_fast_path(self):
        unconditional = BlockingRule(strategy_id="s-1")
        scoped = BlockingRule(strategy_id="s-1", region="region-A")
        blocker = AlertBlocker([unconditional, scoped])
        blocker.remove_rule(unconditional)
        assert blocker.is_blocked(make_alert(0.0, strategy_id="s-1"))
        assert not blocker.is_blocked(
            make_alert(0.0, strategy_id="s-1", region="region-B")
        )

    def test_learned_retirement_never_unblocks_a_configured_strategy(self):
        """Regression: a strategy with an operator-configured rule that
        the learner *also* promotes must stay blocked after the learned
        rule retires (renewal, expiry, and drain all remove only the
        learner's own rule objects)."""
        configured = BlockingRule(strategy_id="s-noisy", reason="operator")
        blocker = AlertBlocker([configured])
        graph = DependencyGraph()
        graph.add_microservice("m-1", service="svc")
        gateway = AlertGateway(
            graph, blocker=blocker, learn_rules=True, flush_size=8,
            learner_config=LearnerConfig(min_alerts=5, repeat_count=8,
                                         window_seconds=600.0,
                                         rule_ttl=300.0),
            retain_artifacts=False,
        )
        # Noisy burst (promotes + renews), long quiet gap (expires the
        # learned rule mid-stream), then more events of the strategy.
        alerts = [
            make_alert(index * 10.0, strategy_id="s-noisy", cleared_after=20.0)
            for index in range(40)
        ] + [
            make_alert(50_000.0 + index * 10.0, strategy_id="s-noisy")
            for index in range(16)
        ]
        gateway.ingest_batch(alerts)
        stats = gateway.drain()
        assert stats.rules_promoted >= 1
        assert stats.rules_expired >= 1
        # Every single alert was blocked by the configured rule.
        assert stats.blocked_alerts == len(alerts)
        assert blocker.rules == [configured]

    def test_remove_strategy_drops_all_its_rules(self):
        blocker = AlertBlocker([
            BlockingRule(strategy_id="s-1"),
            BlockingRule(strategy_id="s-1", region="region-A"),
            BlockingRule(strategy_id="s-2"),
        ])
        assert blocker.remove_strategy("s-1") == 2
        assert blocker.remove_strategy("s-1") == 0
        assert {r.strategy_id for r in blocker.rules} == {"s-2"}
        assert not blocker.is_blocked(make_alert(0.0, strategy_id="s-1"))
        assert blocker.is_blocked(make_alert(0.0, strategy_id="s-2"))

    def test_remove_strategy_clears_the_unconditional_fast_path(self):
        blocker = AlertBlocker([BlockingRule(strategy_id="s-1")])
        blocker.remove_strategy("s-1")
        assert "s-1" not in blocker.ruled_strategies
        blocker.add(BlockingRule(strategy_id="s-1", expires_at=100.0))
        assert blocker.is_blocked(make_alert(50.0, strategy_id="s-1"))
        assert not blocker.is_blocked(make_alert(150.0, strategy_id="s-1"))


class TestRuleWire:
    def test_rules_round_trip(self):
        rules = [
            BlockingRule(strategy_id="s-1", reason="learned A4"),
            BlockingRule(strategy_id="s-2", region="region-B",
                         reason="learned A5", expires_at=1234.5),
        ]
        assert unpack_rules(pack_rules(rules)) == rules
        assert unpack_rules(pack_rules([])) == []

    def test_rules_reject_wrong_magic(self):
        from repro.streaming.wire import pack_alerts
        with pytest.raises(ValidationError):
            unpack_rules(pack_alerts([]))


class TestStreamQoA:
    def test_scorer_accumulates_across_flushes(self):
        scorer = StreamQoAScorer()
        scorer.observe([obs("s-1", seen=10, blocked=2, transient=4, groups=1)])
        scorer.observe([obs("s-1", "region-B", seen=10, blocked=0, transient=0,
                            groups=3)])
        qoa = scorer.score("s-1")
        assert qoa == StreamQoA("s-1", 20, 2, 4, 4)
        assert qoa.coverage == pytest.approx(18 / 20)
        assert qoa.actionability == pytest.approx(16 / 20)
        assert qoa.distinctness == pytest.approx(4 / 18)
        assert scorer.score("missing") is None

    def test_degenerate_counters_stay_in_bounds(self):
        everything_blocked = StreamQoA("s", 10, 10, 10, 0)
        assert everything_blocked.coverage == 0.0
        assert everything_blocked.distinctness == 1.0  # vacuous: none passed
        unseen = StreamQoA("s", 0, 0, 0, 0)
        assert unseen.overall == 1.0

    def test_batch_counterpart_matches_hand_counts(self):
        alerts = [
            make_alert(0.0, strategy_id="s-1", cleared_after=30.0),    # transient
            make_alert(10.0, strategy_id="s-1", cleared_after=3000.0),
            make_alert(5000.0, strategy_id="s-1", cleared_after=3000.0),
            make_alert(20.0, strategy_id="s-2", cleared_after=None),
        ]
        blocker = AlertBlocker([BlockingRule(strategy_id="s-2")])
        scores = measure_stream_qoa(alerts, blocker, aggregation_window=900.0)
        assert scores["s-1"] == StreamQoA("s-1", 3, 0, 1, 2)
        assert scores["s-2"] == StreamQoA("s-2", 1, 1, 0, 0)


class TestGatewayLearningPaths:
    def _graph(self):
        graph = DependencyGraph()
        graph.add_microservice("m-1", service="svc")
        return graph

    def test_per_event_ingest_learns_too(self):
        """flush_size=1: a learning step per event, rules effective from
        the next event on."""
        gateway = AlertGateway(
            self._graph(), blocker=AlertBlocker(), learn_rules=True,
            learner_config=LearnerConfig(min_alerts=5, repeat_count=8,
                                         window_seconds=600.0),
            retain_artifacts=False,
        )
        for index in range(40):
            gateway.ingest(make_alert(index * 10.0, strategy_id="s-noisy",
                                      cleared_after=20.0))
        stats = gateway.drain()
        assert stats.rules_promoted >= 1
        assert stats.blocked_alerts > 0
        assert stats.input_alerts == 40

    def test_learning_restores_the_callers_blocker_at_drain(self):
        configured = BlockingRule(strategy_id="s-static", reason="mine")
        blocker = AlertBlocker([configured])
        gateway = AlertGateway(
            self._graph(), blocker=blocker, learn_rules=True, flush_size=8,
            learner_config=LearnerConfig(min_alerts=5, repeat_count=8,
                                         window_seconds=600.0),
            retain_artifacts=False,
        )
        gateway.ingest_batch([
            make_alert(index * 10.0, strategy_id="s-noisy", cleared_after=20.0)
            for index in range(40)
        ])
        stats = gateway.drain()
        assert stats.rules_promoted >= 1
        assert blocker.rules == [configured]

    def test_snapshot_surfaces_learner_and_qoa(self):
        gateway = AlertGateway(
            self._graph(), learn_rules=True, enable_qoa=True, flush_size=8,
            retain_artifacts=False,
        )
        gateway.ingest_batch([
            make_alert(index * 10.0, strategy_id="s-1") for index in range(20)
        ])
        gateway.snapshot()
        payload = gateway.stats.snapshot()
        assert payload["learner"]["enabled"] is True
        stats = gateway.drain()
        assert stats.snapshot()["qoa"]["s-1"]["seen"] == 20
        assert "learned R1 rules" in stats.render()
