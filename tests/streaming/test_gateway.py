"""Gateway integration: end-to-end parity, snapshots, sim driving, IO."""

import pytest

from repro.common.errors import ValidationError
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.io import save_trace
from repro.sim import SimulationEngine
from repro.streaming import (
    AlertGateway,
    drive_gateway,
    iter_jsonl_alerts,
    merge_ordered,
)
from tests.streaming.conftest import make_alert


def _gateway_for(trace, topology, **kwargs):
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6, seed=trace.seed)
    blocker = MitigationPipeline.derive_blocker(trace)
    return AlertGateway(
        topology.graph, blocker=blocker, rulebook=rulebook, **kwargs
    ), rulebook


class TestBatchParity:
    @pytest.mark.parametrize("n_shards", [1, 4, 16])
    def test_storm_trace_counts_match_pipeline(self, storm_trace, n_shards):
        trace, topology = storm_trace
        gateway, rulebook = _gateway_for(trace, topology, n_shards=n_shards)
        gateway.ingest_many(trace.iter_ordered())
        stats = gateway.drain()
        report = MitigationPipeline(topology.graph, rulebook=rulebook).run(trace)
        assert stats.reconcile(report) == {}
        assert stats.total_reduction == pytest.approx(report.total_reduction)

    def test_smoke_trace_counts_match_pipeline(self, smoke_trace, topology):
        gateway, rulebook = _gateway_for(smoke_trace, topology, n_shards=4)
        gateway.ingest_many(smoke_trace.iter_ordered())
        stats = gateway.drain()
        report = MitigationPipeline(topology.graph, rulebook=rulebook).run(smoke_trace)
        assert stats.reconcile(report) == {}

    def test_retained_artifacts_match_counts(self, storm_trace):
        trace, topology = storm_trace
        gateway, _ = _gateway_for(trace, topology, n_shards=4)
        gateway.ingest_many(trace.iter_ordered())
        stats = gateway.drain()
        assert len(gateway.aggregates) == stats.aggregates_emitted
        assert len(gateway.clusters) == stats.clusters_finalized


class TestStreamingBehaviour:
    def test_memory_stays_bounded_during_storm(self, storm_trace):
        """In-flight state must stay far below the number of ingested events."""
        trace, topology = storm_trace
        gateway, _ = _gateway_for(trace, topology, n_shards=4,
                                  retain_artifacts=False)
        peak_open = 0
        peak_retained = 0
        for alert in trace.iter_ordered():
            gateway.ingest(alert)
            snapshot = gateway.snapshot()
            peak_open = max(peak_open, snapshot.open_sessions)
            peak_retained = max(peak_retained, snapshot.retained_representatives)
        stats = gateway.drain()
        assert stats.input_alerts == len(trace)
        assert peak_open < len(trace) * 0.15
        assert peak_retained < len(trace) * 0.25

    def test_storm_is_detected_online(self, storm_trace):
        trace, topology = storm_trace
        gateway, _ = _gateway_for(trace, topology, n_shards=4)
        gateway.ingest_many(trace.iter_ordered())
        stats = gateway.drain()
        assert stats.storm_episodes >= 1

    def test_snapshot_progresses_monotonically(self, storm_trace):
        trace, topology = storm_trace
        gateway, _ = _gateway_for(trace, topology, n_shards=2)
        previous = 0
        for index, alert in enumerate(trace.iter_ordered()):
            gateway.ingest(alert)
            if index % 500 == 0:
                snapshot = gateway.snapshot()
                assert snapshot.input_alerts >= previous
                previous = snapshot.input_alerts
        snapshot = gateway.snapshot()
        assert snapshot.watermark == max(a.occurred_at for a in trace.alerts)

    def test_drain_is_idempotent_and_ingest_after_drain_rejected(self):
        from repro.topology import TopologyConfig, generate_topology

        topology = generate_topology(TopologyConfig(seed=7, n_microservices=24,
                                                    n_regions=2))
        gateway = AlertGateway(topology.graph, n_shards=2)
        gateway.ingest(make_alert(0.0))
        first = gateway.drain()
        second = gateway.drain()
        assert first is second
        with pytest.raises(ValidationError):
            gateway.ingest(make_alert(1.0))

    def test_late_events_are_counted_not_dropped(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_shards=2)
        gateway.ingest(make_alert(1000.0))
        gateway.ingest(make_alert(500.0))  # out of order
        stats = gateway.drain()
        assert stats.late_events == 1
        assert stats.input_alerts == 2

    @pytest.mark.parametrize("batched", [False, True])
    def test_interval_flush_not_stalled_by_late_tail(
        self, small_topology, batched
    ):
        """Regression: a forward watermark jump followed by an all-late
        tail kept ``watermark - last_flush_watermark`` at ~0 forever, so
        the interval trigger never fired and events piled up until drain.
        The late-event clamp re-arms the trigger."""
        gateway = AlertGateway(small_topology.graph, n_shards=2,
                               flush_size=10**6, flush_interval=60.0)
        late = [make_alert(100.0 + i) for i in range(5)]
        if batched:
            gateway.ingest_batch([make_alert(10_000.0)])
            gateway.ingest_batch(late)
        else:
            gateway.ingest(make_alert(10_000.0))
            for alert in late:
                gateway.ingest(alert)
        assert gateway.stats.late_events == 5
        # Every late arrival re-armed and fired the interval trigger;
        # without the clamp nothing flushes before drain.
        assert gateway.stats.flushes >= 5
        assert gateway.at_flush_barrier
        gateway.drain()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_snapshot_after_drain_keeps_final_accounting(
        self, small_topology, backend
    ):
        """Post-drain snapshots must report the frozen totals, not zeros."""
        gateway = AlertGateway(small_topology.graph, n_shards=2, n_planes=2,
                               backend=backend, n_workers=2, flush_size=16)
        gateway.ingest_batch([
            make_alert(float(i) * 10.0, strategy_id=f"s-{i % 4}",
                       region=("rA", "rB")[i % 2])
            for i in range(64)
        ])
        stats = gateway.drain()
        assert stats.aggregates_emitted > 0
        snapshot = gateway.snapshot()
        assert snapshot.input_alerts == 64
        assert snapshot.aggregates_emitted == stats.aggregates_emitted
        assert snapshot.clusters_finalized == stats.clusters_finalized
        assert sum(p.processed for p in snapshot.planes) == 64
        # and the stats object itself must not have been clobbered
        assert stats.aggregates_emitted == snapshot.aggregates_emitted

    def test_ingest_batch_stays_consistent_when_source_raises(
        self, small_topology
    ):
        """A source that dies mid-iteration must not desync the accounting."""
        gateway = AlertGateway(small_topology.graph, n_shards=2,
                               flush_size=1000)

        def flaky_source():
            for index in range(25):
                yield make_alert(float(index), strategy_id=f"s-{index % 3}")
            raise IOError("malformed line")

        with pytest.raises(IOError):
            gateway.ingest_batch(flaky_source())
        assert gateway.stats.input_alerts == 25
        stats = gateway.drain()
        # everything buffered before the failure is processed and counted
        assert stats.input_alerts == 25
        assert sum(p["processed"] for p in stats.planes.values()) == 25
        assert sum(a.count for a in gateway.aggregates) == 25

    def test_backend_failure_mid_flush_leaves_buffers_consistent(
        self, small_topology
    ):
        """A backend that raises during a flush must not leave a phantom
        buffered count behind (the next flush would record ghost events)."""
        gateway = AlertGateway(small_topology.graph, n_shards=2, flush_size=10)

        original_flush = gateway._backend.flush
        calls = []

        def failing_flush(batches, watermark):
            if not calls:
                calls.append(1)
                raise RuntimeError("worker died")
            return original_flush(batches, watermark)

        gateway._backend.flush = failing_flush
        with pytest.raises(RuntimeError):
            gateway.ingest_batch(
                [make_alert(float(i)) for i in range(10)]
            )
        assert gateway._buffered == 0
        assert all(not buffer for buffer in gateway._buffers)
        flushes_after_failure = gateway.stats.flushes
        gateway.drain()  # nothing pending: must not count a phantom flush
        assert gateway.stats.flushes == flushes_after_failure


class TestSimulationDriver:
    def test_periodic_process_drives_gateway(self, storm_trace):
        trace, topology = storm_trace
        gateway, _ = _gateway_for(trace, topology, n_shards=4)
        engine = SimulationEngine()
        batches = []
        process = drive_gateway(
            engine, gateway, trace.iter_ordered(), interval=300.0,
            drain_on_exhaust=True,
            on_batch=lambda gw, time, n: batches.append((time, n)),
        )
        end = trace.window().end + 600.0
        engine.run_until(end)
        assert not process.active  # stopped itself at exhaustion
        assert gateway.stats.input_alerts == len(trace)
        assert sum(n for _, n in batches) == len(trace)
        # Micro-batching really happened: many ticks, each far below the total.
        assert len([n for _, n in batches if n]) > 10

    def test_driver_parity_with_direct_ingestion(self, storm_trace):
        trace, topology = storm_trace
        gateway, rulebook = _gateway_for(trace, topology, n_shards=4)
        engine = SimulationEngine()
        drive_gateway(engine, gateway, trace.iter_ordered(), interval=60.0,
                      drain_on_exhaust=True)
        engine.run_until(trace.window().end + 120.0)
        report = MitigationPipeline(topology.graph, rulebook=rulebook).run(trace)
        assert gateway.stats.reconcile(report) == {}


class TestSources:
    def test_jsonl_source_round_trips(self, storm_trace, tmp_path):
        trace, topology = storm_trace
        directory = save_trace(trace, tmp_path / "trace")
        streamed = list(iter_jsonl_alerts(directory / "alerts.jsonl"))
        assert len(streamed) == len(trace)
        assert {a.alert_id for a in streamed} == {a.alert_id for a in trace.alerts}

    def test_merge_ordered_interleaves_sources(self):
        left = [make_alert(t, strategy_id="s-left") for t in (0.0, 100.0, 200.0)]
        right = [make_alert(t, strategy_id="s-right") for t in (50.0, 150.0)]
        merged = list(merge_ordered(left, right))
        times = [a.occurred_at for a in merged]
        assert times == sorted(times)
        assert len(merged) == 5
