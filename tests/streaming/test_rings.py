"""SPSC ring invariants: framing, wraparound, spill cues, torn slots.

The ring is the one piece of the lane transport with hand-rolled
synchronisation, so these tests attack its contract directly — no
gateway, no workers: payloads round-trip byte-identical through every
slot-reuse pattern, capacity/oversize cues come back as ``None`` (the
spill signal, never an exception), and any header/payload corruption
raises :class:`~repro.streaming.rings.RingError` before a byte of the
payload is trusted.  Cross-process behaviour rides the backend parity
suite (``test_lanes.py``); decode-from-memoryview parity rides here.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.streaming import AlertBatchBuilder, SpscRing, pack_alerts, unpack_alerts
from repro.streaming.rings import RingError
from tests.streaming.conftest import make_alert


@pytest.fixture
def ring():
    ring = SpscRing.create(slot_size=256, slot_count=2)
    yield ring
    ring.unlink()


def _read(ring: SpscRing) -> bytes:
    view = ring.peek()
    try:
        return bytes(view)
    finally:
        view.release()
        ring.consume()


class TestFraming:
    def test_roundtrip_single_payload(self, ring):
        assert ring.try_write([b"hello ", b"world"]) == 0
        assert ring.readable
        assert _read(ring) == b"hello world"
        assert not ring.readable

    def test_empty_parts_roundtrip(self, ring):
        assert ring.try_write([]) == 0
        assert _read(ring) == b""

    def test_oversize_payload_returns_none(self, ring):
        assert ring.try_write([b"x" * 257]) is None
        assert ring.try_write([b"x" * 128, b"y" * 129]) is None
        # The ring is untouched: a fitting write still lands at seq 0.
        assert ring.try_write([b"x" * 256]) == 0

    def test_full_ring_returns_none(self, ring):
        assert ring.try_write([b"a"]) == 0
        assert ring.try_write([b"b"]) == 1
        assert ring.try_write([b"c"]) is None  # both slots unconsumed
        assert _read(ring) == b"a"
        assert ring.try_write([b"c"]) == 2  # slot 0 reclaimed

    def test_peek_on_empty_ring_raises(self, ring):
        with pytest.raises(RingError, match="empty"):
            ring.peek()

    def test_wraparound_reuses_slots_in_order(self, ring):
        for seq in range(7):
            payload = f"batch-{seq}".encode()
            assert ring.try_write([payload]) == seq
            assert _read(ring) == payload
        assert ring.head == 7
        assert ring.tail == 7


class TestTornSlots:
    def test_corrupted_payload_fails_crc(self, ring):
        ring.try_write([b"payload-bytes"])
        # Flip one payload byte behind the producer's back.
        offset = ring._slot_offset(0) + struct.calcsize("<QII")
        ring._buf[offset] ^= 0xFF
        with pytest.raises(RingError, match="CRC"):
            ring.peek()

    def test_guard_windows_cover_both_payload_ends(self):
        """Above the guard threshold the CRC covers the first and last
        window — where every torn or stale-reuse failure of the SPSC
        contract shows up."""
        header = struct.calcsize("<QII")
        for corrupt_at in (0, 4095):
            ring = SpscRing.create(slot_size=8192, slot_count=1)
            try:
                ring.try_write([bytes(range(256)) * 16])  # 4 KiB payload
                ring._buf[ring._slot_offset(0) + header + corrupt_at] ^= 0xFF
                with pytest.raises(RingError, match="CRC"):
                    ring.peek()
            finally:
                ring.unlink()

    def test_stale_sequence_detected(self, ring):
        ring.try_write([b"first"])
        # Rewrite the slot header with the wrong sequence number.
        struct.pack_into("<QII", ring._buf, ring._slot_offset(0), 7, 5, 0)
        with pytest.raises(RingError, match="expected seq 0"):
            ring.peek()

    def test_impossible_length_detected(self, ring):
        ring.try_write([b"first"])
        struct.pack_into("<QII", ring._buf, ring._slot_offset(0), 0, 9999, 0)
        with pytest.raises(RingError, match="capacity"):
            ring.peek()


class TestLifecycle:
    def test_attach_reads_geometry_from_header(self, ring):
        attached = SpscRing.attach(ring.name)
        try:
            assert (attached.slot_size, attached.slot_count) == (256, 2)
            ring.try_write([b"cross-mapping"])
            assert _read(attached) == b"cross-mapping"
        finally:
            attached.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(RingError, match="magic"):
                SpscRing.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_create_rejects_nonpositive_geometry(self):
        with pytest.raises(ValidationError):
            SpscRing.create(slot_size=0)
        with pytest.raises(ValidationError):
            SpscRing.create(slot_count=0)

    def test_unlink_is_idempotent_and_owner_only(self, ring):
        attached = SpscRing.attach(ring.name)
        attached.unlink()  # not the owner: a no-op
        attached.close()
        ring.unlink()
        ring.unlink()  # second unlink is a no-op


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        payloads=st.lists(st.binary(max_size=96), min_size=1, max_size=30),
        slot_count=st.integers(1, 4),
        burst=st.integers(1, 4),
    )
    def test_fifo_integrity_through_arbitrary_reuse(
        self, payloads, slot_count, burst,
    ):
        """Whatever fits comes back FIFO and byte-identical; whatever
        doesn't signals a spill — interleaving writes and reads in
        arbitrary bursts never tears, skips, or reorders a payload."""
        ring = SpscRing.create(slot_size=96, slot_count=slot_count)
        try:
            expected = []
            pending = list(payloads)
            while pending or expected:
                wrote = 0
                while pending and wrote < burst:
                    payload = pending[0]
                    # Split into parts to exercise multi-part writes.
                    mid = len(payload) // 2
                    seq = ring.try_write([payload[:mid], payload[mid:]])
                    if seq is None:
                        assert len(expected) == slot_count  # full, not torn
                        break
                    pending.pop(0)
                    expected.append(payload)
                    wrote += 1
                assert _read(ring) == expected.pop(0)
        finally:
            ring.unlink()

    @settings(max_examples=20, deadline=None)
    @given(n_alerts=st.integers(0, 12))
    def test_encoded_batches_decode_from_ring_memoryview(self, n_alerts):
        """The production framing end to end, minus the processes: the
        builder's parts go in, ``unpack_alerts`` decodes the slot's
        memoryview with zero copies, and the result matches a decode of
        the contiguous ``pack_alerts`` bytes."""
        alerts = [
            make_alert(float(i), region=f"region-{i % 3}") for i in range(n_alerts)
        ]
        builder = AlertBatchBuilder()
        builder.extend(alerts)
        parts = builder.finish_parts()
        ring = SpscRing.create(slot_size=1 << 16, slot_count=2)
        try:
            assert ring.try_write(parts) == 0
            view = ring.peek()
            try:
                decoded = unpack_alerts(view)
            finally:
                view.release()
                ring.consume()
        finally:
            ring.unlink()
        reference = unpack_alerts(pack_alerts(alerts))
        assert [a.alert_id for a in decoded] == [a.alert_id for a in reference]
        assert [
            (a.strategy_id, a.region, a.occurred_at, a.state, a.tags)
            for a in decoded
        ] == [
            (a.strategy_id, a.region, a.occurred_at, a.state, a.tags)
            for a in reference
        ]
