"""Chaos-schedule parity harness for live plane scale-out.

``gateway.scale_planes(n)`` promises *bit-identical invisibility*: any
schedule of scale events interleaved with ingestion, shard rebalances,
and mid-stream snapshots must drain to exactly the same volume
accounting, aggregates, clusters, storm verdicts, and (with learning
enabled) learned-rule timeline and QoA scores as a gateway built with
the final plane count from the start — on every backend.

Two layers pin that down:

* deterministic schedules over a storm-heavy multi-region trace,
  parametrized across serial/thread/process × shard counts × flush
  sizes (the full matrix the acceptance criteria name);
* a hypothesis chaos property (marked ``scale_chaos``; CI runs it as a
  dedicated job with the seeded ``scale_chaos`` profile) generating
  arbitrary interleavings of ``ingest_batch`` / ``scale_planes`` /
  ``rebalance`` / ``snapshot`` over randomized traces.

With rule learning **off**, the reference run is completely clean — no
barriers at all — so the assertion is the strongest form: any chaos
schedule ≡ a plain fixed-topology run.  With learning **on**, the
learner's judgment positions follow the flush schedule by design (every
flush is a judgment round), so the reference run mirrors the schedule's
flush barriers: each ``scale_planes(n)`` becomes ``scale_planes(
final_n)`` — a pure barrier that moves nothing — and rebalances/
snapshots stay.  That is exactly the invisibility claim: the *migration*
contributes nothing observable beyond the barrier it rides on.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.alerting.alert import Alert, Severity
from repro.common.errors import ValidationError
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.streaming import AlertGateway, LearnerConfig, PlaneRouter

from tests.streaming.conftest import make_alert
from tests.streaming.test_golden_trace import golden_graph

_REGIONS = ("region-A", "region-B", "region-C", "region-D", "region-E")
_STRATEGIES = ("s-api", "s-cache", "s-db", "s-queue", "s-noise")
_MICROS = ("m-1", "m-2", "m-3", "m-4", "m-5", "m-6")


def _blocker() -> AlertBlocker:
    return AlertBlocker([
        BlockingRule(strategy_id="s-noise", reason="chaos: repeating"),
        BlockingRule(strategy_id="s-cache", region="region-B",
                     reason="chaos: toggling in one region"),
    ])


def _storm_trace(n: int = 480) -> list[Alert]:
    """Deterministic multi-region trace with floods, gaps, and novelty.

    Region-A gets a real flood (crosses the 100/h storm threshold);
    the other regions see interleaved sub-flood traffic with session
    gaps, so R2/R3/R4 all carry non-trivial open state across any
    scale point the schedules pick.
    """
    alerts: list[Alert] = []
    for index in range(n):
        if index % 3 == 0:
            # The flood lane: every third event lands in region-A,
            # 20s apart -> ~180/h once the window fills.
            region = "region-A"
            occurred_at = (index // 3) * 20.0
        else:
            region = _REGIONS[1 + index % (len(_REGIONS) - 1)]
            occurred_at = (index // 3) * 20.0 + (index % 3) * 6.0
        alerts.append(make_alert(
            occurred_at=occurred_at,
            strategy_id=_STRATEGIES[index % len(_STRATEGIES)],
            region=region,
            microservice=_MICROS[index % len(_MICROS)],
            severity=list(Severity)[index % 4],
            cleared_after=30.0 if index % 4 == 0 else 1200.0,
        ))
    alerts.sort(key=lambda alert: alert.occurred_at)
    return alerts


def _counts(stats) -> tuple:
    return (
        stats.input_alerts,
        stats.blocked_alerts,
        stats.aggregates_emitted,
        stats.clusters_finalized,
        stats.storm_episodes,
        stats.emerging_flags,
    )


def _aggregate_fingerprint(gateway) -> list[tuple]:
    return [
        (a.strategy_id, a.region, a.count, a.window.start, a.window.end,
         tuple(a.alert_ids))
        for a in gateway.aggregates
    ]


def _cluster_fingerprint(gateway) -> list[tuple]:
    # Tie-robust canonical form: member sets, root microservice, and
    # coverage identify a cluster regardless of equal-timestamp member
    # ordering inside the union-find.
    return sorted(
        (tuple(sorted(alert.alert_id for alert in c.alerts)),
         c.root_microservice, round(c.coverage, 9))
        for c in gateway.clusters
    )


def _assert_planes_partition(stats) -> None:
    planes = stats.planes.values()
    assert set(stats.planes) == set(range(stats.n_planes))
    assert sum(p["processed"] for p in planes) == stats.input_alerts
    assert sum(p["blocked"] for p in planes) == stats.blocked_alerts
    assert sum(p["aggregates"] for p in planes) == stats.aggregates_emitted
    assert sum(p["clusters"] for p in planes) == stats.clusters_finalized
    assert sum(p["storm_episodes"] for p in planes) == stats.storm_episodes
    assert sum(p["emerging_flags"] for p in planes) == stats.emerging_flags


#: One chaos schedule: ``(position, op, arg)`` rows, positions in event
#: counts; ops are "scale" / "rebalance" / "snapshot".
Schedule = list[tuple[int, str, int]]


def _run_schedule(
    alerts: list[Alert],
    schedule: Schedule,
    n_planes: int,
    backend: str = "serial",
    n_shards: int = 2,
    flush_size: int = 32,
    learn: bool = False,
    retain: bool = True,
    blocker: AlertBlocker | None = None,
):
    gateway = AlertGateway(
        golden_graph(),
        blocker=blocker if blocker is not None else (
            AlertBlocker() if learn else _blocker()
        ),
        backend=backend,
        n_planes=n_planes,
        n_shards=n_shards,
        n_workers=2,
        flush_size=flush_size,
        retain_artifacts=retain,
        learn_rules=learn,
        enable_qoa=learn,
        learner_config=LearnerConfig(
            window_seconds=1800.0, min_alerts=10, repeat_count=15,
            rule_ttl=1800.0,
        ) if learn else None,
    )
    cursor = 0
    for position, op, arg in sorted(schedule, key=lambda row: row[0]):
        cut = min(max(position, cursor), len(alerts))
        gateway.ingest_batch(alerts[cursor:cut])
        cursor = cut
        if op == "scale":
            gateway.scale_planes(arg)
        elif op == "rebalance":
            gateway.rebalance(arg)
        elif op == "snapshot":
            snapshot = gateway.snapshot()
            assert snapshot.input_alerts == gateway.stats.input_alerts
    gateway.ingest_batch(alerts[cursor:])
    stats = gateway.drain()
    return gateway, stats


def _final_planes(schedule: Schedule, initial: int) -> int:
    planes = initial
    for _, op, arg in sorted(schedule, key=lambda row: row[0]):
        if op == "scale":
            planes = arg
    return planes


def _mirrored(schedule: Schedule, final: int) -> Schedule:
    """The reference schedule: same flush barriers, no migrations."""
    return [
        (position, op, final if op == "scale" else arg)
        for position, op, arg in schedule
    ]


# ----------------------------------------------------------------------
# deterministic schedules, full backend x shard x flush matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
@pytest.mark.parametrize("n_shards,flush_size", [(1, 1), (2, 32), (4, 128)])
class TestScaleInvisibility:
    def test_scale_out_matches_fixed_final(self, backend, n_shards, flush_size):
        alerts = _storm_trace()
        schedule = [(160, "scale", 4)]
        scaled_gw, scaled = _run_schedule(
            alerts, schedule, 1, backend, n_shards, flush_size,
        )
        fixed_gw, fixed = _run_schedule(
            alerts, [], 4, backend, n_shards, flush_size,
        )
        assert _counts(scaled) == _counts(fixed)
        assert _aggregate_fingerprint(scaled_gw) == _aggregate_fingerprint(fixed_gw)
        assert _cluster_fingerprint(scaled_gw) == _cluster_fingerprint(fixed_gw)
        _assert_planes_partition(scaled)

    def test_scale_in_matches_fixed_final(self, backend, n_shards, flush_size):
        alerts = _storm_trace()
        schedule = [(200, "scale", 2)]
        scaled_gw, scaled = _run_schedule(
            alerts, schedule, 4, backend, n_shards, flush_size,
        )
        fixed_gw, fixed = _run_schedule(
            alerts, [], 2, backend, n_shards, flush_size,
        )
        assert _counts(scaled) == _counts(fixed)
        assert _aggregate_fingerprint(scaled_gw) == _aggregate_fingerprint(fixed_gw)
        assert _cluster_fingerprint(scaled_gw) == _cluster_fingerprint(fixed_gw)
        _assert_planes_partition(scaled)

    def test_chaotic_mixed_schedule(self, backend, n_shards, flush_size):
        """Scale out, rebalance, snapshot, scale in, snapshot, scale out
        again — all mid-stream, against a clean fixed-final run."""
        alerts = _storm_trace()
        schedule = [
            (70, "scale", 3),
            (130, "rebalance", 3),
            (190, "snapshot", 0),
            (250, "scale", 1),
            (310, "snapshot", 0),
            (370, "scale", 4),
        ]
        scaled_gw, scaled = _run_schedule(
            alerts, schedule, 2, backend, n_shards, flush_size,
        )
        fixed_gw, fixed = _run_schedule(
            alerts, [], 4, backend, n_shards, flush_size,
        )
        assert _counts(scaled) == _counts(fixed)
        assert _aggregate_fingerprint(scaled_gw) == _aggregate_fingerprint(fixed_gw)
        assert _cluster_fingerprint(scaled_gw) == _cluster_fingerprint(fixed_gw)
        assert scaled.plane_scales == 3
        assert [row["to_planes"] for row in scaled.scales] == [3, 1, 4]
        _assert_planes_partition(scaled)


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_scale_invisibility_with_learning(backend):
    """Learned-rule timeline and QoA survive migrations bit-identically.

    The reference run mirrors the schedule's flush barriers (scales
    become no-op barriers at the final plane count), because the
    learner's judgment cadence *is* the flush schedule; everything else
    — evidence, promotions, TTLs, QoA counters — must be untouched by
    the migrations themselves.
    """
    alerts = _storm_trace()
    schedule = [(120, "scale", 3), (260, "rebalance", 3), (360, "scale", 2)]
    scaled_gw, scaled = _run_schedule(
        alerts, schedule, 1, backend, learn=True, retain=False,
    )
    mirrored = _mirrored(schedule, 2)
    fixed_gw, fixed = _run_schedule(
        alerts, mirrored, 2, backend, learn=True, retain=False,
    )
    assert _counts(scaled) == _counts(fixed)
    assert scaled_gw.learner.events == fixed_gw.learner.events
    assert scaled_gw.learner.counters() == fixed_gw.learner.counters()
    assert scaled.qoa == fixed.qoa
    assert scaled_gw.learner.scale_positions == [120, 360]
    _assert_planes_partition(scaled)


def test_retained_artifacts_survive_scale_in_across_processes():
    """A dropped plane's retained aggregates/clusters migrate with its
    regions — over the wire for the process backend — instead of dying
    with the worker-side plane object."""
    alerts = _storm_trace()
    scaled_gw, scaled = _run_schedule(
        alerts, [(240, "scale", 1)], 4, "process", retain=True,
    )
    fixed_gw, fixed = _run_schedule(alerts, [], 1, "process", retain=True)
    assert _aggregate_fingerprint(scaled_gw) == _aggregate_fingerprint(fixed_gw)
    assert _cluster_fingerprint(scaled_gw) == _cluster_fingerprint(fixed_gw)
    assert len(scaled_gw.aggregates) == scaled.aggregates_emitted
    assert len(scaled_gw.clusters) == scaled.clusters_finalized


def test_scale_to_current_count_is_a_pure_barrier():
    alerts = _storm_trace(120)
    gateway = AlertGateway(golden_graph(), blocker=_blocker(), n_planes=2,
                           flush_size=16, retain_artifacts=False)
    gateway.ingest_batch(alerts[:60])
    moved = gateway.scale_planes(2)
    assert moved == {}
    assert gateway.stats.plane_scales == 1
    assert gateway.stats.scales[0]["moved_regions"] == 0
    gateway.ingest_batch(alerts[60:])
    stats = gateway.drain()
    reference = AlertGateway(golden_graph(), blocker=_blocker(), n_planes=2,
                             flush_size=16, retain_artifacts=False)
    reference.ingest_batch(alerts)
    assert _counts(stats) == _counts(reference.drain())


def test_scale_before_any_ingestion():
    gateway = AlertGateway(golden_graph(), blocker=_blocker(), n_planes=1,
                           backend="process", n_workers=2, flush_size=32,
                           retain_artifacts=False)
    assert gateway.scale_planes(3) == {}
    assert gateway.n_planes == 3
    alerts = _storm_trace(120)
    gateway.ingest_batch(alerts)
    stats = gateway.drain()
    reference = AlertGateway(golden_graph(), blocker=_blocker(), n_planes=3,
                             backend="process", n_workers=2, flush_size=32,
                             retain_artifacts=False)
    reference.ingest_batch(alerts)
    assert _counts(stats) == _counts(reference.drain())


def test_scale_after_drain_is_rejected():
    gateway = AlertGateway(golden_graph(), blocker=_blocker(),
                           retain_artifacts=False)
    gateway.ingest_batch(_storm_trace(30))
    gateway.drain()
    with pytest.raises(ValidationError, match="drained"):
        gateway.scale_planes(2)


def test_failed_migration_poisons_the_gateway():
    """If the backend raises mid-scale, routing and plane state may be
    divergent — further ingestion must fail loudly, not silently split
    open sessions across planes."""
    gateway = AlertGateway(golden_graph(), blocker=_blocker(), n_planes=2,
                           flush_size=16, retain_artifacts=False)
    alerts = _storm_trace(120)
    gateway.ingest_batch(alerts[:60])

    def exploding_scale(n_planes, moved, n_shards):
        raise RuntimeError("worker died mid-migration")

    gateway._backend.scale = exploding_scale
    with pytest.raises(RuntimeError, match="mid-migration"):
        gateway.scale_planes(3)
    with pytest.raises(ValidationError, match="drained"):
        gateway.ingest_batch(alerts[60:])


def test_scale_rejects_nonpositive_plane_count():
    gateway = AlertGateway(golden_graph(), blocker=_blocker(),
                           retain_artifacts=False)
    with pytest.raises(ValidationError):
        gateway.scale_planes(0)


def test_rescale_matches_fresh_router_replay():
    """Post-rescale assignments equal a fresh router fed the same
    first-seen sequence — the invariant scale invisibility rests on."""
    router = PlaneRouter(2)
    regions = [f"r-{index}" for index in range(11)]
    for region in regions[:5]:
        router.plane_of(region)
    moved = router.rescale(3)
    for region in regions[5:8]:
        router.plane_of(region)
    router.rescale(5)
    for region in regions[8:]:
        router.plane_of(region)
    fresh = PlaneRouter(5)
    for region in regions:
        fresh.plane_of(region)
    assert router.assignments == fresh.assignments
    assert all(old != new for old, new in moved.values())


def test_learner_evidence_is_plane_attribution_invariant():
    """The digest re-homing guarantee, directly: the same observation
    rows, attributed to different plane splits (what a migration changes),
    produce identical learned timelines — nothing lost, nothing double-
    counted."""
    from repro.streaming import OnlineRuleLearner

    config = LearnerConfig(window_seconds=600.0, min_alerts=5,
                           repeat_count=8, rule_ttl=600.0)
    rows = [
        ("s-noise", "region-A", "svc", 6, 0, 4, 1),
        ("s-noise", "region-B", "svc", 5, 0, 3, 1),
        ("s-api", "region-A", "svc", 3, 0, 0, 1),
    ]
    one_plane = OnlineRuleLearner(config)
    for step in range(4):
        one_plane.observe(list(rows), 100.0 * (step + 1), 20 * (step + 1))
    split = OnlineRuleLearner(config)
    for step in range(4):
        # Post-migration attribution: same rows, reported by different
        # planes in a different concatenation order.
        split.observe(list(reversed(rows)), 100.0 * (step + 1), 20 * (step + 1))
        if step == 1:
            split.note_topology_change(20 * (step + 1))
    assert one_plane.events == split.events
    assert one_plane.counters() == split.counters()
    assert split.scale_positions == [40]


# ----------------------------------------------------------------------
# hypothesis chaos schedules (dedicated CI job: -m scale_chaos)
# ----------------------------------------------------------------------
#: Under the seeded CI profile (HYPOTHESIS_PROFILE=scale_chaos) the
#: properties run derandomized with a deeper example budget; the tier-1
#: default keeps them quick.  Explicit here because per-test @settings
#: would otherwise override the profile's example count.
_CHAOS_PROFILE = os.environ.get("HYPOTHESIS_PROFILE") == "scale_chaos"
_SERIAL_EXAMPLES = 100 if _CHAOS_PROFILE else 25
_POOLED_EXAMPLES = 30 if _CHAOS_PROFILE else 10


@st.composite
def chaos_traces(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    times = sorted(draw(st.lists(
        st.floats(min_value=0, max_value=40_000, allow_nan=False),
        min_size=n, max_size=n,
    )))
    alerts = []
    for index, occurred_at in enumerate(times):
        strategy = draw(st.sampled_from(_STRATEGIES))
        alerts.append(Alert(
            alert_id=f"c-{index:04d}",
            strategy_id=strategy,
            strategy_name=strategy,
            title=draw(st.sampled_from(("latency high", "errors 500 spiking"))),
            description="chaos",
            severity=draw(st.sampled_from(list(Severity))),
            service="svc",
            microservice=draw(st.sampled_from(_MICROS)),
            region=draw(st.sampled_from(_REGIONS[:4])),
            datacenter="dc",
            channel="metric",
            occurred_at=occurred_at,
        ))
    return alerts


@st.composite
def chaos_schedules(draw):
    n_ops = draw(st.integers(min_value=1, max_value=4))
    schedule: Schedule = []
    for _ in range(n_ops):
        position = draw(st.integers(min_value=0, max_value=120))
        op = draw(st.sampled_from(("scale", "scale", "rebalance", "snapshot")))
        if op == "scale":
            arg = draw(st.integers(min_value=1, max_value=4))
        elif op == "rebalance":
            arg = draw(st.integers(min_value=1, max_value=5))
        else:
            arg = 0
        schedule.append((position, op, arg))
    return schedule


@pytest.mark.scale_chaos
@settings(max_examples=_SERIAL_EXAMPLES, deadline=None,
          derandomize=_CHAOS_PROFILE)
@given(
    alerts=chaos_traces(),
    schedule=chaos_schedules(),
    initial_planes=st.integers(min_value=1, max_value=4),
    flush_size=st.sampled_from((1, 7, 64)),
    n_shards=st.integers(min_value=1, max_value=4),
)
def test_chaos_schedule_parity(alerts, schedule, initial_planes, flush_size,
                               n_shards):
    """Any interleaving of ingest/scale/rebalance/snapshot drains equal
    to a *clean* run at the final plane count (learning off — accounting
    is flush-schedule-invariant, so the reference needs no barriers)."""
    scaled_gw, scaled = _run_schedule(
        alerts, schedule, initial_planes, "serial", n_shards, flush_size,
    )
    final = _final_planes(schedule, initial_planes)
    fixed_gw, fixed = _run_schedule(
        alerts, [], final, "serial", n_shards, flush_size,
    )
    assert _counts(scaled) == _counts(fixed)
    assert _aggregate_fingerprint(scaled_gw) == _aggregate_fingerprint(fixed_gw)
    assert _cluster_fingerprint(scaled_gw) == _cluster_fingerprint(fixed_gw)
    _assert_planes_partition(scaled)


@pytest.mark.scale_chaos
@settings(max_examples=_POOLED_EXAMPLES, deadline=None,
          derandomize=_CHAOS_PROFILE)
@given(
    alerts=chaos_traces(),
    schedule=chaos_schedules(),
    backend=st.sampled_from(("thread", "process")),
)
def test_chaos_schedule_backend_equivalence(alerts, schedule, backend):
    """The same chaos schedule is backend-invariant: pooled and process
    execution reproduce the serial run exactly, migrations included."""
    serial_gw, serial = _run_schedule(alerts, schedule, 2, "serial")
    pooled_gw, pooled = _run_schedule(alerts, schedule, 2, backend)
    assert _counts(serial) == _counts(pooled)
    assert _aggregate_fingerprint(serial_gw) == _aggregate_fingerprint(pooled_gw)
    assert _cluster_fingerprint(serial_gw) == _cluster_fingerprint(pooled_gw)


@pytest.mark.scale_chaos
@settings(max_examples=_POOLED_EXAMPLES, deadline=None,
          derandomize=_CHAOS_PROFILE)
@given(
    alerts=chaos_traces(),
    schedule=chaos_schedules(),
    initial_planes=st.integers(min_value=1, max_value=3),
)
def test_chaos_schedule_parity_with_learning(alerts, schedule, initial_planes):
    """With online rule learning + QoA, the learned timeline and scores
    match the barrier-mirrored fixed-topology reference exactly."""
    scaled_gw, scaled = _run_schedule(
        alerts, schedule, initial_planes, "serial", learn=True, retain=False,
    )
    final = _final_planes(schedule, initial_planes)
    fixed_gw, fixed = _run_schedule(
        alerts, _mirrored(schedule, final), final, "serial", learn=True,
        retain=False,
    )
    assert _counts(scaled) == _counts(fixed)
    assert scaled_gw.learner.events == fixed_gw.learner.events
    assert scaled.qoa == fixed.qoa
