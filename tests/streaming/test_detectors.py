"""StreamingDetectorSuite: digest folding, verdicts, checkpoint exactness.

The differential harness proves online-vs-batch parity end to end; these
tests pin the suite's own contracts — deterministic digest folding, the
A2 evidence gates, storm-hour exclusion, and bit-exact state round trips
through the gateway's checkpoint path.
"""

from __future__ import annotations

import pytest

from repro.alerting.alert import Severity
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR
from repro.core.antipatterns.base import DetectorThresholds
from repro.streaming import AlertGateway, StreamingDetectorSuite


def _catalog_row(sid, title="database-api-01: failed to commit changes",
                 description=None, severity=Severity.MINOR, service="svc",
                 first_at=0.0, first_id=None, last_at=1000.0):
    return (
        sid, first_at, first_id or f"{sid}-a0", title,
        description if description is not None else f"details for {sid}",
        int(severity), service, last_at,
    )


def _stat_row(sid, region="region-A", bucket=0, count=4, transient=0,
              manual=0, cleared=4, duration_sum=240.0, times=None):
    if times is None:
        times = tuple(bucket * HOUR + 900.0 * i for i in range(count))
    return (sid, region, bucket, count, transient, manual, cleared,
            duration_sum, tuple(times))


def _digest(catalog=(), stats=(), docs=(), doc_rows=()):
    return (list(catalog), list(stats), list(docs), list(doc_rows))


class TestFolding:
    def test_repeat_window_below_one_hour_is_rejected(self):
        with pytest.raises(ValidationError):
            StreamingDetectorSuite(DetectorThresholds(repeat_window=HOUR / 2))

    def test_first_seen_metadata_wins_across_digests(self):
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=[_catalog_row(
            "s-1", title="late title", first_at=100.0, first_id="alert-b",
            last_at=200.0,
        )]))
        suite.observe(_digest(catalog=[_catalog_row(
            "s-1", title="early title", first_at=50.0, first_id="alert-a",
            last_at=150.0,
        )]))
        [[sid, first_at, first_id, title, *_rest, last_at]] = \
            suite.export_state()["catalog"]
        assert (sid, first_at, first_id, title) == \
            ("s-1", 50.0, "alert-a", "early title")
        assert last_at == 200.0

    def test_fold_order_does_not_matter(self):
        digests = [
            _digest(catalog=[_catalog_row("s-1", first_at=100.0,
                                          first_id="alert-b")],
                    stats=[_stat_row("s-1", bucket=0)]),
            _digest(catalog=[_catalog_row("s-1", first_at=50.0,
                                          first_id="alert-a")],
                    stats=[_stat_row("s-1", bucket=0), _stat_row("s-1", bucket=3)]),
        ]
        forward, backward = StreamingDetectorSuite(), StreamingDetectorSuite()
        for digest in digests:
            forward.observe(digest)
        for digest in reversed(digests):
            backward.observe(digest)
        assert forward.export_state() == backward.export_state()

    def test_bucket_times_are_capped_at_the_repeat_count(self):
        cap = DetectorThresholds().repeat_window_count
        suite = StreamingDetectorSuite()
        first = tuple(float(i) for i in range(5))
        second = tuple(100.0 + i for i in range(6))
        suite.observe(_digest(stats=[_stat_row(
            "s-1", count=5, cleared=5, times=first)]))
        suite.observe(_digest(stats=[_stat_row(
            "s-1", count=6, cleared=6, times=second)]))
        [[_sid, _region, _bucket, count, *_mid, times]] = \
            suite.export_state()["stats"]
        assert count == 11
        assert len(times) == cap
        assert times == list(first + second)[:cap]


def _severity_fixture():
    """3 low-impact WARNING + 3 high-impact CRITICAL + one WARNING
    misfit carrying CRITICAL-class impact."""
    catalog, stats = [], []
    specs = (
        [(f"s-low-{i}", Severity.WARNING, 0, 60.0) for i in range(3)]
        + [(f"s-high-{i}", Severity.CRITICAL, 4, 7200.0) for i in range(3)]
        + [("s-misfit", Severity.WARNING, 4, 7200.0)]
    )
    for sid, severity, manual, duration in specs:
        catalog.append(_catalog_row(sid, severity=severity))
        # Three sparse hour buckets: 12 steady alerts, never more than
        # 4 events inside any repeat window (buckets 10h apart).
        for bucket in (0, 10, 20):
            stats.append(_stat_row(
                sid, bucket=bucket, count=4, transient=0, manual=manual,
                cleared=4, duration_sum=4 * duration,
            ))
    return catalog, stats


class TestSeverityFindings:
    def test_misfit_is_the_only_a2_finding(self):
        catalog, stats = _severity_fixture()
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=catalog, stats=stats))
        findings = suite.findings()["A2"]
        assert [f.subject for f in findings] == ["s-misfit"]
        assert "understated" in findings[0].evidence

    def test_storm_hours_suppress_their_evidence(self):
        # Flood-level volume in (bucket 0, region-A) drops that hour for
        # every strategy: each falls to 8 steady alerts, below the
        # severity_min_alerts gate, so no A2 verdicts remain — the same
        # flood exclusion the batch detector applies.
        catalog, stats = _severity_fixture()
        catalog.append(_catalog_row("s-flood", severity=Severity.WARNING))
        stats.append(_stat_row(
            "s-flood", bucket=0, count=150, transient=0, manual=0,
            cleared=150, duration_sum=150 * 60.0,
            times=tuple(float(i) for i in range(8)),
        ))
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=catalog, stats=stats))
        assert suite.findings()["A2"] == []

    def test_repeat_dominated_strategies_are_gated(self):
        catalog, stats = _severity_fixture()
        # Hand the misfit one full bucket: cap-many events inside an
        # hour is proof of a repeat-sized run, which gates it out.
        cap = DetectorThresholds().repeat_window_count
        stats.append(_stat_row(
            "s-misfit", bucket=30, count=cap, cleared=cap,
            duration_sum=cap * 7200.0,
            times=tuple(30 * HOUR + float(i) for i in range(cap)),
        ))
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=catalog, stats=stats))
        assert suite.findings()["A2"] == []


class TestTitleAndDefinitionFindings:
    def test_vague_title_is_flagged(self):
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=[
            _catalog_row("s-vague", title="Instance x is abnormal",
                         description="something seems off"),
            _catalog_row("s-clear"),
        ]))
        findings = suite.findings()["A1"]
        assert [f.subject for f in findings] == ["s-vague"]
        assert "clarity" in findings[0].evidence

    def test_stale_and_duplicate_definitions_are_flagged(self):
        thresholds = DetectorThresholds()
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=[
            _catalog_row("s-stale", description="stale one", last_at=0.0),
            _catalog_row("s-dup-1", title="disk full", description="same text",
                         last_at=2 * thresholds.stale_after),
            _catalog_row("s-dup-2", title="disk full", description="same text",
                         last_at=2 * thresholds.stale_after),
        ]))
        findings = suite.findings()["A3"]
        kinds = {(f.subject, f.details["kind"]) for f in findings}
        assert kinds == {("s-stale", "stale"),
                         ("s-dup-1", "duplicate"), ("s-dup-2", "duplicate")}

    def test_summary_counts_match_findings(self):
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=[
            _catalog_row("s-vague", title="Instance x is abnormal",
                         description="hmm"),
        ]))
        summary = suite.summary()
        assert summary["strategies"] == 1
        assert summary["findings"] == {
            pattern: len(items) for pattern, items in suite.findings().items()
        }


class TestStateRoundTrip:
    def test_export_restore_is_bit_exact(self):
        catalog, stats = _severity_fixture()
        docs = [((1, 5, 9), (2, 1, 1)), ((3,), (4,))]
        doc_rows = [(10.0, "s-low-0", 0), (20.0, "s-misfit", 1)]
        suite = StreamingDetectorSuite()
        suite.observe(_digest(catalog=catalog, stats=stats, docs=docs,
                              doc_rows=doc_rows), watermark=20.0)
        clone = StreamingDetectorSuite()
        clone.restore_state(suite.export_state())
        assert clone.export_state() == suite.export_state()
        assert clone.summary() == suite.summary()


class TestGatewayIntegration:
    @pytest.fixture(scope="class")
    def storm_alerts(self, storm_trace):
        trace, topology = storm_trace
        return list(trace.iter_ordered()), topology

    def _gateway(self, topology, **kwargs):
        kwargs.setdefault("n_shards", 2)
        kwargs.setdefault("flush_size", 64)
        return AlertGateway(topology.graph, detect_antipatterns=True, **kwargs)

    def test_verdicts_are_plane_count_invariant(self, storm_alerts):
        alerts, topology = storm_alerts
        states, detections = [], []
        for n_planes in (1, 4):
            gateway = self._gateway(topology, n_planes=n_planes)
            gateway.ingest_many(alerts)
            stats = gateway.drain()
            states.append(gateway.detectors.export_state())
            detections.append(stats.detection)
            gateway.close()
        assert states[0] == states[1]
        assert detections[0] == detections[1]
        assert detections[0]["strategies"] > 0

    def test_checkpoint_restore_continue_matches_straight_run(self, storm_alerts):
        alerts, topology = storm_alerts
        straight = self._gateway(topology, n_planes=2)
        straight.ingest_many(alerts)
        reference = straight.drain().detection
        reference_state = straight.detectors.export_state()
        straight.close()

        cut = (len(alerts) // 2 // 64) * 64  # land on a flush barrier
        first = self._gateway(topology, n_planes=2)
        first.ingest_many(alerts[:cut])
        state = first.checkpoint_state()
        config = first.checkpoint_config()
        first.close()

        revived = self._gateway(topology, n_planes=2)
        assert revived.checkpoint_config() == config
        revived.adopt_checkpoint(state)
        revived.ingest_many(alerts[cut:])
        stats = revived.drain()
        assert revived.detectors.export_state() == reference_state
        assert stats.detection == reference
        revived.close()

    def test_adopting_detector_state_without_detectors_is_refused(
            self, storm_alerts):
        alerts, topology = storm_alerts
        source = self._gateway(topology, n_planes=1)
        source.ingest_many(alerts[:128])
        state = source.checkpoint_state()
        source.close()
        plain = AlertGateway(topology.graph, n_shards=2, flush_size=64)
        with pytest.raises(ValidationError):
            plain.adopt_checkpoint(state)
        plain.close()
