"""Golden-trace regression: a committed trace with frozen expected counts.

``tests/data/golden_stream/trace.jsonl`` is a small deterministic alert
trace (quiet traffic, one flood burst, novel late strategies) and
``expected.json`` freezes the mitigation chain's exact volume accounting
over it.  Any change that shifts a single count — R1 rule matching, R2
session boundaries, R3 evidence or finalisation, R4 thresholds, JSONL
round-tripping — fails here before it can silently alter every other
result in the repo.

The expectations apply to *every* execution backend and plane count and
to the batch pipeline, so the file also guards streaming/batch parity —
and plane-partitioning exactness — itself.

Regenerate (after an intentional semantics change, with review):

    PYTHONPATH=src:tests python tests/streaming/test_golden_trace.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.io.jsonl import write_jsonl
from repro.io.traces import alert_to_dict
from repro.streaming import AlertGateway, LearnerConfig, iter_jsonl_alerts
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

DATA_DIR = Path(__file__).resolve().parents[1] / "data" / "golden_stream"
TRACE_PATH = DATA_DIR / "trace.jsonl"
EXPECTED_PATH = DATA_DIR / "expected.json"
LEARNED_PATH = DATA_DIR / "learned_rules.json"
SCALED_PATH = DATA_DIR / "scaled_trace.json"

WINDOW = 900.0

#: Frozen scale-event schedule for the scaled-trace fixture: the golden
#: trace replayed from one plane, scaled out to 3 mid-flood, then back
#: in to 2 — so the fixture freezes migration bookkeeping (who moved,
#: which plane owns which history) on top of the already-frozen counts.
SCALE_SCHEDULE = ((90, 3), (200, 2))
SCALE_INITIAL_PLANES = 1

#: Frozen learner configuration for the learned-rules fixture.  The
#: golden flood (120 alerts in 25 minutes) deliberately crosses the A5
#: repeat threshold, so the fixture freezes promotion *and* expiry
#: behaviour, plus the end-of-run streaming QoA scores.
LEARN_CONFIG = LearnerConfig(
    window_seconds=1800.0, min_alerts=10, repeat_count=15, rule_ttl=1800.0,
)


def golden_graph() -> DependencyGraph:
    """A fixed six-node topology: two call chains sharing a sink."""
    graph = DependencyGraph()
    for name in ("m-1", "m-2", "m-3", "m-4", "m-5", "m-6"):
        graph.add_microservice(name, service="svc")
    for caller, callee in (("m-1", "m-2"), ("m-2", "m-3"),
                           ("m-4", "m-5"), ("m-5", "m-3")):
        graph.add_dependency(caller, callee)
    return graph


def golden_blocker() -> AlertBlocker:
    """Two fixed R1 rules: one strategy-wide, one region-scoped."""
    return AlertBlocker([
        BlockingRule(strategy_id="s-noise", reason="golden: repeating"),
        BlockingRule(strategy_id="s-flaky", region="region-B",
                     reason="golden: toggling in one region"),
    ])


def _load_alerts():
    return list(iter_jsonl_alerts(TRACE_PATH))


def _run_gateway(alerts, backend: str, **kwargs):
    gateway = AlertGateway(
        golden_graph(), blocker=golden_blocker(), backend=backend,
        aggregation_window=WINDOW, correlation_window=WINDOW, **kwargs,
    )
    gateway.ingest_batch(alerts)
    return gateway.drain()


def _stats_payload(stats) -> dict:
    return {
        "input_alerts": stats.input_alerts,
        "blocked_alerts": stats.blocked_alerts,
        "aggregates": stats.aggregates_emitted,
        "clusters": stats.clusters_finalized,
        "storm_episodes": stats.storm_episodes,
        "emerging_flags": stats.emerging_flags,
        "late_events": stats.late_events,
        "watermark": stats.watermark,
    }


def _run_scaled_gateway(alerts, backend: str = "serial", **kwargs):
    """The frozen scale schedule over the golden trace."""
    gateway = AlertGateway(
        golden_graph(), blocker=golden_blocker(), backend=backend,
        n_planes=SCALE_INITIAL_PLANES, flush_size=64,
        aggregation_window=WINDOW, correlation_window=WINDOW,
        retain_artifacts=False, **kwargs,
    )
    moved_log = []
    cursor = 0
    for position, n_planes in SCALE_SCHEDULE:
        gateway.ingest_batch(alerts[cursor:position])
        cursor = position
        moved = gateway.scale_planes(n_planes)
        moved_log.append({
            region: list(planes) for region, planes in sorted(moved.items())
        })
    gateway.ingest_batch(alerts[cursor:])
    return gateway, gateway.drain(), moved_log


def _scaled_payload(stats, moved_log) -> dict:
    """Counts + migration bookkeeping, JSON-stable."""
    return {
        "counts": _stats_payload(stats),
        "planes": [
            {
                "plane_id": plane_id,
                "regions": sorted(row["regions"]),
                "processed": row["processed"],
                "blocked": row["blocked"],
                "aggregates": row["aggregates"],
                "clusters": row["clusters"],
                "storm_episodes": row["storm_episodes"],
                "emerging_flags": row["emerging_flags"],
            }
            for plane_id, row in sorted(stats.planes.items())
        ],
        "scales": [dict(scale) for scale in stats.scales],
        "moved": moved_log,
    }


def _run_learning_gateway(alerts, backend: str = "serial", **kwargs):
    """The fixed learned-rules configuration (empty initial rule table)."""
    gateway = AlertGateway(
        golden_graph(), blocker=AlertBlocker(), backend=backend,
        flush_size=64, aggregation_window=WINDOW, correlation_window=WINDOW,
        learn_rules=True, enable_qoa=True, learner_config=LEARN_CONFIG,
        retain_artifacts=False, **kwargs,
    )
    gateway.ingest_batch(alerts)
    stats = gateway.drain()
    return gateway, stats


def _learned_payload(gateway, stats) -> dict:
    """Rule event log + final counters + QoA scores, JSON-stable."""
    return {
        "events": [
            [e.kind, e.strategy_id, e.at_input, round(e.at_time, 3),
             None if e.expires_at is None else round(e.expires_at, 3)]
            for e in gateway.learner.events
        ],
        "counters": {
            "blocked_alerts": stats.blocked_alerts,
            "rules_promoted": stats.rules_promoted,
            "rules_renewed": stats.rules_renewed,
            "rules_demoted": stats.rules_demoted,
            "rules_expired": stats.rules_expired,
        },
        "qoa": {
            strategy_id: {
                "seen": row["seen"],
                "blocked": row["blocked"],
                "transient": row["transient"],
                "groups": row["groups"],
                "overall": round(row["overall"], 6),
            }
            for strategy_id, row in sorted(stats.qoa.items())
        },
    }


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def expected(self):
        return json.loads(EXPECTED_PATH.read_text())

    @pytest.fixture(scope="class")
    def alerts(self):
        return _load_alerts()

    def test_fixture_integrity(self, expected, alerts):
        assert len(alerts) == expected["trace_alerts"]
        times = [a.occurred_at for a in alerts]
        assert times == sorted(times), "golden trace must be in-order"

    @pytest.mark.parametrize("backend,kwargs", [
        ("serial", {}),
        ("serial", {"flush_size": 64}),
        ("serial", {"flush_size": 64, "n_planes": 2}),
        ("serial", {"n_planes": 4}),
        ("thread", {"flush_size": 64, "n_workers": 2}),
        ("thread", {"flush_size": 64, "n_workers": 2, "n_planes": 2}),
        ("process", {"flush_size": 64, "n_workers": 2}),
        ("process", {"flush_size": 64, "n_workers": 2, "n_planes": 2}),
    ])
    def test_gateway_counts_are_frozen(self, expected, alerts, backend, kwargs):
        stats = _run_gateway(alerts, backend, **kwargs)
        assert _stats_payload(stats) == expected["counts"], (
            f"counting drift detected on the {backend} backend "
            f"({kwargs or 'per-event'}); if the semantics change is "
            f"intentional, regenerate with --regen and justify the diff"
        )

    def test_learned_rule_timeline_is_frozen(self, alerts):
        """Any change to learner behaviour — thresholds, promotion or
        expiry timing, QoA scoring — shows up here as a reviewable diff
        of the committed event log, not as silent drift."""
        expected = json.loads(LEARNED_PATH.read_text())
        gateway, stats = _run_learning_gateway(alerts)
        assert _learned_payload(gateway, stats) == expected, (
            "learned-rule drift detected; if the semantics change is "
            "intentional, regenerate with --regen and justify the diff"
        )

    @pytest.mark.parametrize("backend,kwargs", [
        ("thread", {"n_workers": 2, "n_planes": 2}),
        ("process", {"n_workers": 2, "n_planes": 2}),
    ])
    def test_learned_rule_timeline_is_backend_invariant(
        self, alerts, backend, kwargs
    ):
        expected = json.loads(LEARNED_PATH.read_text())
        gateway, stats = _run_learning_gateway(alerts, backend, **kwargs)
        assert _learned_payload(gateway, stats) == expected

    def test_scaled_trace_counts_match_unscaled_golden(self, expected, alerts):
        """Scale invisibility against the original fixture: the frozen
        scale schedule must reproduce the *unscaled* golden counts bit
        for bit — the strongest drift guard there is for migration."""
        _, stats, _ = _run_scaled_gateway(alerts)
        assert _stats_payload(stats) == expected["counts"]

    @pytest.mark.parametrize("backend,kwargs", [
        ("serial", {}),
        ("thread", {"n_workers": 2}),
        ("process", {"n_workers": 2}),
    ])
    def test_scaled_trace_bookkeeping_is_frozen(self, alerts, backend, kwargs):
        """The migration bookkeeping — per-plane ownership and counter
        history after two scale events, the moved-region plans, the
        scale log — is frozen for every backend.  Drift here means a
        migration silently re-homed, lost, or double-counted state."""
        expected = json.loads(SCALED_PATH.read_text())
        _, stats, moved_log = _run_scaled_gateway(alerts, backend, **kwargs)
        assert _scaled_payload(stats, moved_log) == expected, (
            f"scaled-trace drift detected on the {backend} backend; if the "
            f"semantics change is intentional, regenerate with --regen and "
            f"justify the diff"
        )

    def test_batch_pipeline_counts_are_frozen(self, expected, alerts):
        trace = AlertTrace(alerts=list(alerts), label="golden", seed=0)
        report = MitigationPipeline(
            golden_graph(), aggregation_window=WINDOW,
            correlation_window=WINDOW,
        ).run(trace, blocker=golden_blocker())
        counts = expected["counts"]
        assert report.input_alerts == counts["input_alerts"]
        assert report.blocked_alerts == counts["blocked_alerts"]
        assert len(report.aggregates) == counts["aggregates"]
        assert len(report.clusters) == counts["clusters"]


# ----------------------------------------------------------------------
# fixture generation (not executed by pytest)
# ----------------------------------------------------------------------
def _build_golden_alerts():
    """~260 deterministic alerts: steady traffic, one flood, novel tails."""
    import random

    from repro.alerting.alert import Alert, Severity

    rng = random.Random(20260707)
    micro_of = {
        "s-api": "m-1", "s-cache": "m-2", "s-db": "m-3",
        "s-queue": "m-4", "s-batch": "m-5", "s-edge": "m-6",
        "s-noise": "m-2", "s-flaky": "m-5",
        "s-late-1": "m-1", "s-late-2": "m-4",
    }
    severities = [Severity.CRITICAL, Severity.MAJOR, Severity.MINOR,
                  Severity.WARNING]
    events: list[tuple[float, str, str, str]] = []

    def emit(time, strategy, region, title):
        events.append((time, strategy, region, title))

    # Phase 1 — two hours of sparse background traffic in both regions.
    for strategy in ("s-api", "s-cache", "s-db", "s-queue", "s-batch",
                     "s-edge", "s-noise", "s-flaky"):
        for region in ("region-A", "region-B"):
            t = rng.uniform(0.0, 600.0)
            while t < 7200.0:
                emit(t, strategy, region,
                     f"{strategy} latency {rng.randrange(100, 999)} ms")
                t += rng.uniform(900.0, 2400.0)
    # Phase 2 — a 25-minute flood in region-A (crosses the 100/h storm
    # threshold) spread over the two correlated call chains.
    for index in range(120):
        t = 7200.0 + index * 12.5
        strategy = ("s-api", "s-cache", "s-db", "s-queue")[index % 4]
        emit(t, strategy, "region-A",
             f"{strategy} errors {rng.randrange(1, 50)}xx rising")
    # Phase 3 — elevated-but-sub-flood region-A traffic (the 25-100/h
    # emerging band once the flood ages out of the rate window), with
    # two never-seen strategies appearing inside it, plus B-side strays.
    for strategy in ("s-api", "s-cache", "s-db", "s-queue", "s-batch",
                     "s-edge"):
        t = 9800.0 + rng.uniform(0.0, 400.0)
        while t < 13_000.0:
            emit(t, strategy, "region-A",
                 f"{strategy} retries {rng.randrange(2, 30)} climbing")
            t += rng.uniform(300.0, 700.0)
    for index, strategy in enumerate(("s-late-1", "s-late-2")):
        for repeat in range(3):
            emit(11_500.0 + index * 140.0 + repeat * 13.0, strategy,
                 "region-A", f"{strategy} saturation {repeat}")
    for strategy in ("s-api", "s-db", "s-noise"):
        t = 9500.0
        while t < 13_000.0:
            emit(t, strategy, "region-B",
                 f"{strategy} latency {rng.randrange(100, 999)} ms")
            t += rng.uniform(400.0, 1200.0)

    events.sort(key=lambda event: event[0])
    alerts = []
    for index, (time, strategy, region, title) in enumerate(events):
        alerts.append(Alert(
            alert_id=f"golden-{index:04d}",
            strategy_id=strategy,
            strategy_name=f"{strategy}-name",
            title=title,
            description="golden fixture event",
            severity=severities[rng.randrange(len(severities))],
            service="svc",
            microservice=micro_of[strategy],
            region=region,
            datacenter=f"{region}-dc1",
            channel="metric",
            occurred_at=round(time, 3),
        ))
    return alerts


def _regenerate() -> None:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    alerts = _build_golden_alerts()
    write_jsonl(TRACE_PATH, (alert_to_dict(alert) for alert in alerts))
    stats = _run_gateway(alerts, "serial")
    EXPECTED_PATH.write_text(json.dumps({
        "trace_alerts": len(alerts),
        "counts": _stats_payload(stats),
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {TRACE_PATH} ({len(alerts)} alerts)")
    print(f"wrote {EXPECTED_PATH}: {_stats_payload(stats)}")
    gateway, learn_stats = _run_learning_gateway(alerts)
    payload = _learned_payload(gateway, learn_stats)
    LEARNED_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {LEARNED_PATH}: {len(payload['events'])} rule events, "
          f"{payload['counters']}")
    _, scaled_stats, moved_log = _run_scaled_gateway(alerts)
    scaled = _scaled_payload(scaled_stats, moved_log)
    SCALED_PATH.write_text(json.dumps(scaled, indent=2, sort_keys=True) + "\n")
    print(f"wrote {SCALED_PATH}: {len(scaled['scales'])} scale events, "
          f"{sum(len(m) for m in scaled['moved'])} region migrations")


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to run outside pytest without --regen")
    _regenerate()
