"""The batch-vs-stream differential harness (``pytest -m differential``).

ROADMAP asked for online R1 rule learning that "quantifies the
divergence vs batch-derived rules"; this harness turns that into
CI-enforced numbers on two deterministic workloads
(:mod:`repro.workload.drift`):

* **stationary noise** — the noisy-strategy population never changes, so
  online learning and a batch pass over the finished trace must agree:
  the learned rule set is held to **precision >= 0.9** (and recall
  >= 0.9) against :meth:`MitigationPipeline.derive_blocker`'s set.
* **drifting noise** — the population swaps at half-time.  Here the two
  *legitimately* diverge (the batch pass underweights short-lived
  repeaters; the online learner promotes them as they appear and retires
  phase-A rules behind them).  The divergence — rule precision/recall,
  blocked-volume delta, per-strategy QoA drift — is computed, bounded
  loosely, and written to ``benchmarks/results/differential_report.json``
  so CI can archive it as a reviewable artifact.

Two exactness legs ride along: with learning *disabled* the gateway must
still reconcile bit-for-bit with the batch pipeline on these traces, and
the streaming QoA scores at drain must equal the batch-computed ratios
to within :data:`repro.streaming.qoa.QOA_DRAIN_TOLERANCE` (documented:
pure float-division noise; the underlying counters are identical).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.alerting.alert import Alert, Severity
from repro.core.antipatterns.definitions import DefinitionHygieneDetector
from repro.core.antipatterns.individual import run_individual_detectors
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.emerging import EmergingAlertDetector
from repro.ml.sketch import SketchEmergingDetector
from repro.streaming import (
    AlertGateway,
    LearnerConfig,
    measure_stream_qoa,
    rule_set_divergence,
)
from repro.streaming.qoa import QOA_DRAIN_TOLERANCE
from repro.workload import DriftConfig, build_drifting_noise_trace, drift_graph

pytestmark = pytest.mark.differential

REPORT_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "results" / "differential_report.json"
)

WINDOW = 900.0
#: Short TTL so drifting-phase rules retire while the trace still runs.
LEARNER = LearnerConfig(rule_ttl=1800.0)

#: Differential-harness acceptance bounds (the documented numbers).
PRECISION_FLOOR_STATIONARY = 0.9
RECALL_FLOOR_STATIONARY = 0.9

#: The static-threshold blocked-volume ratio recorded before adaptive
#: thresholds existed (PR 10's starting point); adaptive learning on
#: stationary noise must strictly beat it.
STATIC_BASELINE_RATIO = 0.46

#: Learner judgment cadence for the adaptive-vs-static comparison: both
#: arms flush every 10 minutes so the only variable is the thresholds.
ADAPTIVE_FLUSH_INTERVAL = 600.0


def _run_online(trace, graph, learner_config=LEARNER, **kwargs):
    """One learning gateway run from an empty rule table."""
    gateway = AlertGateway(
        graph, blocker=AlertBlocker(), flush_size=256,
        aggregation_window=WINDOW, correlation_window=WINDOW,
        learn_rules=True, enable_qoa=True, learner_config=learner_config,
        retain_artifacts=False, **kwargs,
    )
    gateway.ingest_batch(trace.iter_ordered())
    stats = gateway.drain()
    return gateway, stats


def _divergence_metrics(trace, graph) -> dict:
    """Replay one trace both ways and quantify every divergence axis."""
    batch_blocker = MitigationPipeline.derive_blocker(trace)
    batch_set = {rule.strategy_id for rule in batch_blocker.rules}
    batch_report = MitigationPipeline(
        graph, aggregation_window=WINDOW, correlation_window=WINDOW,
    ).run(trace, blocker=batch_blocker)

    gateway, stats = _run_online(trace, graph)
    metrics = rule_set_divergence(gateway.learner.ever_promoted, batch_set)
    metrics["online_blocked"] = stats.blocked_alerts
    metrics["batch_blocked"] = batch_report.blocked_alerts
    metrics["blocked_volume_delta"] = (
        stats.blocked_alerts - batch_report.blocked_alerts
    )
    metrics["blocked_volume_ratio"] = (
        stats.blocked_alerts / batch_report.blocked_alerts
        if batch_report.blocked_alerts else 1.0
    )
    metrics["rule_events"] = len(gateway.learner.events)
    metrics["rules_promoted"] = stats.rules_promoted
    metrics["rules_demoted"] = stats.rules_demoted
    metrics["rules_expired"] = stats.rules_expired

    # QoA drift: online scores (learned rules blocking) vs the batch-rule
    # equivalents on the finished trace.
    batch_qoa = measure_stream_qoa(
        list(trace.iter_ordered()), batch_blocker, aggregation_window=WINDOW,
    )
    drifts = [
        abs(stats.qoa[strategy_id]["overall"] - batch_qoa[strategy_id].overall)
        for strategy_id in stats.qoa
        if strategy_id in batch_qoa
    ]
    metrics["qoa_max_drift"] = max(drifts) if drifts else 0.0
    metrics["qoa_mean_drift"] = sum(drifts) / len(drifts) if drifts else 0.0
    return metrics


@pytest.fixture(scope="module")
def stationary():
    config = DriftConfig(drift=False)
    return build_drifting_noise_trace(config), drift_graph(config)


@pytest.fixture(scope="module")
def drifting():
    config = DriftConfig(drift=True)
    return build_drifting_noise_trace(config), drift_graph(config)


@pytest.fixture(scope="module")
def stationary_metrics(stationary):
    trace, graph = stationary
    return _divergence_metrics(trace, graph)


@pytest.fixture(scope="module")
def drifting_metrics(drifting):
    trace, graph = drifting
    return _divergence_metrics(trace, graph)


class TestStationaryConvergence:
    def test_online_rules_reach_precision_floor(self, stationary_metrics):
        """The ISSUE-4 acceptance bound: >= 0.9 precision vs batch rules."""
        assert stationary_metrics["rules_promoted"] > 0
        assert stationary_metrics["precision"] >= PRECISION_FLOOR_STATIONARY, (
            f"online-learned rules reached precision "
            f"{stationary_metrics['precision']:.2f} vs batch-derived rules"
        )

    def test_online_rules_reach_recall_floor(self, stationary_metrics):
        assert stationary_metrics["recall"] >= RECALL_FLOOR_STATIONARY, (
            f"online-learned rules reached recall "
            f"{stationary_metrics['recall']:.2f} vs batch-derived rules"
        )

    def test_online_blocking_engages(self, stationary_metrics):
        """Learned rules must actually block volume — but never more than
        batch rules, which block from t=0 while the learner must first
        accumulate evidence."""
        assert 0 < stationary_metrics["online_blocked"]
        assert (
            stationary_metrics["online_blocked"]
            <= stationary_metrics["batch_blocked"]
        )


class TestDriftingDivergence:
    def test_divergence_metrics_are_quantified(self, drifting_metrics):
        """Every divergence axis is a finite, reportable number."""
        for key in ("precision", "recall", "blocked_volume_delta",
                    "blocked_volume_ratio", "qoa_max_drift"):
            assert key in drifting_metrics
        assert 0.0 <= drifting_metrics["precision"] <= 1.0
        assert 0.0 <= drifting_metrics["recall"] <= 1.0
        assert 0.0 < drifting_metrics["blocked_volume_ratio"] <= 1.0

    def test_online_learning_adapts_to_the_drifted_population(self, drifting):
        """The point of online learning: phase-B noise (invisible to any
        rule set frozen at deploy time) is promoted once it appears, and
        phase-A rules retire (expire or demote) before the stream ends."""
        trace, graph = drifting
        gateway, _stats = _run_online(trace, graph)
        events = gateway.learner.events
        promoted = {e.strategy_id for e in events if e.kind == "promote"}
        assert any(s.startswith(("s-flap-b", "s-rep-b")) for s in promoted)
        end = max(a.occurred_at for a in trace.alerts)
        retired_a = {
            e.strategy_id for e in events
            if e.kind in ("expire", "demote") and e.at_time < end
            and e.strategy_id.startswith(("s-flap-a", "s-rep-a"))
        }
        assert retired_a, "phase-A rules must retire once their noise stops"

    def test_online_recall_covers_batch_rules(self, drifting_metrics):
        """Online learning must find everything the batch pass finds —
        its extra promotions (the short-lived repeaters) are the
        quantified precision gap, not missed noise."""
        assert drifting_metrics["recall"] >= 0.9


class TestExactnessWithLearningDisabled:
    @pytest.mark.parametrize("backend,kwargs", [
        ("serial", {}),
        ("serial", {"n_planes": 2}),
        ("thread", {"n_planes": 2, "n_workers": 2}),
    ])
    def test_gateway_reconciles_exactly(self, drifting, backend, kwargs):
        trace, graph = drifting
        blocker = MitigationPipeline.derive_blocker(trace)
        gateway = AlertGateway(
            graph, blocker=blocker, backend=backend, flush_size=128,
            aggregation_window=WINDOW, correlation_window=WINDOW,
            retain_artifacts=False, **kwargs,
        )
        gateway.ingest_batch(trace.iter_ordered())
        stats = gateway.drain()
        report = MitigationPipeline(
            graph, aggregation_window=WINDOW, correlation_window=WINDOW,
        ).run(trace, blocker=blocker)
        assert stats.reconcile(report) == {}

    def test_streaming_qoa_matches_batch_at_drain(self, stationary):
        """QoA leg: identical counters, scores within the documented
        float tolerance."""
        trace, graph = stationary
        blocker = MitigationPipeline.derive_blocker(trace)
        gateway = AlertGateway(
            graph, blocker=blocker, flush_size=128, enable_qoa=True,
            aggregation_window=WINDOW, correlation_window=WINDOW,
            retain_artifacts=False,
        )
        alerts = list(trace.iter_ordered())
        gateway.ingest_batch(alerts)
        stats = gateway.drain()
        batch_qoa = measure_stream_qoa(alerts, blocker, aggregation_window=WINDOW)
        assert set(stats.qoa) == set(batch_qoa)
        for strategy_id, expected in batch_qoa.items():
            row = stats.qoa[strategy_id]
            assert row["seen"] == expected.seen
            assert row["blocked"] == expected.blocked
            assert row["transient"] == expected.transient
            assert row["groups"] == expected.groups
            for criterion in ("coverage", "actionability", "distinctness",
                              "overall"):
                assert abs(row[criterion] - getattr(expected, criterion)) <= (
                    QOA_DRAIN_TOLERANCE
                ), f"{strategy_id}.{criterion}"


# ----------------------------------------------------------------------
# online detection (A1-A3) vs the batch detectors
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def detection_runs(default_trace, topology):
    """The 60-day default trace through a detect-enabled gateway, plus
    the batch detectors over the finished trace."""
    gateway = AlertGateway(
        topology.graph, n_shards=4, n_planes=2, flush_size=256,
        detect_antipatterns=True, retain_artifacts=False,
    )
    gateway.ingest_many(default_trace.iter_ordered())
    stats = gateway.drain()
    online = gateway.detectors.findings()
    observed = {alert.strategy_id for alert in default_trace.alerts}
    batch = run_individual_detectors(default_trace, subjects=observed)
    batch["A3"] = DefinitionHygieneDetector().detect(default_trace)
    return online, batch, stats


def _by_subject(findings):
    return sorted(findings, key=lambda f: (f.subject, f.evidence))


class TestOnlineDetectionParity:
    """Online A1-A3 vs batch on the seeded default trace.

    Generated traces copy each strategy's title/description verbatim
    into its alerts, so the catalog the stream accumulates equals the
    strategy metadata the batch detectors read — parity is exact, not
    approximate.  (The drift workload synthesises per-alert titles, so
    it cannot serve here.)
    """

    def test_a1_verdicts_match_batch_exactly(self, detection_runs):
        online, batch, _stats = detection_runs
        assert online["A1"], "the default trace must exercise A1"
        assert _by_subject(online["A1"]) == _by_subject(batch["A1"])

    def test_a3_verdicts_match_batch_exactly(self, detection_runs):
        online, batch, _stats = detection_runs
        assert online["A3"], "the default trace must exercise A3"
        assert _by_subject(online["A3"]) == _by_subject(batch["A3"])

    def test_a2_verdicts_match_batch(self, detection_runs):
        """A2 parity is verdict-exact; the impact proxies agree to float
        summation order (the digests fold per-bucket duration sums where
        the batch path means a flat list)."""
        online, batch, _stats = detection_runs
        assert online["A2"], "the default trace must exercise A2"
        online_a2 = _by_subject(online["A2"])
        batch_a2 = _by_subject(batch["A2"])
        assert [f.subject for f in online_a2] == [f.subject for f in batch_a2]
        for ours, theirs in zip(online_a2, batch_a2):
            assert ours.details["proxy"] == pytest.approx(
                theirs.details["proxy"], abs=1e-9)
            assert ours.details["nearest"] == theirs.details["nearest"]

    def test_summary_surfaces_the_findings(self, detection_runs):
        online, _batch, stats = detection_runs
        assert stats.detection["findings"] == {
            pattern: len(items) for pattern, items in online.items()
        }
        assert stats.detection["strategies"] == 400


# ----------------------------------------------------------------------
# sketch-based R4 vs the batch OnlineLDA path
# ----------------------------------------------------------------------
def _novel_burst_alerts(start: float) -> list[Alert]:
    """Six alerts of one never-seen strategy with unique vocabulary."""
    return [
        Alert(
            alert_id=f"novel-{index:03d}",
            strategy_id="s-novel",
            strategy_name="s-novel-name",
            title="thermal runaway cascade in coolant manifold",
            description=("unprecedented pressure spike propagating "
                         "through relief valves"),
            severity=Severity.CRITICAL,
            service="svc-drift",
            microservice="m-drift-1",
            region="region-A",
            datacenter="region-A-dc1",
            channel="metric",
            occurred_at=start + index * 30.0,
        )
        for index in range(6)
    ]


@pytest.fixture(scope="module")
def novel_burst_workload():
    """A 24h drifting-noise trace with a novel-vocabulary burst at 20h —
    long enough past the 6-window warmup that both R4 paths judge it."""
    config = DriftConfig(drift=True, hours=24.0)
    trace = build_drifting_noise_trace(config)
    alerts = sorted(
        list(trace.iter_ordered()) + _novel_burst_alerts(20 * 3600.0),
        key=lambda alert: alert.occurred_at,
    )
    return alerts, drift_graph(config)


class TestSketchVsLdaAgreement:
    """The documented sketch-vs-LDA R4 bound on the drifting workload.

    The sketch is the *conservative* arm: its per-bucket surprise is
    bounded (no vocabulary growth term), so it flags a subset of what
    the LDA flags — strategy-level precision 1.0 — while both must
    agree on the injected genuinely-novel burst.  The LDA additionally
    flags the phase-B population swap (new strategy names grow its
    vocabulary); that asymmetry is the documented difference, not a
    defect.
    """

    @pytest.fixture(scope="class")
    def flags(self, novel_burst_workload):
        alerts, _graph = novel_burst_workload
        lda = EmergingAlertDetector().run(alerts)
        sketch = SketchEmergingDetector().run(alerts)
        return lda, sketch

    def test_both_paths_flag_the_novel_burst(self, flags):
        lda, sketch = flags
        assert "s-novel" in {e.alert.strategy_id for e in lda}
        assert "s-novel" in {f.strategy_id for f in sketch}

    def test_sketch_strategies_are_a_subset_of_lda_strategies(self, flags):
        """The agreement bound: sketch strategy-level precision vs the
        LDA is 1.0 (every sketch verdict is an LDA verdict)."""
        lda, sketch = flags
        lda_strategies = {e.alert.strategy_id for e in lda}
        sketch_strategies = {f.strategy_id for f in sketch}
        assert sketch_strategies
        assert sketch_strategies <= lda_strategies
        assert len(sketch) <= len(lda)

    def test_streaming_sketch_matches_batch_sketch_exactly(
            self, novel_burst_workload):
        """The gateway's incremental, digest-fed sketch and the one-shot
        batch wrapper share every line of verdict logic — their flag
        lists must be identical, not merely similar."""
        alerts, graph = novel_burst_workload
        gateway = AlertGateway(
            graph, blocker=AlertBlocker(), flush_size=256,
            aggregation_window=WINDOW, correlation_window=WINDOW,
            detect_antipatterns=True, retain_artifacts=False,
        )
        gateway.ingest_many(alerts)
        gateway.drain()
        assert gateway.detectors.sketch.flags == \
            SketchEmergingDetector().run(alerts)


# ----------------------------------------------------------------------
# adaptive per-(service, region) thresholds vs the static baseline
# ----------------------------------------------------------------------
def _blocked_ratio(trace, graph, learner_config) -> float:
    """Online blocked volume as a fraction of the batch-rule volume."""
    batch_blocker = MitigationPipeline.derive_blocker(trace)
    batch_report = MitigationPipeline(
        graph, aggregation_window=WINDOW, correlation_window=WINDOW,
    ).run(trace, blocker=batch_blocker)
    gateway, stats = _run_online(
        trace, graph, flush_interval=ADAPTIVE_FLUSH_INTERVAL,
        learner_config=learner_config,
    )
    return stats.blocked_alerts / batch_report.blocked_alerts


@pytest.fixture(scope="module")
def adaptive_metrics(stationary, drifting):
    static = LearnerConfig(rule_ttl=1800.0)
    adaptive = LearnerConfig(rule_ttl=1800.0, adaptive=True)
    metrics = {}
    for name, (trace, graph) in (("stationary", stationary),
                                 ("drifting", drifting)):
        metrics[name] = {
            "static_ratio": _blocked_ratio(trace, graph, static),
            "adaptive_ratio": _blocked_ratio(trace, graph, adaptive),
        }
    return metrics


class TestAdaptiveThresholds:
    def test_adaptive_beats_static_on_stationary_noise(self, adaptive_metrics):
        """Same cadence, same TTL — per-(service, region) baselines are
        the only variable, and they must block strictly more volume."""
        row = adaptive_metrics["stationary"]
        assert row["adaptive_ratio"] > row["static_ratio"]

    def test_adaptive_clears_the_recorded_static_baseline(
            self, adaptive_metrics):
        """The PR 10 acceptance bound: strictly above the 0.46 ratio
        recorded with static thresholds."""
        assert (adaptive_metrics["stationary"]["adaptive_ratio"]
                > STATIC_BASELINE_RATIO)

    def test_adaptive_never_regresses_on_drift(self, adaptive_metrics):
        row = adaptive_metrics["drifting"]
        assert row["adaptive_ratio"] >= row["static_ratio"]


def test_write_divergence_report(stationary_metrics, drifting_metrics,
                                 adaptive_metrics, detection_runs):
    """Persist the harness's numbers (the CI artifact)."""
    online, _batch, stats = detection_runs
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps({
        "stationary": stationary_metrics,
        "drifting": drifting_metrics,
        "adaptive": adaptive_metrics,
        "detection": {
            "findings": {p: len(items) for p, items in online.items()},
            "strategies": stats.detection["strategies"],
            "emerging": stats.detection["emerging"],
        },
        "bounds": {
            "stationary_precision_floor": PRECISION_FLOOR_STATIONARY,
            "stationary_recall_floor": RECALL_FLOOR_STATIONARY,
            "qoa_drain_tolerance": QOA_DRAIN_TOLERANCE,
            "static_baseline_ratio": STATIC_BASELINE_RATIO,
        },
    }, indent=2, sort_keys=True) + "\n")
    assert REPORT_PATH.exists()
