"""The batch-vs-stream differential harness (``pytest -m differential``).

ROADMAP asked for online R1 rule learning that "quantifies the
divergence vs batch-derived rules"; this harness turns that into
CI-enforced numbers on two deterministic workloads
(:mod:`repro.workload.drift`):

* **stationary noise** — the noisy-strategy population never changes, so
  online learning and a batch pass over the finished trace must agree:
  the learned rule set is held to **precision >= 0.9** (and recall
  >= 0.9) against :meth:`MitigationPipeline.derive_blocker`'s set.
* **drifting noise** — the population swaps at half-time.  Here the two
  *legitimately* diverge (the batch pass underweights short-lived
  repeaters; the online learner promotes them as they appear and retires
  phase-A rules behind them).  The divergence — rule precision/recall,
  blocked-volume delta, per-strategy QoA drift — is computed, bounded
  loosely, and written to ``benchmarks/results/differential_report.json``
  so CI can archive it as a reviewable artifact.

Two exactness legs ride along: with learning *disabled* the gateway must
still reconcile bit-for-bit with the batch pipeline on these traces, and
the streaming QoA scores at drain must equal the batch-computed ratios
to within :data:`repro.streaming.qoa.QOA_DRAIN_TOLERANCE` (documented:
pure float-division noise; the underlying counters are identical).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.streaming import (
    AlertGateway,
    LearnerConfig,
    measure_stream_qoa,
    rule_set_divergence,
)
from repro.streaming.qoa import QOA_DRAIN_TOLERANCE
from repro.workload import DriftConfig, build_drifting_noise_trace, drift_graph

pytestmark = pytest.mark.differential

REPORT_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "results" / "differential_report.json"
)

WINDOW = 900.0
#: Short TTL so drifting-phase rules retire while the trace still runs.
LEARNER = LearnerConfig(rule_ttl=1800.0)

#: Differential-harness acceptance bounds (the documented numbers).
PRECISION_FLOOR_STATIONARY = 0.9
RECALL_FLOOR_STATIONARY = 0.9


def _run_online(trace, graph, **kwargs):
    """One learning gateway run from an empty rule table."""
    gateway = AlertGateway(
        graph, blocker=AlertBlocker(), flush_size=256,
        aggregation_window=WINDOW, correlation_window=WINDOW,
        learn_rules=True, enable_qoa=True, learner_config=LEARNER,
        retain_artifacts=False, **kwargs,
    )
    gateway.ingest_batch(trace.iter_ordered())
    stats = gateway.drain()
    return gateway, stats


def _divergence_metrics(trace, graph) -> dict:
    """Replay one trace both ways and quantify every divergence axis."""
    batch_blocker = MitigationPipeline.derive_blocker(trace)
    batch_set = {rule.strategy_id for rule in batch_blocker.rules}
    batch_report = MitigationPipeline(
        graph, aggregation_window=WINDOW, correlation_window=WINDOW,
    ).run(trace, blocker=batch_blocker)

    gateway, stats = _run_online(trace, graph)
    metrics = rule_set_divergence(gateway.learner.ever_promoted, batch_set)
    metrics["online_blocked"] = stats.blocked_alerts
    metrics["batch_blocked"] = batch_report.blocked_alerts
    metrics["blocked_volume_delta"] = (
        stats.blocked_alerts - batch_report.blocked_alerts
    )
    metrics["blocked_volume_ratio"] = (
        stats.blocked_alerts / batch_report.blocked_alerts
        if batch_report.blocked_alerts else 1.0
    )
    metrics["rule_events"] = len(gateway.learner.events)
    metrics["rules_promoted"] = stats.rules_promoted
    metrics["rules_demoted"] = stats.rules_demoted
    metrics["rules_expired"] = stats.rules_expired

    # QoA drift: online scores (learned rules blocking) vs the batch-rule
    # equivalents on the finished trace.
    batch_qoa = measure_stream_qoa(
        list(trace.iter_ordered()), batch_blocker, aggregation_window=WINDOW,
    )
    drifts = [
        abs(stats.qoa[strategy_id]["overall"] - batch_qoa[strategy_id].overall)
        for strategy_id in stats.qoa
        if strategy_id in batch_qoa
    ]
    metrics["qoa_max_drift"] = max(drifts) if drifts else 0.0
    metrics["qoa_mean_drift"] = sum(drifts) / len(drifts) if drifts else 0.0
    return metrics


@pytest.fixture(scope="module")
def stationary():
    config = DriftConfig(drift=False)
    return build_drifting_noise_trace(config), drift_graph(config)


@pytest.fixture(scope="module")
def drifting():
    config = DriftConfig(drift=True)
    return build_drifting_noise_trace(config), drift_graph(config)


@pytest.fixture(scope="module")
def stationary_metrics(stationary):
    trace, graph = stationary
    return _divergence_metrics(trace, graph)


@pytest.fixture(scope="module")
def drifting_metrics(drifting):
    trace, graph = drifting
    return _divergence_metrics(trace, graph)


class TestStationaryConvergence:
    def test_online_rules_reach_precision_floor(self, stationary_metrics):
        """The ISSUE-4 acceptance bound: >= 0.9 precision vs batch rules."""
        assert stationary_metrics["rules_promoted"] > 0
        assert stationary_metrics["precision"] >= PRECISION_FLOOR_STATIONARY, (
            f"online-learned rules reached precision "
            f"{stationary_metrics['precision']:.2f} vs batch-derived rules"
        )

    def test_online_rules_reach_recall_floor(self, stationary_metrics):
        assert stationary_metrics["recall"] >= RECALL_FLOOR_STATIONARY, (
            f"online-learned rules reached recall "
            f"{stationary_metrics['recall']:.2f} vs batch-derived rules"
        )

    def test_online_blocking_engages(self, stationary_metrics):
        """Learned rules must actually block volume — but never more than
        batch rules, which block from t=0 while the learner must first
        accumulate evidence."""
        assert 0 < stationary_metrics["online_blocked"]
        assert (
            stationary_metrics["online_blocked"]
            <= stationary_metrics["batch_blocked"]
        )


class TestDriftingDivergence:
    def test_divergence_metrics_are_quantified(self, drifting_metrics):
        """Every divergence axis is a finite, reportable number."""
        for key in ("precision", "recall", "blocked_volume_delta",
                    "blocked_volume_ratio", "qoa_max_drift"):
            assert key in drifting_metrics
        assert 0.0 <= drifting_metrics["precision"] <= 1.0
        assert 0.0 <= drifting_metrics["recall"] <= 1.0
        assert 0.0 < drifting_metrics["blocked_volume_ratio"] <= 1.0

    def test_online_learning_adapts_to_the_drifted_population(self, drifting):
        """The point of online learning: phase-B noise (invisible to any
        rule set frozen at deploy time) is promoted once it appears, and
        phase-A rules retire (expire or demote) before the stream ends."""
        trace, graph = drifting
        gateway, _stats = _run_online(trace, graph)
        events = gateway.learner.events
        promoted = {e.strategy_id for e in events if e.kind == "promote"}
        assert any(s.startswith(("s-flap-b", "s-rep-b")) for s in promoted)
        end = max(a.occurred_at for a in trace.alerts)
        retired_a = {
            e.strategy_id for e in events
            if e.kind in ("expire", "demote") and e.at_time < end
            and e.strategy_id.startswith(("s-flap-a", "s-rep-a"))
        }
        assert retired_a, "phase-A rules must retire once their noise stops"

    def test_online_recall_covers_batch_rules(self, drifting_metrics):
        """Online learning must find everything the batch pass finds —
        its extra promotions (the short-lived repeaters) are the
        quantified precision gap, not missed noise."""
        assert drifting_metrics["recall"] >= 0.9


class TestExactnessWithLearningDisabled:
    @pytest.mark.parametrize("backend,kwargs", [
        ("serial", {}),
        ("serial", {"n_planes": 2}),
        ("thread", {"n_planes": 2, "n_workers": 2}),
    ])
    def test_gateway_reconciles_exactly(self, drifting, backend, kwargs):
        trace, graph = drifting
        blocker = MitigationPipeline.derive_blocker(trace)
        gateway = AlertGateway(
            graph, blocker=blocker, backend=backend, flush_size=128,
            aggregation_window=WINDOW, correlation_window=WINDOW,
            retain_artifacts=False, **kwargs,
        )
        gateway.ingest_batch(trace.iter_ordered())
        stats = gateway.drain()
        report = MitigationPipeline(
            graph, aggregation_window=WINDOW, correlation_window=WINDOW,
        ).run(trace, blocker=blocker)
        assert stats.reconcile(report) == {}

    def test_streaming_qoa_matches_batch_at_drain(self, stationary):
        """QoA leg: identical counters, scores within the documented
        float tolerance."""
        trace, graph = stationary
        blocker = MitigationPipeline.derive_blocker(trace)
        gateway = AlertGateway(
            graph, blocker=blocker, flush_size=128, enable_qoa=True,
            aggregation_window=WINDOW, correlation_window=WINDOW,
            retain_artifacts=False,
        )
        alerts = list(trace.iter_ordered())
        gateway.ingest_batch(alerts)
        stats = gateway.drain()
        batch_qoa = measure_stream_qoa(alerts, blocker, aggregation_window=WINDOW)
        assert set(stats.qoa) == set(batch_qoa)
        for strategy_id, expected in batch_qoa.items():
            row = stats.qoa[strategy_id]
            assert row["seen"] == expected.seen
            assert row["blocked"] == expected.blocked
            assert row["transient"] == expected.transient
            assert row["groups"] == expected.groups
            for criterion in ("coverage", "actionability", "distinctness",
                              "overall"):
                assert abs(row[criterion] - getattr(expected, criterion)) <= (
                    QOA_DRAIN_TOLERANCE
                ), f"{strategy_id}.{criterion}"


def test_write_divergence_report(stationary_metrics, drifting_metrics):
    """Persist the harness's numbers (the CI artifact)."""
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps({
        "stationary": stationary_metrics,
        "drifting": drifting_metrics,
        "bounds": {
            "stationary_precision_floor": PRECISION_FLOOR_STATIONARY,
            "stationary_recall_floor": RECALL_FLOOR_STATIONARY,
            "qoa_drain_tolerance": QOA_DRAIN_TOLERANCE,
        },
    }, indent=2, sort_keys=True) + "\n")
    assert REPORT_PATH.exists()
