"""Worker-fleet fault tolerance: death detection, recovery, live resize.

The tentpole promise, in two halves:

* recovery **off** — killing a plane worker mid-stream surfaces a typed
  :class:`WorkerDiedError` naming the worker, its exit code, and the
  planes it owned, within the bounded poll — never an indefinite hang in
  ``recv()``;
* recovery **on** — the supervisor respawns the dead worker from its
  last full-plane snapshot, rewinds its rule table, replays the journal
  tail, re-sends the in-flight batch exactly once, and the drained
  accounting lands **bit-identical** to a run nothing was killed in.

The deterministic layer here runs in tier-1; the ``scale_chaos``-marked
kill matrix (transport × plane counts × which worker dies) runs in the
dedicated chaos job alongside the plane scale-out harness.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.common.errors import ValidationError
from repro.streaming import (
    AlertGateway,
    CircuitBreaker,
    PlaneRouter,
    ProcessPlaneBackend,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.streaming import lanes as lanes_module
from repro.streaming.lanes import LaneIngress
from repro.streaming.stats import GatewayStats

from tests.streaming.conftest import make_alert
from tests.streaming.test_golden_trace import golden_graph
from tests.streaming.test_scale import (
    _aggregate_fingerprint,
    _blocker,
    _cluster_fingerprint,
    _counts,
    _storm_trace,
)


def _gateway(**overrides) -> AlertGateway:
    kwargs = dict(
        blocker=_blocker(),
        backend="process",
        n_planes=4,
        n_shards=2,
        n_workers=2,
        flush_size=32,
        retain_artifacts=True,
        worker_recovery=True,
        worker_checkpoint_every=4,
    )
    kwargs.update(overrides)
    return AlertGateway(golden_graph(), **kwargs)


def _baseline(alerts, **overrides):
    """Drain an unkilled run: the fingerprints every chaos run must hit."""
    gateway = _gateway(**overrides)
    gateway.ingest_batch(alerts)
    stats = gateway.drain()
    return (
        _counts(stats),
        _aggregate_fingerprint(gateway),
        _cluster_fingerprint(gateway),
    )


def _worker_pids(gateway) -> list[int]:
    """The live fleet's pids (after a barrier so the fleet exists)."""
    gateway.snapshot()
    return [worker.pid for worker in gateway._backend._workers]


# ----------------------------------------------------------------------
# circuit breaker (pure unit layer, no processes)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_at_failure_threshold(self):
        breaker = CircuitBreaker(threshold=3, probation=2)
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.is_open and breaker.allow_ring
        breaker.record_failure()
        assert breaker.is_open and not breaker.allow_ring
        assert breaker.trips == 1

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open

    def test_death_opens_immediately(self):
        breaker = CircuitBreaker(threshold=5)
        breaker.record_death()
        assert breaker.is_open and not breaker.allow_ring

    def test_probation_closes_after_consecutive_successes(self):
        breaker = CircuitBreaker(threshold=1, probation=3)
        breaker.record_death()
        breaker.record_success()
        breaker.record_success()
        assert breaker.is_open  # probation not served yet
        breaker.record_success()
        assert not breaker.is_open and breaker.allow_ring
        # A second trip counts separately and restarts probation.
        breaker.record_failure()
        assert breaker.is_open and breaker.trips == 2

    def test_failure_during_probation_restarts_it(self):
        breaker = CircuitBreaker(threshold=1, probation=2)
        breaker.record_death()
        breaker.record_success()
        breaker.record_failure()  # re-trips: probation progress is gone
        breaker.record_success()
        assert breaker.is_open
        breaker.record_success()
        assert not breaker.is_open

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probation=0)


# ----------------------------------------------------------------------
# dead-worker detection (the bounded-recv bugfix, recovery off)
# ----------------------------------------------------------------------
class TestDeadWorkerDetection:
    def test_kill_raises_typed_error_not_hang(self):
        alerts = _storm_trace()
        gateway = _gateway(worker_recovery=False)
        gateway.ingest_batch(alerts[:200])
        pids = _worker_pids(gateway)
        os.kill(pids[0], signal.SIGKILL)
        started = time.monotonic()
        with pytest.raises(WorkerDiedError) as excinfo:
            gateway.ingest_batch(alerts[200:])
            gateway.drain()
        # Detection is poll-slice fast, nowhere near worker_timeout.
        assert time.monotonic() - started < 10.0
        error = excinfo.value
        assert error.worker_id == 0
        assert error.exitcode == -signal.SIGKILL
        assert error.planes == (0, 2)  # plane % n_workers == 0
        assert "worker 0" in str(error)
        assert f"signal {signal.SIGKILL}" in str(error)
        assert "worker_recovery" in str(error)
        gateway.close()

    def test_wedged_worker_raises_timeout_and_is_not_respawned(self):
        alerts = _storm_trace()
        gateway = _gateway(worker_timeout=0.5)
        gateway.ingest_batch(alerts[:100])
        pids = _worker_pids(gateway)
        os.kill(pids[1], signal.SIGSTOP)
        try:
            with pytest.raises(WorkerTimeoutError) as excinfo:
                gateway.ingest_batch(alerts[100:])
                gateway.drain()
            assert excinfo.value.worker_id == 1
            assert excinfo.value.timeout == 0.5
            # A wedge is never auto-recovered: the live process still
            # owns its planes (and possibly a ring slot mid-consume).
            assert gateway._backend.worker_recoveries == 0
        finally:
            os.kill(pids[1], signal.SIGCONT)
            gateway.close()


# ----------------------------------------------------------------------
# snapshot + journal recovery (the tentpole, deterministic layer)
# ----------------------------------------------------------------------
class TestWorkerRecovery:
    @pytest.mark.parametrize("lane_transport", ["ring", "pipe"])
    def test_kill_mid_stream_drains_bit_identical(self, lane_transport):
        alerts = _storm_trace()
        base = _baseline(alerts, lane_transport=lane_transport)
        gateway = _gateway(lane_transport=lane_transport)
        gateway.ingest_batch(alerts[:200])
        pids = _worker_pids(gateway)
        os.kill(pids[1], signal.SIGKILL)
        gateway.ingest_batch(alerts[200:])
        stats = gateway.drain()
        assert (_counts(stats), _aggregate_fingerprint(gateway),
                _cluster_fingerprint(gateway)) == base
        assert stats.worker_deaths == 1
        assert stats.worker_recoveries == 1
        assert "worker deaths" in stats.render()
        assert "(1 recovered)" in stats.render()

    def test_kill_under_ingress_lanes_recovers(self):
        alerts = _storm_trace()
        base = _baseline(alerts)
        gateway = _gateway(ingress_lanes=2)
        gateway.ingest_batch(alerts[:200])
        pids = _worker_pids(gateway)
        os.kill(pids[0], signal.SIGKILL)
        gateway.ingest_batch(alerts[200:])
        stats = gateway.drain()
        assert (_counts(stats), _aggregate_fingerprint(gateway),
                _cluster_fingerprint(gateway)) == base
        assert stats.worker_deaths == 1
        assert stats.worker_recoveries == 1

    def test_kill_before_any_snapshot_replays_from_empty(self):
        # checkpoint cadence far beyond the stream: the journal carries
        # every batch and the snapshot stays the empty spawn baseline.
        alerts = _storm_trace()
        base = _baseline(alerts)
        gateway = _gateway(worker_checkpoint_every=100_000)
        gateway.ingest_batch(alerts[:64])
        pids = _worker_pids(gateway)
        os.kill(pids[0], signal.SIGKILL)
        gateway.ingest_batch(alerts[64:])
        stats = gateway.drain()
        assert (_counts(stats), _aggregate_fingerprint(gateway),
                _cluster_fingerprint(gateway)) == base
        assert stats.worker_recoveries == 1

    def test_repeated_kills_of_the_same_worker(self):
        alerts = _storm_trace()
        base = _baseline(alerts)
        gateway = _gateway()
        cuts = (120, 240, 360)
        cursor = 0
        for cut in cuts:
            gateway.ingest_batch(alerts[cursor:cut])
            cursor = cut
            os.kill(_worker_pids(gateway)[0], signal.SIGKILL)
        gateway.ingest_batch(alerts[cursor:])
        stats = gateway.drain()
        assert (_counts(stats), _aggregate_fingerprint(gateway),
                _cluster_fingerprint(gateway)) == base
        assert stats.worker_deaths == len(cuts)
        assert stats.worker_recoveries == len(cuts)

    def test_recovery_survives_rule_changes_since_snapshot(self):
        # A rule applied *after* the worker's snapshot must re-apply at
        # its journaled stream position during replay, not at fork time:
        # the revived worker's table is rewound to the snapshot capture
        # first.  Learning mode exercises exactly that path.
        alerts = _storm_trace()

        from repro.core.mitigation.blocking import AlertBlocker
        from repro.streaming import LearnerConfig

        def run(kill: bool):
            gateway = _gateway(
                blocker=AlertBlocker(), learn_rules=True, enable_qoa=True,
                worker_checkpoint_every=3,
                learner_config=LearnerConfig(
                    window_seconds=1800.0, min_alerts=10, repeat_count=15,
                    rule_ttl=1800.0,
                ),
            )
            gateway.ingest_batch(alerts[:240])
            # Barrier in BOTH runs: with learning on, a flush is a
            # judgment round, so the kill run's pid read must not add a
            # round the clean run lacks.
            pids = _worker_pids(gateway)
            if kill:
                os.kill(pids[1], signal.SIGKILL)
            gateway.ingest_batch(alerts[240:])
            stats = gateway.drain()
            timeline = [
                (event.kind, event.strategy_id, event.at_input)
                for event in gateway.learner.events
            ]
            return _counts(stats), timeline, stats.qoa

        killed, clean = run(kill=True), run(kill=False)
        assert killed[1], "learning never fired; the scenario proves nothing"
        assert killed == clean

    def test_fleet_counters_survive_gateway_checkpoint_restore(self):
        alerts = _storm_trace()
        gateway = _gateway()
        gateway.ingest_batch(alerts[:200])
        os.kill(_worker_pids(gateway)[0], signal.SIGKILL)
        gateway.ingest_batch(alerts[200:240])
        gateway.snapshot()
        assert gateway.stats.worker_deaths == 1
        state = gateway.checkpoint_state()
        gateway.close()

        restored = _gateway()
        restored.adopt_checkpoint(state)
        restored.ingest_batch(alerts[240:])
        stats = restored.drain()
        # The restored fleet is fresh (its own counters start at zero),
        # but the checkpointed history folds in as a baseline.
        assert stats.worker_deaths == 1
        assert stats.worker_recoveries == 1


# ----------------------------------------------------------------------
# live worker-pool resize
# ----------------------------------------------------------------------
class TestResizeWorkers:
    @pytest.mark.parametrize("path", [(2, 4), (4, 1), (1, 3)])
    def test_resize_round_trip_is_invisible(self, path):
        alerts = _storm_trace()
        base = _baseline(alerts)
        gateway = _gateway(n_workers=path[0])
        gateway.ingest_batch(alerts[:160])
        gateway.resize_workers(path[1])
        assert gateway.stats.n_workers == min(path[1], 4)
        gateway.ingest_batch(alerts[160:320])
        gateway.resize_workers(path[0])
        gateway.ingest_batch(alerts[320:])
        stats = gateway.drain()
        assert (_counts(stats), _aggregate_fingerprint(gateway),
                _cluster_fingerprint(gateway)) == base

    def test_resize_then_kill_still_recovers(self):
        # The resize re-baselines every worker's snapshot; a death after
        # it must revive from the *new* mapping, not the stale one.
        alerts = _storm_trace()
        base = _baseline(alerts)
        gateway = _gateway(n_workers=2)
        gateway.ingest_batch(alerts[:160])
        gateway.resize_workers(4)
        gateway.ingest_batch(alerts[160:280])
        os.kill(_worker_pids(gateway)[3], signal.SIGKILL)
        gateway.ingest_batch(alerts[280:])
        stats = gateway.drain()
        assert (_counts(stats), _aggregate_fingerprint(gateway),
                _cluster_fingerprint(gateway)) == base
        assert stats.worker_recoveries == 1

    def test_rebalance_can_carry_a_worker_resize(self):
        alerts = _storm_trace()
        gateway = _gateway()
        gateway.ingest_batch(alerts[:160])
        gateway.rebalance(4, n_workers=4)
        assert gateway.stats.n_workers == 4
        assert gateway.stats.n_shards == 4
        gateway.ingest_batch(alerts[160:])
        gateway.drain()

    def test_serial_backend_has_no_pool_to_resize(self):
        gateway = AlertGateway(golden_graph(), blocker=_blocker())
        with pytest.raises(ValidationError, match="no worker pool"):
            gateway.resize_workers(4)
        gateway.close()

    def test_resize_rejects_nonpositive(self):
        gateway = _gateway()
        with pytest.raises(ValidationError):
            gateway.resize_workers(0)
        gateway.close()


# ----------------------------------------------------------------------
# shutdown hygiene: the zombie fix + loud lane close
# ----------------------------------------------------------------------
def _ignore_sigterm_forever():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


class TestCloseHygiene:
    def test_join_worker_escalates_terminate_then_kill(self):
        import multiprocessing

        worker = multiprocessing.get_context().Process(
            target=_ignore_sigterm_forever, daemon=True,
        )
        worker.start()
        ProcessPlaneBackend._join_worker(worker, grace=0.2, term_grace=0.2)
        # Escalation ends in SIGKILL + join: dead AND reaped (exitcode
        # read back), never a zombie left for the kernel.
        assert not worker.is_alive()
        assert worker.exitcode == -signal.SIGKILL

    def test_close_reaps_a_killed_worker(self):
        alerts = _storm_trace()
        gateway = _gateway(worker_recovery=False)
        gateway.ingest_batch(alerts[:100])
        gateway.snapshot()
        backend = gateway._backend
        workers = list(backend._workers)
        os.kill(workers[0].pid, signal.SIGKILL)
        gateway.close()
        for worker in workers:
            assert not worker.is_alive()
            assert worker.exitcode is not None  # joined, not zombied

    def test_close_is_idempotent(self):
        gateway = _gateway()
        gateway.ingest_batch(_storm_trace()[:64])
        gateway.close()
        gateway.close()


class _BlockingBackend:
    """A lane backend whose feed wedges until released (stuck-lane stand-in)."""

    def __init__(self):
        self.release = threading.Event()

    def lane_feed(self, plane, batch, in_warmup, watermark):
        self.release.wait()
        from repro.streaming.plane import PlaneFlushResult
        return PlaneFlushResult(
            plane_id=plane, processed=len(batch), blocked=0, aggregates=0,
            clusters=0, storm_episodes=0, emerging_flags=0, open_sessions=0,
            active_components=0, retained_representatives=0,
        )


class TestLaneLoudClose:
    def test_close_names_stuck_lanes(self, monkeypatch):
        monkeypatch.setattr(lanes_module, "LANE_JOIN_TIMEOUT", 0.1)
        backend = _BlockingBackend()
        ingress = LaneIngress(
            backend, PlaneRouter(1), n_planes=1, n_lanes=1,
            flush_size=1, flush_interval=None, warmup_limit=0,
        )
        ingress.ingest([make_alert(0.0)], GatewayStats())
        try:
            with pytest.raises(RuntimeError, match="ingress-lane-0"):
                ingress.close()
        finally:
            backend.release.set()

    def test_close_joins_healthy_lanes_quietly(self):
        backend = _BlockingBackend()
        backend.release.set()
        ingress = LaneIngress(
            backend, PlaneRouter(1), n_planes=1, n_lanes=1,
            flush_size=1, flush_interval=None, warmup_limit=0,
        )
        ingress.ingest([make_alert(0.0)], GatewayStats())
        ingress.barrier(0.0)
        ingress.close()
        ingress.close()  # idempotent


# ----------------------------------------------------------------------
# chaos kill matrix (dedicated CI job, alongside the scale-out harness)
# ----------------------------------------------------------------------
@pytest.mark.scale_chaos
@pytest.mark.parametrize("lane_transport", ["ring", "pipe"])
@pytest.mark.parametrize("n_planes,n_workers", [(2, 2), (5, 3)])
class TestWorkerKillMatrix:
    def test_any_single_worker_kill_is_invisible(
        self, lane_transport, n_planes, n_workers,
    ):
        alerts = _storm_trace()
        base = _baseline(
            alerts, n_planes=n_planes, n_workers=n_workers,
            lane_transport=lane_transport, ingress_lanes=2,
        )
        for victim in range(min(n_workers, n_planes)):
            gateway = _gateway(
                n_planes=n_planes, n_workers=n_workers,
                lane_transport=lane_transport, ingress_lanes=2,
            )
            gateway.ingest_batch(alerts[:200])
            os.kill(_worker_pids(gateway)[victim], signal.SIGKILL)
            gateway.ingest_batch(alerts[200:])
            backend = gateway._backend
            if lane_transport == "ring":
                # The dead worker's rings were retired at revive; the
                # post-kill stream re-created segments the respawned
                # worker attached cleanly (zero-copy traffic resumed).
                assert any(
                    worker_id == victim for _, worker_id in backend._rings
                )
            stats = gateway.drain()
            assert (_counts(stats), _aggregate_fingerprint(gateway),
                    _cluster_fingerprint(gateway)) == base, (
                f"victim={victim}"
            )
            assert stats.worker_deaths == 1
            assert stats.worker_recoveries == 1
            assert backend.breaker_trips == 1
