"""Region-partitioned execution planes: routing, plane mechanics, R4 split.

The structural guarantees of the plane refactor:

* the two-level router is deterministic and sticky (a region's plane
  never changes);
* a plane's accounting equals a batch pipeline run over just its
  regions' alerts — the partition really is region-exact;
* the batched / plane-partitioned storm detector reproduces the shared
  per-event instance bit for bit, including the stream-global warmup;
* R3/R4 state lives on the planes, not the gateway — the gateway loop
  only routes and merges.
"""

import pytest

from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import (
    AlertGateway,
    OnlineStormDetector,
    PlaneConfig,
    PlaneRouter,
    RegionPlane,
)
from tests.streaming.conftest import make_alert


class TestPlaneRouter:
    def test_round_robin_first_seen(self):
        router = PlaneRouter(3)
        assert [router.plane_of(r) for r in ("rA", "rB", "rC", "rD")] == [0, 1, 2, 0]

    def test_assignment_is_sticky(self):
        router = PlaneRouter(2)
        first = router.plane_of("rX")
        for _ in range(5):
            router.plane_of(f"r{_}")
        assert router.plane_of("rX") == first

    def test_single_plane_owns_everything(self):
        router = PlaneRouter(1)
        assert {router.plane_of(f"r{i}") for i in range(10)} == {0}

    def test_regions_of_inverts_assignments(self):
        router = PlaneRouter(2)
        for region in ("rA", "rB", "rC"):
            router.plane_of(region)
        assert router.regions_of(0) == ("rA", "rC")
        assert router.regions_of(1) == ("rB",)
        assert router.assignments == {"rA": 0, "rB": 1, "rC": 0}


class TestRegionPlane:
    def _config(self, graph, **overrides) -> PlaneConfig:
        defaults = dict(
            graph=graph, blocker=AlertBlocker(), rulebook=None, n_shards=2,
            aggregation_window=900.0, correlation_window=900.0,
            correlation_max_hops=4, enable_storm_detection=True,
            retain_artifacts=True, finalize_every=256,
        )
        defaults.update(overrides)
        return PlaneConfig(**defaults)

    def test_process_batch_counts(self, small_topology):
        plane = RegionPlane(0, self._config(small_topology.graph))
        alerts = [make_alert(float(i) * 10.0, strategy_id=f"s-{i % 3}")
                  for i in range(30)]
        result = plane.process_batch(alerts, 0, alerts[-1].occurred_at)
        assert result.plane_id == 0
        assert result.processed == 30
        assert result.open_sessions == 3
        drained = plane.drain(alerts[-1].occurred_at)
        assert drained.aggregates == 3
        assert sum(a.count for a in drained.retained_aggregates) == 30

    def test_rebalance_preserves_counters_and_sessions(self, small_topology):
        plane = RegionPlane(0, self._config(small_topology.graph))
        alerts = [make_alert(100.0 + i, strategy_id=f"s-{i}") for i in range(6)]
        plane.process_batch(alerts, 0, alerts[-1].occurred_at)
        assert plane.open_sessions == 6
        plane.rebalance(5)
        assert plane.n_shards == 5
        assert plane.open_sessions == 6       # sessions migrated, none lost
        assert plane.processed == 6           # lifetime counters survive
        drained = plane.drain(200.0)
        assert drained.aggregates == 6

    def test_warmup_prefix_suppresses_emerging_flags(self, small_topology):
        config = self._config(small_topology.graph)
        # A burst dense enough to sit in the emerging band (25-100/h).
        alerts = [make_alert(i * 80.0, strategy_id=f"s-{i}") for i in range(40)]
        flagged = RegionPlane(0, config)
        all_post_warmup = flagged.process_batch(alerts, 0, alerts[-1].occurred_at)
        muted = RegionPlane(1, config)
        all_in_warmup = muted.process_batch(
            alerts, len(alerts), alerts[-1].occurred_at
        )
        assert all_post_warmup.emerging_flags > 0
        assert all_in_warmup.emerging_flags == 0


class TestDetectorPartitioning:
    def _stream(self):
        alerts = []
        time = 0.0
        for index in range(3000):
            time += (2.0, 5.0, 2.0, 400.0)[index % 4]
            alerts.append(make_alert(
                time,
                strategy_id=f"s-{index % 17}",
                region=("rA", "rB", "rC")[index % 3],
            ))
        return alerts

    def test_batched_equals_per_event(self):
        alerts = self._stream()
        per_event = OnlineStormDetector()
        for alert in alerts:
            per_event.ingest(alert)
        for chunk in (1, 7, 256, len(alerts)):
            batched = OnlineStormDetector()
            for start in range(0, len(alerts), chunk):
                batched.ingest_batch(alerts[start:start + chunk])
            assert batched.episode_count == per_event.episode_count, chunk
            assert batched.emerging_count == per_event.emerging_count, chunk

    def test_region_partitioned_with_warmup_prefix_is_exact(self):
        alerts = self._stream()
        shared = OnlineStormDetector()
        for alert in alerts:
            shared.ingest(alert)
        router = PlaneRouter(2)
        detectors = {0: OnlineStormDetector(), 1: OnlineStormDetector()}
        buffers: dict[int, list] = {0: [], 1: []}
        warmup = {0: 0, 1: 0}
        for position, alert in enumerate(alerts, start=1):
            plane = router.plane_of(alert.region)
            buffers[plane].append(alert)
            if position <= 50:  # the gateway-global warmup prefix
                warmup[plane] += 1
            if position % 97 == 0:
                for plane_id, batch in buffers.items():
                    if batch:
                        detectors[plane_id].ingest_batch(batch, warmup[plane_id])
                buffers = {0: [], 1: []}
                warmup = {0: 0, 1: 0}
        for plane_id, batch in buffers.items():
            if batch:
                detectors[plane_id].ingest_batch(batch, warmup[plane_id])
        assert sum(d.episode_count for d in detectors.values()) == shared.episode_count
        assert sum(d.emerging_count for d in detectors.values()) == shared.emerging_count


class TestGatewayPlaneSemantics:
    def test_r3_r4_state_lives_on_planes_not_the_gateway(self, small_topology):
        """The refactor's point: the gateway loop hosts no reaction state."""
        gateway = AlertGateway(small_topology.graph, n_planes=2)
        assert not hasattr(gateway, "_correlator")
        assert not hasattr(gateway, "_storm_detector")
        for plane in gateway._backend.planes:
            assert plane._correlator is not None
            assert plane._detector is not None
        gateway.drain()

    def test_regions_never_split_across_planes(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_planes=3)
        for index in range(60):
            gateway.ingest(make_alert(
                float(index), strategy_id=f"s-{index % 5}",
                region=("rA", "rB", "rC", "rD", "rE")[index % 5],
            ))
        gateway.drain()
        assignments = gateway.plane_assignments
        assert len(assignments) == 5
        for plane in gateway._backend.planes:
            plane_regions = {
                session.region
                for processor in plane.processors
                for session in processor.export_sessions()
            }
            for region in plane_regions:
                assert assignments[region] == plane.plane_id

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_per_plane_accounting_matches_regional_batch_runs(
        self, storm_trace, backend
    ):
        """Each plane's counters == batch pipeline over its regions only."""
        from repro.workload import build_multi_region_storm
        from repro.workload.storms import StormConfig

        _, topology = storm_trace
        trace = build_multi_region_storm(
            StormConfig(seed=42), topology, regions=("region-A", "region-B"),
        )
        rulebook = rulebook_from_ground_truth(trace, coverage=0.6, seed=trace.seed)
        blocker = MitigationPipeline.derive_blocker(trace)
        gateway = AlertGateway(
            topology.graph, blocker=blocker, rulebook=rulebook,
            n_planes=2, n_shards=4, backend=backend, n_workers=2,
            flush_size=256, retain_artifacts=False,
        )
        gateway.ingest_batch(trace.iter_ordered())
        stats = gateway.drain()
        assignments = gateway.plane_assignments
        assert len(set(assignments.values())) == 2
        for plane_id in sorted(set(assignments.values())):
            regions = frozenset(
                region for region, plane in assignments.items()
                if plane == plane_id
            )
            regional = trace.filter(lambda a: a.region in regions,
                                    label=f"plane-{plane_id}")
            report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
                regional, blocker=blocker,
            )
            plane = stats.planes[plane_id]
            assert plane["processed"] == report.input_alerts
            assert plane["blocked"] == report.blocked_alerts
            assert plane["aggregates"] == len(report.aggregates)
            assert plane["clusters"] == len(report.clusters)
            assert sorted(plane["regions"]) == sorted(regions)

    def test_stats_snapshot_exposes_planes(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_planes=2)
        for index in range(40):
            gateway.ingest(make_alert(
                float(index), region=("rA", "rB")[index % 2],
            ))
        stats = gateway.drain()
        payload = stats.snapshot()
        assert payload["n_planes"] == 2
        assert len(payload["planes"]) == 2
        assert sum(p["processed"] for p in payload["planes"]) == 40
        assert payload["input_alerts"] == 40
        assert {r for p in payload["planes"] for r in p["regions"]} == {"rA", "rB"}

    def test_gateway_snapshot_carries_plane_snapshots(self, small_topology):
        gateway = AlertGateway(small_topology.graph, n_planes=2)
        for index in range(10):
            gateway.ingest(make_alert(
                float(index), region=("rA", "rB")[index % 2],
            ))
        snapshot = gateway.snapshot()
        assert len(snapshot.planes) == 2
        assert sum(p.processed for p in snapshot.planes) == 10
        assert snapshot.open_sessions == sum(
            p.open_sessions for p in snapshot.planes
        )
        gateway.drain()
