"""Shard routing: templates, determinism, consistent-hashing stability."""

import pytest

from repro.common.errors import ValidationError
from repro.streaming.routing import ShardRouter, shard_key, template_of
from tests.streaming.conftest import make_alert


class TestTemplate:
    def test_collapses_numbers(self):
        assert template_of("queue depth 1042 on node-3") == "queue depth # on node-#"

    def test_same_template_for_varying_instances(self):
        first = template_of("disk 1 at 93% on host-17")
        second = template_of("disk 2 at 41% on host-202")
        assert first == second

    def test_case_and_whitespace_normalised(self):
        assert template_of("  CPU High  ") == "cpu high"


class TestShardKey:
    def test_same_strategy_same_key(self):
        a = make_alert(0.0, strategy_id="s1", title="cpu 90% high", service="svc")
        b = make_alert(500.0, strategy_id="s1", title="cpu 40% high", service="svc")
        assert shard_key(a) == shard_key(b)

    def test_service_disambiguates(self):
        a = make_alert(0.0, title="cpu high", service="svc-a")
        b = make_alert(0.0, title="cpu high", service="svc-b")
        assert shard_key(a) != shard_key(b)


class TestRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValidationError):
            ShardRouter(0)

    def test_routing_is_stable_across_instances(self):
        keys = [f"service-{i}|template-{i % 7}" for i in range(500)]
        first = ShardRouter(8)
        second = ShardRouter(8)
        assert [first.route_key(k) for k in keys] == [second.route_key(k) for k in keys]

    def test_all_shards_receive_load(self):
        keys = [f"service-{i}|template-{i}" for i in range(2000)]
        distribution = ShardRouter(8).distribution(keys)
        assert set(distribution) == set(range(8))
        assert all(count > 0 for count in distribution.values())
        # No shard should own a wildly disproportionate slice.
        assert max(distribution.values()) < 2000 * 0.45

    def test_consistent_hashing_limits_remaps(self):
        """Growing 4 -> 5 shards must leave most keys where they were."""
        keys = [f"service-{i}|template-{i}" for i in range(2000)]
        small = ShardRouter(4)
        grown = ShardRouter(5)
        moved = sum(
            1 for key in keys if small.route_key(key) != grown.route_key(key)
        )
        # Ideal remap share is 1/5; allow generous slack for ring variance
        # while still ruling out the mod-N behaviour (which remaps ~80 %).
        assert moved / len(keys) < 0.45

    def test_route_alert_matches_route_key(self):
        alert = make_alert(0.0, service="svc", title="latency 12 ms high")
        router = ShardRouter(6)
        assert router.route(alert) == router.route_key(shard_key(alert))


class TestRebalanceHelpers:
    def test_with_shards_keeps_replica_count(self):
        router = ShardRouter(4, replicas=32)
        grown = router.with_shards(6)
        assert grown.n_shards == 6
        assert grown.replicas == 32

    def test_moved_fraction_is_zero_against_identical_ring(self):
        keys = [f"service-{i}|template-{i}" for i in range(500)]
        router = ShardRouter(4)
        assert router.moved_fraction(ShardRouter(4), keys) == 0.0

    def test_moved_fraction_small_for_one_extra_shard(self):
        keys = [f"service-{i}|template-{i}" for i in range(2000)]
        router = ShardRouter(4)
        assert router.moved_fraction(router.with_shards(5), keys) < 0.45
