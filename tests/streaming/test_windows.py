"""Ring counters and latency reservoirs: the bounded-memory primitives."""

import pytest

from repro.common.errors import ValidationError
from repro.streaming.windows import LatencyReservoir, RingCounter


class TestRingCounter:
    def test_counts_within_window(self):
        counter = RingCounter(bucket_seconds=60.0, n_buckets=10)
        for t in (0.0, 30.0, 59.0, 120.0):
            counter.add(t)
        assert counter.total() == 4

    def test_eviction_after_window_rolls(self):
        counter = RingCounter(bucket_seconds=60.0, n_buckets=10)
        counter.add(0.0)
        counter.add(30.0)
        # 10-bucket window = 600 s; an event far past evicts the old bucket.
        counter.add(700.0)
        assert counter.total() == 1

    def test_skipping_many_buckets_zeroes_everything_once(self):
        counter = RingCounter(bucket_seconds=1.0, n_buckets=5)
        counter.add(0.0)
        counter.add(1_000_000.0)  # gap far larger than the ring
        assert counter.total() == 1

    def test_total_with_now_expires_without_mutation(self):
        counter = RingCounter(bucket_seconds=60.0, n_buckets=10)
        counter.add(0.0)
        assert counter.total(now=0.0) == 1
        assert counter.total(now=10_000.0) == 0
        # The query did not mutate: the stored total is still reachable.
        assert counter.total() == 1

    def test_too_old_events_ignored(self):
        counter = RingCounter(bucket_seconds=60.0, n_buckets=5)
        counter.add(10_000.0)
        counter.add(0.0)  # far behind the head: outside the ring
        assert counter.total() == 1

    def test_rate_per_hour(self):
        counter = RingCounter(bucket_seconds=60.0, n_buckets=60)
        for i in range(30):
            counter.add(float(i))
        assert counter.rate_per_hour() == pytest.approx(30.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValidationError):
            RingCounter(bucket_seconds=0.0)
        with pytest.raises(ValidationError):
            RingCounter(n_buckets=0)


class TestLatencyReservoir:
    def test_mean_is_exact_even_past_capacity(self):
        reservoir = LatencyReservoir(capacity=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            reservoir.observe(value)
        assert reservoir.count == 6
        assert reservoir.mean == pytest.approx(3.5)

    def test_sample_is_bounded(self):
        reservoir = LatencyReservoir(capacity=8)
        for i in range(1000):
            reservoir.observe(float(i))
        assert len(reservoir._samples) == 8

    def test_quantiles_ordered(self):
        reservoir = LatencyReservoir(capacity=128)
        for i in range(100):
            reservoir.observe(float(i))
        assert reservoir.quantile(0.5) <= reservoir.quantile(0.99)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir()
        assert reservoir.mean == 0.0
        assert reservoir.quantile(0.99) == 0.0
