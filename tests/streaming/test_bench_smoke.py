"""Fast-mode smoke tests for the streaming benchmarks.

``benchmarks/`` is outside the tier-1 test paths, so without this the
perf scripts could bit-rot silently.  This drives the same importable
sweep helpers the benchmarks use — every backend, plane, and learning
config, exact parity asserted inside — plus the plane-parallel-beats-
gateway-serial comparison on a multi-region storm trace, without the
strict timing assertions (those stay in the benchmarks, where the
machine is quiet).  A sweep that yields *zero* samples skips with an
explicit reason instead of passing vacuously.
"""

import pytest

from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.workload import (
    DriftConfig,
    StormConfig,
    build_drifting_noise_trace,
    build_multi_region_storm,
    drift_graph,
)

bench = pytest.importorskip(
    "benchmarks.bench_streaming_throughput",
    reason="benchmarks/ must be importable from the repo root",
)
learning_bench = pytest.importorskip(
    "benchmarks.bench_online_learning",
    reason="benchmarks/ must be importable from the repo root",
)
lanes_bench = pytest.importorskip(
    "benchmarks.bench_ingress_lanes",
    reason="benchmarks/ must be importable from the repo root",
)
recovery_bench = pytest.importorskip(
    "benchmarks.bench_worker_recovery",
    reason="benchmarks/ must be importable from the repo root",
)
detection_bench = pytest.importorskip(
    "benchmarks.bench_online_detection",
    reason="benchmarks/ must be importable from the repo root",
)


def _require_samples(measurements: dict, what: str) -> None:
    """Refuse to vacuously pass an empty sweep.

    A sweep that yields zero throughput samples means the benchmark's
    configuration matrix collapsed (an empty config tuple, a filter that
    matched nothing) — every downstream loop and set comparison would
    pass without testing anything.  Skip with an explicit reason so the
    hole is visible in the test report instead of silently green.
    """
    if not measurements:
        pytest.skip(
            f"{what} produced zero throughput samples - benchmark "
            f"configuration matrix is empty; fix the sweep before "
            f"trusting this smoke test"
        )


@pytest.fixture(scope="module")
def bench_setup(storm_trace):
    trace, topology = storm_trace
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )
    return trace, topology, blocker, rulebook, report


@pytest.fixture(scope="module")
def multi_region_setup(storm_trace):
    _, topology = storm_trace
    trace = build_multi_region_storm(StormConfig(seed=42), topology)
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )
    return trace, topology, blocker, rulebook, report


def test_backend_sweep_runs_and_reports_every_config(bench_setup):
    trace, topology, blocker, rulebook, report = bench_setup
    measurements = bench.run_backend_sweep(
        trace, topology, blocker, rulebook, report
    )
    _require_samples(measurements, "backend sweep")
    expected_labels = {label for label, *_ in bench.BACKEND_CONFIGS}
    assert set(measurements) == expected_labels
    for label, metrics in measurements.items():
        assert metrics["alerts_per_sec"] > 0, label
        assert metrics["latency_p99_us"] >= metrics["latency_p50_us"], label


def test_run_config_reconciles_each_shard_count(bench_setup):
    trace, topology, blocker, rulebook, report = bench_setup
    if not bench._SHARD_COUNTS:
        pytest.skip("shard-count sweep is empty - nothing would be verified")
    for n_shards in bench._SHARD_COUNTS:
        stats = bench.run_config(
            trace, topology, blocker, rulebook,
            n_shards=n_shards, flush_size=256,
        )
        assert stats.reconcile(report) == {}


def test_plane_sweep_reconciles_each_plane_count(multi_region_setup):
    trace, topology, blocker, rulebook, report = multi_region_setup
    measurements = bench.run_plane_sweep(
        trace, topology, blocker, rulebook, report,
    )
    _require_samples(measurements, "plane sweep")
    for backend in ("serial", "thread"):
        for n_planes in bench._PLANE_COUNTS:
            assert f"{backend}/p{n_planes}" in measurements
            assert measurements[f"{backend}/p{n_planes}"]["alerts_per_sec"] > 0


def test_plane_parallel_beats_gateway_serial_path(multi_region_setup):
    """R3/R4 partitioned across one plane per region must outrun the PR-2
    architecture (everything after routing on a single execution context)
    on the interleaved multi-region flood — on any machine: with no extra
    cores the win is per-region run locality in R4 and smaller R3
    timelines; extra cores add concurrency on top.  Each config takes the
    best of three runs: scheduler noise only ever slows a run down, so
    best-of approximates the true speed and keeps the ordering assertion
    stable on loaded CI runners."""
    trace, topology, blocker, rulebook, report = multi_region_setup

    def best_of(n_planes: int, backend: str, rounds: int = 3) -> float:
        best = 0.0
        for _ in range(rounds):
            stats = bench.run_config(
                trace, topology, blocker, rulebook,
                backend=backend, n_planes=n_planes, flush_size=512,
            )
            assert stats.reconcile(report) == {}
            best = max(best, stats.throughput)
        return best

    gateway_serial = best_of(1, "thread")
    plane_parallel = best_of(4, "serial")
    assert plane_parallel > gateway_serial, (
        f"plane-parallel path ran at {plane_parallel:,.0f} alerts/s "
        f"vs {gateway_serial:,.0f} for the gateway-serial path"
    )


def test_scale_probe_reconciles_and_stays_under_one_flush(multi_region_setup):
    """Live plane scale-out on the multi-region storm trace: both runs
    must reconcile exactly (migration invisibility at bench scale), and
    the ``scale_planes`` barrier itself must cost less wall time than
    one ordinary flush cycle — the overhead budget that makes scaling a
    live gateway "free" relative to steady-state ingestion.  Best-of-3
    on both sides of the comparison: scheduler noise only ever slows a
    measurement down, so best-of approximates the true costs and keeps
    the ordering assertable on loaded CI runners."""
    trace, topology, blocker, rulebook, report = multi_region_setup
    # Serial backend: the timed barrier is pure state migration, with no
    # worker-pool spawn riding along (the thread backend grows its pool
    # inside the barrier by design; the bench's throughput-ratio probe
    # covers that path).
    probe = bench.run_scale_probe(
        trace, topology, blocker, rulebook, report,
        backend="serial", n_planes=4, flush_size=512,
    )
    assert probe["fixed_alerts_per_sec"] > 0
    assert probe["scaled_alerts_per_sec"] > 0
    assert probe["scale_wall_s"] < probe["flush_wall_s"], (
        f"scale_planes took {probe['scale_wall_s'] * 1e3:.2f} ms, over the "
        f"one-flush budget of {probe['flush_wall_s'] * 1e3:.2f} ms"
    )


def test_lane_sweep_holds_parity_for_every_lane_count(multi_region_setup):
    """Drives the ingress-lane bench helpers end to end (fast mode).

    The exact-parity assertion — every lane count drains to identical
    accounting — lives *inside* ``run_lane_sweep``, so this smoke run
    exercises it on the serial backend (no worker processes to spawn)
    with a single round per config."""
    trace, topology, blocker, rulebook, _ = multi_region_setup
    measurements = lanes_bench.run_lane_sweep(
        trace, topology, blocker, rulebook,
        backend="serial", rounds=1,
    )
    _require_samples(measurements, "ingress-lane sweep")
    for lanes in lanes_bench.LANE_COUNTS:
        assert measurements[f"lanes{lanes}"] > 0
    assert measurements["scaling_x"] > 0


def test_transport_parity_and_handoff_smoke(multi_region_setup):
    """Drives the ring-transport bench helpers end to end (fast mode).

    Parity first, exactly as the bench orders it: the identical trace
    drained through ring lanes, pipe lanes, and the unlaned path on a
    real process-backend worker fleet must agree bit-for-bit
    (``run_transport_parity`` asserts internally).  Then the hand-off
    microbench runs with a small batch and iteration budget — the
    smoke checks it produces sane rows, not that it hits the perf
    floor (that stays in the bench, where the machine is quiet)."""
    trace, topology, blocker, rulebook, _ = multi_region_setup
    alerts = list(trace.iter_ordered())[:2000]
    counts = lanes_bench.run_transport_parity(
        alerts, topology, blocker, rulebook, n_planes=2, n_workers=2,
    )
    assert counts[0] == len(alerts)
    handoff = lanes_bench.run_transport_handoff(
        alerts, batch_sizes=(64, 256), iterations=20, rounds=1,
    )
    _require_samples(handoff["handoff"], "transport hand-off sweep")
    for row in handoff["handoff"]:
        assert row["payload_bytes"] > 0
        assert row["ring_handoffs_per_sec"] > 0
        assert row["pipe_handoffs_per_sec"] > 0
    assert handoff["ring_vs_pipe_handoff_x"] == handoff["handoff"][-1]["ratio"]
    assert handoff["cores"] >= 1.0


def test_recovery_sweep_holds_parity_and_recovers_from_a_kill(
    multi_region_setup,
):
    """Drives the worker-recovery bench helpers end to end (fast mode).

    The parity assertions — recovery on, recovery off, and the
    kill-and-recover run all drain to identical accounting, with exactly
    one death and one recovery — live *inside* ``run_recovery_sweep``;
    the smoke runs it on a trimmed trace with a single round per config
    and checks the measurements are sane, not that they hit the perf
    floor (that stays in the bench, where the machine is quiet)."""
    trace, topology, blocker, rulebook, _ = multi_region_setup
    alerts = list(trace.iter_ordered())[:3000]

    class _Trimmed:
        def iter_ordered(self):
            return iter(alerts)

    measurements = recovery_bench.run_recovery_sweep(
        _Trimmed(), topology, blocker, rulebook,
        n_planes=2, n_workers=2, flush_size=256, rounds=1,
    )
    _require_samples(measurements, "worker-recovery sweep")
    assert measurements["recovery_off_alerts_per_sec"] > 0
    assert measurements["recovery_on_alerts_per_sec"] > 0
    assert measurements["killed_alerts_per_sec"] > 0
    assert measurements["recovery_overhead_ratio"] > 0
    assert measurements["alerts"] == len(alerts)


def test_bench_floors_guard_accepts_committed_artifact():
    """The committed ``BENCH_streaming.json`` must hold every floor the
    CI guard enforces — a PR that records a regressing ratio fails here
    (and in the dedicated CI step) inside the diff that caused it."""
    floors = pytest.importorskip(
        "benchmarks.check_bench_floors",
        reason="benchmarks/ must be importable from the repo root",
    )
    if not floors.BENCH_ARTIFACT.exists():
        pytest.skip("no standing BENCH_streaming.json artifact to check")
    import json

    payload = json.loads(floors.BENCH_ARTIFACT.read_text())
    assert floors.check_floors(payload) == []


def test_bench_floors_guard_flags_regressions():
    """Each floor actually trips: feed the guard an artifact with every
    ratio just under its floor and every violation must surface."""
    floors = pytest.importorskip(
        "benchmarks.check_bench_floors",
        reason="benchmarks/ must be importable from the repo root",
    )
    bad = {
        "current": {"overhead_ratio": floors.OVERHEAD_FLOOR - 0.01},
        "ring_transport": {
            "ring_vs_pipe_handoff_x": floors.HANDOFF_FLOOR - 0.01,
        },
        "ingress_lanes": {
            "scaling_x": floors.SCALING_FLOOR - 0.1,
            "cores": float(floors.MIN_CORES_FOR_SCALING),
        },
        "worker_recovery": {
            "recovery_overhead_ratio": floors.RECOVERY_OVERHEAD_FLOOR - 0.01,
        },
        "online_detection": {
            "detection_overhead_ratio": floors.DETECTION_OVERHEAD_FLOOR - 0.01,
        },
        "trajectory": [{"pr": 99}],
    }
    violations = floors.check_floors(bad)
    assert len(violations) == 6
    # A box without the cores for lane scaling must not trip that floor.
    bad["ingress_lanes"]["cores"] = 1.0
    assert len(floors.check_floors(bad)) == 5


def test_learning_sweep_runs_every_config_on_a_small_trace():
    """Drives the online-learning bench helpers end to end (fast mode)."""
    config = DriftConfig(hours=4.0, drift=True)
    trace = build_drifting_noise_trace(config)
    graph = drift_graph(config)
    measurements = learning_bench.run_learning_sweep(trace, graph)
    _require_samples(measurements, "learning sweep")
    expected_labels = {label for label, *_ in learning_bench.LEARNING_CONFIGS}
    assert set(measurements) == expected_labels
    for label, metrics in measurements.items():
        assert metrics["alerts_per_sec"] > 0, label
    # The plain config must not learn; the learning configs must.
    assert measurements["plain"]["rules_promoted"] == 0
    assert measurements["learn"]["rules_promoted"] > 0


def test_detection_sweep_runs_every_config_on_a_small_trace():
    """Drives the online-detection bench helpers end to end (fast mode)."""
    config = DriftConfig(hours=4.0, drift=True)
    trace = build_drifting_noise_trace(config)
    graph = drift_graph(config)
    measurements = detection_bench.run_detection_sweep(trace, graph)
    _require_samples(measurements, "detection sweep")
    expected_labels = {label for label, *_ in detection_bench.DETECTION_CONFIGS}
    assert set(measurements) == expected_labels
    for label, metrics in measurements.items():
        assert metrics["alerts_per_sec"] > 0, label
    # Only the detecting config reports verdict volume, and it must have
    # actually folded the trace's strategies into the online catalog.
    assert "strategies" not in measurements["learn"]
    assert measurements["learn+detect"]["strategies"] > 0


def test_learning_divergence_helper_reports_bounded_metrics():
    config = DriftConfig(hours=4.0, drift=False)
    trace = build_drifting_noise_trace(config)
    graph = drift_graph(config)
    metrics = learning_bench.run_divergence(trace, graph, flush_size=256)
    assert 0.0 <= metrics["precision"] <= 1.0
    assert 0.0 <= metrics["recall"] <= 1.0
    assert metrics["online_blocked"] > 0
