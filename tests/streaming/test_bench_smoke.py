"""Fast-mode smoke test for the streaming throughput benchmark.

``benchmarks/`` is outside the tier-1 test paths, so without this the
perf scripts could bit-rot silently.  This drives the same importable
sweep helpers the benchmark uses — every backend config, exact parity
asserted inside — over the single-storm trace, without the timing
assertions (those stay in the benchmark, where the machine is quiet).
"""

import pytest

from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth

bench = pytest.importorskip(
    "benchmarks.bench_streaming_throughput",
    reason="benchmarks/ must be importable from the repo root",
)


@pytest.fixture(scope="module")
def bench_setup(storm_trace):
    trace, topology = storm_trace
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )
    return trace, topology, blocker, rulebook, report


def test_backend_sweep_runs_and_reports_every_config(bench_setup):
    trace, topology, blocker, rulebook, report = bench_setup
    measurements = bench.run_backend_sweep(
        trace, topology, blocker, rulebook, report
    )
    expected_labels = {label for label, *_ in bench.BACKEND_CONFIGS}
    assert set(measurements) == expected_labels
    for label, metrics in measurements.items():
        assert metrics["alerts_per_sec"] > 0, label
        assert metrics["latency_p99_us"] >= metrics["latency_p50_us"], label


def test_run_config_reconciles_each_shard_count(bench_setup):
    trace, topology, blocker, rulebook, report = bench_setup
    for n_shards in bench._SHARD_COUNTS:
        stats = bench.run_config(
            trace, topology, blocker, rulebook,
            n_shards=n_shards, flush_size=256,
        )
        assert stats.reconcile(report) == {}
