"""Online correlation: exact batch parity and safe finalisation."""

import pytest

from repro.core.mitigation.correlation import CorrelationAnalyzer, DependencyRuleBook
from repro.streaming.correlator import OnlineCorrelator
from tests.streaming.conftest import make_alert


@pytest.fixture(scope="module")
def analyzer(small_topology):
    rulebook = DependencyRuleBook()
    rulebook.add("s-source", "s-derived")
    return CorrelationAnalyzer(small_topology.graph, rulebook=rulebook,
                               max_hops=4, time_window=900.0)


def _cluster_signature(cluster):
    return (
        tuple(sorted(a.alert_id for a in cluster.alerts)),
        cluster.root_microservice,
    )


def _graph_stream(topology):
    """Representatives spread across related/unrelated nodes and times."""
    micros = sorted(topology.graph.microservices)
    service_of = topology.service_of
    alerts = []
    time = 0.0
    for index, micro in enumerate(micros):
        alerts.append(make_alert(
            time,
            strategy_id=f"s-{index}",
            microservice=micro,
            service=service_of[micro],
            region="region-A" if index % 3 else "region-B",
        ))
        time += 200.0 if index % 4 else 2000.0  # some gaps break the window
    # Rule-book pair in the same region, topologically unrelated or not.
    alerts.append(make_alert(time + 10.0, strategy_id="s-source",
                             microservice=micros[0], service=service_of[micros[0]]))
    alerts.append(make_alert(time + 20.0, strategy_id="s-derived",
                             microservice=micros[-1], service=service_of[micros[-1]]))
    alerts.sort(key=lambda a: a.occurred_at)
    return alerts


class TestBatchParity:
    def test_components_match_batch(self, analyzer, small_topology):
        alerts = _graph_stream(small_topology)
        batch = analyzer.correlate(list(alerts))
        online = OnlineCorrelator(analyzer)
        for alert in alerts:
            online.add(alert)
        clusters = online.drain()
        assert sorted(map(_cluster_signature, clusters)) == \
            sorted(map(_cluster_signature, batch))

    def test_insertion_order_does_not_matter(self, analyzer, small_topology):
        alerts = _graph_stream(small_topology)
        forward = OnlineCorrelator(analyzer)
        for alert in alerts:
            forward.add(alert)
        shuffled = OnlineCorrelator(analyzer)
        for alert in reversed(alerts):
            shuffled.add(alert)
        assert sorted(map(_cluster_signature, forward.drain())) == \
            sorted(map(_cluster_signature, shuffled.drain()))


class TestFinalisation:
    def test_safe_components_finalize_early(self, analyzer):
        online = OnlineCorrelator(analyzer)
        online.add(make_alert(0.0, strategy_id="s-source"))
        online.add(make_alert(100.0, strategy_id="s-derived"))
        # Watermark far past the window, no open sessions: safe to close.
        closed = online.finalize_ready(watermark=10_000.0, min_open_first=None)
        assert len(closed) == 1
        assert closed[0].size == 2
        assert online.retained == 0

    def test_open_session_blocks_finalisation(self, analyzer):
        online = OnlineCorrelator(analyzer)
        online.add(make_alert(0.0, strategy_id="s-source"))
        # An open session started at t=200 could still emit a representative
        # within the window of the retained entry.
        closed = online.finalize_ready(watermark=10_000.0, min_open_first=200.0)
        assert closed == []
        assert online.retained == 1

    def test_early_finalisation_preserves_parity(self, analyzer, small_topology):
        alerts = _graph_stream(small_topology)
        batch = analyzer.correlate(list(alerts))
        online = OnlineCorrelator(analyzer, retain_finalized=True)
        for alert in alerts:
            online.add(alert)
            # Aggressively finalise between events, as the gateway does.
            online.finalize_ready(watermark=alert.occurred_at, min_open_first=None)
        online.drain()
        assert online.finalized_count == len(online.finalized)
        assert sorted(map(_cluster_signature, online.finalized)) == \
            sorted(map(_cluster_signature, batch))

    def test_drain_empties_state(self, analyzer):
        online = OnlineCorrelator(analyzer)
        online.add(make_alert(0.0))
        online.drain()
        assert online.retained == 0
        assert online.active_components == 0
