"""Shared helpers for the streaming-gateway tests."""

from __future__ import annotations

import itertools

import pytest

from repro.alerting.alert import Alert, AlertState, Severity

_counter = itertools.count()


def make_alert(
    occurred_at: float,
    strategy_id: str = "strategy-1",
    region: str = "region-A",
    microservice: str = "micro-1",
    service: str = "service-1",
    severity: Severity = Severity.MINOR,
    title: str | None = None,
    cleared_after: float | None = 120.0,
) -> Alert:
    """A minimal well-formed alert for streaming unit tests."""
    alert = Alert(
        alert_id=f"alert-{next(_counter):06d}",
        strategy_id=strategy_id,
        strategy_name=f"{strategy_id}-name",
        title=title if title is not None else f"{microservice}: latency above threshold",
        description="synthetic alert for streaming tests",
        severity=severity,
        service=service,
        microservice=microservice,
        region=region,
        datacenter=f"{region}-dc1",
        channel="metric",
        occurred_at=occurred_at,
    )
    if cleared_after is not None:
        alert.state = AlertState.CLEARED_AUTO
        alert.cleared_at = occurred_at + cleared_after
    return alert


@pytest.fixture(scope="session")
def storm_trace(topology):
    """The deterministic Figure 3 storm used by the parity tests."""
    from repro.workload import StormConfig, build_representative_storm

    return build_representative_storm(StormConfig(seed=42), topology), topology
