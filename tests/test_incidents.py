"""Tests for incident escalation."""

import pytest

from repro.alerting.alert import Severity
from repro.common.errors import ValidationError
from repro.core.incidents import Incident, IncidentEscalator
from repro.core.mitigation.correlation import AlertCluster
from repro.common.timeutil import TimeWindow
from tests.antipatterns.test_collective import make_alert


def cluster_of(alerts, root=None):
    cluster = AlertCluster(alerts=sorted(alerts, key=lambda a: a.occurred_at))
    cluster.root_microservice = root
    cluster.root_alert = cluster.alerts[0]
    return cluster


class TestEscalationRules:
    def test_single_critical_alert_escalates(self):
        alert = make_alert("a-1", 100.0)
        alert.severity = Severity.CRITICAL
        incidents = IncidentEscalator().escalate([cluster_of([alert])])
        assert len(incidents) == 1
        assert "Critical" in incidents[0].reason

    def test_minor_singleton_does_not_escalate(self):
        incidents = IncidentEscalator().escalate([cluster_of([make_alert("a-1", 100.0)])])
        assert incidents == []

    def test_mass_escalation_without_severity(self):
        alerts = [make_alert(f"a-{i}", 100.0 + i) for i in range(25)]
        incidents = IncidentEscalator(mass_threshold=20).escalate([cluster_of(alerts)])
        assert len(incidents) == 1
        assert "correlated group" in incidents[0].reason

    def test_mass_threshold_respected(self):
        alerts = [make_alert(f"a-{i}", 100.0 + i) for i in range(10)]
        incidents = IncidentEscalator(mass_threshold=20).escalate([cluster_of(alerts)])
        assert incidents == []

    def test_severity_floor_configurable(self):
        alert = make_alert("a-1", 100.0)
        alert.severity = Severity.MAJOR
        escalator = IncidentEscalator(severity_floor=Severity.MAJOR)
        assert len(escalator.escalate([cluster_of([alert])])) == 1


class TestIncidentRecord:
    def test_fields(self):
        alerts = [make_alert(f"a-{i}", 100.0 + i * 60.0) for i in range(25)]
        alerts[3].severity = Severity.CRITICAL
        incident = IncidentEscalator().escalate([cluster_of(alerts, root="m-a")])[0]
        assert incident.size == 25
        assert incident.severity is Severity.CRITICAL
        assert incident.root_microservice == "m-a"
        assert incident.window.contains(100.0)
        assert incident.services == ("svc-a",)

    def test_render_row(self):
        alert = make_alert("a-1", 100.0)
        alert.severity = Severity.CRITICAL
        incident = IncidentEscalator().escalate([cluster_of([alert])])[0]
        row = incident.render_row()
        assert "Critical" in row
        assert "region-A" in row

    def test_empty_incident_rejected(self):
        with pytest.raises(ValidationError):
            Incident(
                incident_id="i-1", region="r", window=TimeWindow(0, 1),
                severity=Severity.CRITICAL, alert_ids=(), services=(),
                root_microservice=None, reason="r",
            )


class TestOnRealClusters:
    def test_storm_clusters_escalate(self, default_trace, topology):
        from repro.core.antipatterns import detect_storms
        from repro.core.mitigation import CorrelationAnalyzer

        analyzer = CorrelationAnalyzer(topology.graph)
        storm = detect_storms(default_trace)[0]
        alerts = [a for a in default_trace.alerts_in(storm.window)
                  if a.region == storm.region]
        clusters = analyzer.correlate(alerts)
        incidents = IncidentEscalator().escalate(clusters)
        assert incidents
        biggest = max(incidents, key=lambda i: i.size)
        assert biggest.size >= 20
