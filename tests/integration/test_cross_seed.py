"""Cross-seed robustness: the headline results must not be seed-42 artifacts."""

import pytest

from repro.core.antipatterns import run_mining_pipeline
from repro.topology import TopologyConfig, generate_topology
from repro.workload import TraceConfig, generate_trace


@pytest.fixture(scope="module", params=[7, 99])
def seeded_run(request):
    seed = request.param
    topology = generate_topology(TopologyConfig(seed=seed))
    trace = generate_trace(TraceConfig(seed=seed), topology)
    return topology, trace


class TestMiningAcrossSeeds:
    def test_all_six_patterns_found(self, seeded_run):
        topology, trace = seeded_run
        report = run_mining_pipeline(trace, topology.graph)
        found = set(report.individual_patterns_found) | set(
            report.collective_patterns_found
        )
        assert found == {"A1", "A2", "A3", "A4", "A5", "A6"}

    def test_candidate_enrichment_holds(self, seeded_run):
        topology, trace = seeded_run
        report = run_mining_pipeline(trace, topology.graph)
        assert report.candidate_enrichment > report.population_antipattern_rate

    def test_storm_frequency_in_paper_band(self, seeded_run):
        topology, trace = seeded_run
        report = run_mining_pipeline(trace, topology.graph)
        assert 0.5 <= report.storms_per_week <= 8.0

    def test_text_detectors_stay_precise(self, seeded_run):
        topology, trace = seeded_run
        report = run_mining_pipeline(trace, topology.graph)
        for pattern in ("A1", "A3", "A4"):
            assert report.full_scores[pattern]["precision"] >= 0.8, pattern
