"""Integration tests: the full stack wired together.

Two paths are exercised end to end:

1. telemetry-driven — faults perturb telemetry, the monitoring engine
   polls strategies on the simulation kernel, alerts cascade per
   Table II, and the mitigation layer finds the root;
2. rate-driven — the two-year-style trace flows through mining,
   mitigation, and QoA without any step reading ground truth it
   should not.
"""

import pytest

from repro.alerting import AlertBook, MonitoringEngine, SOPLibrary
from repro.common.timeutil import HOUR
from repro.core.antipatterns import CascadingAlertsDetector, run_mining_pipeline
from repro.core.mitigation import CorrelationAnalyzer, MitigationPipeline
from repro.core.qoa import evaluate_qoa_pipeline
from repro.faults import CascadeModel, FaultInjector, disk_full_cascade
from repro.telemetry import TelemetryHub
from repro.workload import StrategyFactory
from repro.workload.strategies import StrategyMixConfig
from repro.sim import SimulationEngine


@pytest.fixture(scope="module")
def telemetry_run(topology):
    """Run monitoring over the Table II disk-full cascade."""
    hub = TelemetryHub(topology, seed=42)
    injector = FaultInjector(hub)
    cascade = CascadeModel(topology, injector, seed=42)
    root, children = disk_full_cascade(topology, injector, cascade, start=2 * HOUR)

    factory = StrategyFactory(topology, seed=42,
                              mix=StrategyMixConfig(a4_rate=0.0, a5_rate=0.0))
    affected = [root.microservice] + [c.microservice for c in children]
    strategies = []
    for micro in affected:
        strategies.extend(factory.build_for(micro, count=2))

    book = AlertBook()
    engine = MonitoringEngine(hub, book, fault_attribution=injector.fault_at)
    engine.register_all(strategies)
    sim = SimulationEngine()
    end = root.window.end + HOUR
    engine.attach(sim, end_time=end)
    sim.run_until(end)
    return topology, root, children, book


class TestTelemetryDrivenPath:
    def test_cascade_produces_alerts(self, telemetry_run):
        _, root, children, book = telemetry_run
        assert len(book) > 5

    def test_root_component_alerts_first(self, telemetry_run):
        _, root, children, book = telemetry_run
        root_alerts = [a for a in book.alerts if a.microservice == root.microservice
                       and a.region == root.region]
        assert root_alerts, "the disk-full component itself must alert"

    def test_alerts_attributed_to_faults(self, telemetry_run):
        _, root, children, book = telemetry_run
        fault_ids = {root.fault_id} | {c.fault_id for c in children}
        attributed = [a for a in book.alerts if a.fault_id in fault_ids]
        assert len(attributed) >= len(book.alerts) * 0.5

    def test_cascading_antipattern_detected(self, telemetry_run):
        topology, root, children, book = telemetry_run
        group = [a for a in book.alerts if a.region == root.region]
        verdict = CascadingAlertsDetector(topology.graph).detect_in_group(group, "g")
        assert verdict is not None

    def test_correlation_finds_disk_full_root(self, telemetry_run):
        topology, root, children, book = telemetry_run
        group = [a for a in book.alerts if a.region == root.region]
        clusters = CorrelationAnalyzer(topology.graph).correlate(group)
        biggest = max(clusters, key=lambda c: c.size)
        # Root at microservice or at least service granularity.
        assert topology.service_of[biggest.root_microservice] == "block-storage"

    def test_auto_clearance_after_fault_ends(self, telemetry_run):
        # §II-B4: probe and metric alerts auto-clear on recovery; log
        # alerts wait for manual clearance and legitimately stay active.
        _, root, children, book = telemetry_run
        auto_channels = [a for a in book.alerts if a.channel in ("metric", "probe")]
        still_active = [a for a in auto_channels if a.is_active]
        assert len(still_active) < len(auto_channels) * 0.3


class TestRateDrivenPath:
    def test_mining_to_mitigation_to_qoa(self, default_trace, topology):
        mining = run_mining_pipeline(default_trace, topology.graph)
        assert set(mining.individual_patterns_found) | set(
            mining.collective_patterns_found
        ) == {"A1", "A2", "A3", "A4", "A5", "A6"}

        pipeline = MitigationPipeline(topology.graph)
        mitigation = pipeline.run(default_trace)
        assert mitigation.total_reduction > 0.3

        qoa = evaluate_qoa_pipeline(default_trace)
        for criterion, accuracy in qoa.accuracy.items():
            assert accuracy >= 0.5, criterion

    def test_sops_exist_for_all_strategies(self, default_trace):
        library = SOPLibrary()
        for strategy in default_trace.strategies.values():
            sop = library.build_default(strategy)
            assert sop.alert_name == strategy.name
        assert len(library) <= len(default_trace.strategies)
