"""Property-based tests for the dependency graph."""

from hypothesis import given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.topology.graph import DependencyGraph


@st.composite
def dags(draw):
    """Random DAGs built by only adding edges from lower to higher index."""
    n = draw(st.integers(min_value=2, max_value=12))
    graph = DependencyGraph()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        graph.add_microservice(name)
    n_edges = draw(st.integers(min_value=0, max_value=n * 2))
    for _ in range(n_edges):
        i = draw(st.integers(min_value=0, max_value=n - 2))
        j = draw(st.integers(min_value=i + 1, max_value=n - 1))
        try:
            graph.add_dependency(names[i], names[j])
        except ValidationError:
            pass  # duplicate edges cannot create cycles; only cycles raise
    return graph


class TestGraphProperties:
    @given(dags())
    @settings(max_examples=50)
    def test_topological_order_respects_edges(self, graph):
        order = {name: i for i, name in enumerate(graph.topological_order())}
        for caller in graph.microservices:
            for callee in graph.dependencies(caller):
                assert order[caller] < order[callee]

    @given(dags())
    @settings(max_examples=50)
    def test_dependents_inverse_of_dependencies(self, graph):
        for caller in graph.microservices:
            for callee in graph.dependencies(caller):
                assert caller in graph.dependents(callee)

    @given(dags())
    @settings(max_examples=50)
    def test_upstream_impact_reaches_only_dependents(self, graph):
        for node in graph.microservices:
            impact = graph.upstream_impact(node)
            for affected, distance in impact.items():
                assert distance >= 1
                assert graph.shortest_dependency_distance(affected, node) is not None

    @given(dags())
    @settings(max_examples=50)
    def test_depth_limit_monotone(self, graph):
        for node in graph.microservices[:3]:
            shallow = graph.upstream_impact(node, max_depth=1)
            deep = graph.upstream_impact(node, max_depth=3)
            assert set(shallow).issubset(set(deep))

    @given(dags())
    @settings(max_examples=30)
    def test_are_related_symmetric(self, graph):
        nodes = graph.microservices
        for a in nodes[:3]:
            for b in nodes[:3]:
                assert graph.are_related(a, b) == graph.are_related(b, a)
