"""Property-based tests for RNG stream derivation."""

from hypothesis import given, strategies as st

from repro.common.rng import derive_rng, derive_seed

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
    min_size=1, max_size=30,
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestDerivationProperties:
    @given(seeds, names)
    def test_seed_in_range(self, seed, name):
        assert 0 <= derive_seed(seed, name) < 2**63

    @given(seeds, names)
    def test_deterministic(self, seed, name):
        assert derive_seed(seed, name) == derive_seed(seed, name)

    @given(seeds, names, names)
    def test_distinct_names_distinct_streams(self, seed, name_a, name_b):
        if name_a == name_b:
            return
        draws_a = derive_rng(seed, name_a).random(4)
        draws_b = derive_rng(seed, name_b).random(4)
        assert not (draws_a == draws_b).all()

    @given(seeds, seeds, names)
    def test_distinct_seeds_distinct_streams(self, seed_a, seed_b, name):
        if seed_a == seed_b:
            return
        assert derive_seed(seed_a, name) != derive_seed(seed_b, name)
