"""Property-based tests for the streaming gateway's backend equivalence.

Randomized alert traces (arbitrary strategies, regions, severities,
bursts and gaps) must produce *identical* volume accounting no matter
how the gateway executes: serial vs thread vs process backends, any
plane count (the region partition), batched vs per-event ingestion, any
flush size, and with or without a mid-stream per-plane rebalance.  Each
property also cross-checks the batch ``MitigationPipeline`` on the same
trace — the reconciliation invariant under adversarial inputs rather
than the curated storm fixture.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.alerting.alert import Alert, Severity
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.streaming import AlertGateway
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

_MICROSERVICES = ("m-1", "m-2", "m-3", "m-4", "m-5", "m-6")
_STRATEGIES = ("s-1", "s-2", "s-3", "s-4")
_REGIONS = ("region-A", "region-B")


def _build_graph() -> DependencyGraph:
    graph = DependencyGraph()
    for name in _MICROSERVICES:
        graph.add_microservice(name, service="svc")
    # Two call chains sharing a sink: m-1 -> m-2 -> m-3, m-4 -> m-5 -> m-3;
    # m-6 stays isolated so some pairs are never related.
    for caller, callee in (("m-1", "m-2"), ("m-2", "m-3"),
                           ("m-4", "m-5"), ("m-5", "m-3")):
        graph.add_dependency(caller, callee)
    return graph


_GRAPH = _build_graph()


@st.composite
def alert_traces(draw):
    """A time-ordered randomized trace over the fixed tiny topology."""
    n = draw(st.integers(min_value=0, max_value=120))
    times = sorted(
        draw(st.lists(
            st.floats(min_value=0, max_value=50_000, allow_nan=False),
            min_size=n, max_size=n,
        ))
    )
    alerts = []
    for index, occurred_at in enumerate(times):
        strategy = draw(st.sampled_from(_STRATEGIES))
        alerts.append(Alert(
            alert_id=f"a-{index:04d}",
            strategy_id=strategy,
            strategy_name=strategy,
            title=draw(st.sampled_from(("latency high", "errors 500 spiking"))),
            description="prop",
            severity=draw(st.sampled_from(list(Severity))),
            service="svc",
            microservice=draw(st.sampled_from(_MICROSERVICES)),
            region=draw(st.sampled_from(_REGIONS)),
            datacenter="dc",
            channel="metric",
            occurred_at=occurred_at,
        ))
    return alerts


def blockers():
    return st.sets(st.sampled_from(_STRATEGIES)).map(
        lambda blocked: AlertBlocker(
            BlockingRule(strategy_id=strategy) for strategy in sorted(blocked)
        )
    )


def _counts(stats) -> tuple:
    return (
        stats.input_alerts,
        stats.blocked_alerts,
        stats.aggregates_emitted,
        stats.clusters_finalized,
        stats.storm_episodes,
        stats.emerging_flags,
    )


def _run(alerts, blocker, backend="serial", flush_size=None, n_shards=4,
         n_planes=1, per_event=False, rebalance_to=None, window=600.0):
    gateway = AlertGateway(
        _GRAPH, blocker=blocker, n_shards=n_shards, n_planes=n_planes,
        backend=backend, n_workers=2, flush_size=flush_size,
        aggregation_window=window, correlation_window=window,
    )
    if rebalance_to is not None:
        midpoint = len(alerts) // 2
        gateway.ingest_batch(alerts[:midpoint])
        gateway.rebalance(rebalance_to)
        gateway.ingest_batch(alerts[midpoint:])
    elif per_event:
        gateway.ingest_many(alerts)
    else:
        gateway.ingest_batch(alerts)
    return gateway.drain()


def _batch_counts(alerts, blocker, window=600.0) -> tuple:
    trace = AlertTrace(alerts=list(alerts), label="prop", seed=0)
    report = MitigationPipeline(
        _GRAPH, aggregation_window=window, correlation_window=window,
    ).run(trace, blocker=blocker)
    return (
        report.input_alerts,
        report.blocked_alerts,
        len(report.aggregates),
        len(report.clusters),
    )


class TestBackendEquivalence:
    @given(alert_traces(), blockers(),
           st.sampled_from([1, 3, 17, 128]),
           st.sampled_from([1, 2, 5]))
    @settings(max_examples=40, deadline=None)
    def test_serial_and_thread_count_identically(
        self, alerts, blocker, flush_size, n_shards
    ):
        serial = _run(alerts, blocker, "serial", flush_size, n_shards)
        threaded = _run(alerts, blocker, "thread", flush_size, n_shards)
        assert _counts(serial) == _counts(threaded)

    @given(alert_traces(), blockers())
    @settings(max_examples=5, deadline=None)
    def test_process_backend_counts_identically(self, alerts, blocker):
        serial = _run(alerts, blocker, "serial", flush_size=32)
        forked = _run(alerts, blocker, "process", flush_size=32)
        assert _counts(serial) == _counts(forked)

    @given(alert_traces(), blockers(), st.sampled_from([2, 7, 64]))
    @settings(max_examples=40, deadline=None)
    def test_ingest_batch_equals_per_event_ingest(
        self, alerts, blocker, flush_size
    ):
        per_event = _run(alerts, blocker, per_event=True)
        batched = _run(alerts, blocker, flush_size=flush_size)
        assert _counts(per_event) == _counts(batched)
        assert per_event.watermark == batched.watermark
        assert per_event.late_events == batched.late_events

    @given(alert_traces(), blockers(), st.sampled_from([1, 3, 8]),
           st.sampled_from([1, 2]))
    @settings(max_examples=25, deadline=None)
    def test_rebalance_is_invisible_in_accounting(
        self, alerts, blocker, new_shards, n_planes
    ):
        straight = _run(alerts, blocker, flush_size=16, n_planes=n_planes)
        rebalanced = _run(alerts, blocker, flush_size=16, n_planes=n_planes,
                          rebalance_to=new_shards)
        assert _counts(straight) == _counts(rebalanced)


class TestPlaneEquivalence:
    @given(alert_traces(), blockers(),
           st.sampled_from([2, 4]),
           st.sampled_from([1, 16, 128]))
    @settings(max_examples=40, deadline=None)
    def test_plane_split_equals_flat_gateway(
        self, alerts, blocker, n_planes, flush_size
    ):
        """Any region partition must count exactly like one plane."""
        flat = _run(alerts, blocker, flush_size=flush_size, n_planes=1)
        split = _run(alerts, blocker, flush_size=flush_size, n_planes=n_planes)
        assert _counts(flat) == _counts(split)
        assert flat.watermark == split.watermark
        assert flat.late_events == split.late_events

    @given(alert_traces(), blockers(), st.sampled_from([2, 4]))
    @settings(max_examples=30, deadline=None)
    def test_plane_split_reconciles_with_batch_pipeline(
        self, alerts, blocker, n_planes
    ):
        stats = _run(alerts, blocker, n_planes=n_planes, flush_size=32)
        assert (
            stats.input_alerts,
            stats.blocked_alerts,
            stats.aggregates_emitted,
            stats.clusters_finalized,
        ) == _batch_counts(alerts, blocker)

    @given(alert_traces(), blockers(), st.sampled_from([2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_planes_and_threads_count_identically(
        self, alerts, blocker, n_planes
    ):
        serial = _run(alerts, blocker, "serial", flush_size=16,
                      n_planes=n_planes)
        threaded = _run(alerts, blocker, "thread", flush_size=16,
                        n_planes=n_planes)
        assert _counts(serial) == _counts(threaded)

    @given(alert_traces(), blockers())
    @settings(max_examples=5, deadline=None)
    def test_planes_and_processes_count_identically(self, alerts, blocker):
        serial = _run(alerts, blocker, "serial", flush_size=32, n_planes=2)
        forked = _run(alerts, blocker, "process", flush_size=32, n_planes=2)
        assert _counts(serial) == _counts(forked)

    @given(alert_traces(), blockers(), st.sampled_from([2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_per_plane_totals_partition_the_gateway_totals(
        self, alerts, blocker, n_planes
    ):
        stats = _run(alerts, blocker, flush_size=16, n_planes=n_planes)
        planes = stats.snapshot()["planes"]
        assert sum(p["processed"] for p in planes) == stats.input_alerts
        assert sum(p["blocked"] for p in planes) == stats.blocked_alerts
        assert sum(p["aggregates"] for p in planes) == stats.aggregates_emitted
        assert sum(p["clusters"] for p in planes) == stats.clusters_finalized
        regions = [r for p in planes for r in p["regions"]]
        assert len(regions) == len(set(regions))  # no region on two planes


class TestBatchReconciliation:
    @given(alert_traces(), blockers(), st.sampled_from([1, 4]))
    @settings(max_examples=40, deadline=None)
    def test_gateway_reconciles_with_pipeline(self, alerts, blocker, n_shards):
        stats = _run(alerts, blocker, n_shards=n_shards, flush_size=32)
        assert (
            stats.input_alerts,
            stats.blocked_alerts,
            stats.aggregates_emitted,
            stats.clusters_finalized,
        ) == _batch_counts(alerts, blocker)

    @given(alert_traces())
    @settings(max_examples=25, deadline=None)
    def test_aggregate_counts_partition_the_survivors(self, alerts):
        gateway = AlertGateway(_GRAPH, n_shards=3, flush_size=16,
                               aggregation_window=600.0,
                               correlation_window=600.0)
        gateway.ingest_batch(alerts)
        stats = gateway.drain()
        assert sum(a.count for a in gateway.aggregates) == stats.input_alerts
        assert sorted(
            alert_id for a in gateway.aggregates for alert_id in a.alert_ids
        ) == sorted(a.alert_id for a in alerts)
