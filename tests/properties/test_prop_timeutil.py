"""Property-based tests for time windows and bucketing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.timeutil import HOUR, TimeWindow, hour_bucket, iter_buckets

windows = st.tuples(
    st.floats(min_value=0, max_value=1e7, allow_nan=False),
    st.floats(min_value=0, max_value=1e7, allow_nan=False),
).map(lambda pair: TimeWindow(min(pair), max(pair)))


class TestTimeWindowProperties:
    @given(windows, st.floats(min_value=0, max_value=1e7, allow_nan=False))
    def test_contains_implies_within_bounds(self, window, t):
        if window.contains(t):
            assert window.start <= t < window.end

    @given(windows)
    def test_overlap_is_symmetric(self, window):
        other = window.shift(window.duration / 2 + 1.0)
        assert window.overlaps(other) == other.overlaps(window)

    @given(windows, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_shift_preserves_duration(self, window, offset):
        if window.start + offset >= 0:
            shifted = window.shift(offset)
            assert shifted.duration == pytest.approx(window.duration, abs=1e-6)

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_hour_bucket_consistent_with_window(self, t):
        bucket = hour_bucket(t)
        assert TimeWindow.hour(bucket).contains(t)

    @given(windows, st.floats(min_value=1e-3, max_value=1.0))
    def test_buckets_partition_window(self, window, width_fraction):
        # Width proportional to the window bounds the bucket count.
        width = max(window.duration * width_fraction, 1.0)
        buckets = list(iter_buckets(window, width))
        if window.duration == 0:
            assert buckets == []
            return
        assert buckets[0].start == window.start
        assert buckets[-1].end == window.end
        total = sum(b.duration for b in buckets)
        assert total == pytest.approx(window.duration, rel=1e-9, abs=1e-6)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_hour_windows_tile(self, index):
        assert TimeWindow.hour(index).end == TimeWindow.hour(index + 1).start
        assert TimeWindow.hour(index).duration == HOUR
