"""Property-based tests for anomaly detector interfaces."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.detection import (
    EwmaDetector,
    KSigmaDetector,
    MadDetector,
    RateOfChangeDetector,
    StaticThresholdDetector,
)

DETECTORS = [
    StaticThresholdDetector(50.0),
    StaticThresholdDetector(50.0, direction="below", min_consecutive=2),
    KSigmaDetector(),
    EwmaDetector(),
    MadDetector(),
    RateOfChangeDetector(max_rate=1.0),
]

value_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=80),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                       allow_infinity=False),
)


class TestDetectorContracts:
    @given(value_arrays)
    @settings(max_examples=40)
    def test_output_shape_and_dtype(self, values):
        times = np.arange(values.size, dtype=float) * 60.0
        for detector in DETECTORS:
            flags = detector.detect(times, values)
            assert flags.shape == values.shape
            assert flags.dtype == bool

    @given(value_arrays)
    @settings(max_examples=40)
    def test_detect_is_pure(self, values):
        times = np.arange(values.size, dtype=float) * 60.0
        for detector in DETECTORS:
            first = detector.detect(times, values)
            second = detector.detect(times, values)
            assert np.array_equal(first, second)

    @given(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
    @settings(max_examples=40)
    def test_constant_series_never_anomalous_for_adaptive(self, level):
        times = np.arange(50, dtype=float) * 60.0
        values = np.full(50, level)
        for detector in (KSigmaDetector(), EwmaDetector(), MadDetector(),
                         RateOfChangeDetector(max_rate=1.0)):
            assert not detector.detect(times, values).any()

    @given(value_arrays)
    @settings(max_examples=40)
    def test_latest_matches_detect_tail(self, values):
        times = np.arange(values.size, dtype=float) * 60.0
        for detector in DETECTORS:
            flags = detector.detect(times, values)
            expected = bool(flags[-1]) if flags.size else False
            assert detector.latest_is_anomalous(times, values) == expected
