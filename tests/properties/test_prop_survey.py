"""Property-based tests for the survey allocator."""

from hypothesis import given, settings, strategies as st

from repro.oce.survey import IMPACT_OPTIONS, SurveyInstrument


@st.composite
def target_triples(draw):
    """Random (a, b, c) with a+b+c == 18."""
    a = draw(st.integers(min_value=0, max_value=18))
    b = draw(st.integers(min_value=0, max_value=18 - a))
    return (a, b, 18 - a - b)


class TestAllocatorProperties:
    @given(target_triples(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_counts_always_match_targets(self, targets, seed):
        instrument = SurveyInstrument(
            seed=seed,
            impact_targets={"A1": targets},
            sop_targets={},
            reaction_targets={},
        )
        counts = instrument.run().counts("impact/A1", IMPACT_OPTIONS)
        assert tuple(counts.values()) == targets

    @given(target_triples(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50)
    def test_each_oce_answers_exactly_once(self, targets, seed):
        instrument = SurveyInstrument(
            seed=seed,
            impact_targets={"A1": targets},
            sop_targets={},
            reaction_targets={},
        )
        results = instrument.run()
        names = [r.oce_name for r in results.responses]
        assert len(names) == 18
        assert len(set(names)) == 18
