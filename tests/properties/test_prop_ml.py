"""Property-based tests for ML substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ml.lda import OnlineLDA
from repro.ml.logistic import LogisticRegression
from repro.ml.tokenize import tokenize
from repro.ml.vocab import Vocabulary


@st.composite
def corpora(draw):
    vocab_words = ["disk", "full", "cpu", "latency", "queue", "lag", "error",
                   "timeout", "commit", "probe"]
    n_docs = draw(st.integers(min_value=1, max_value=10))
    docs = []
    for _ in range(n_docs):
        words = draw(st.lists(st.sampled_from(vocab_words), min_size=1, max_size=12))
        docs.append(words)
    return docs


class TestLDAProperties:
    @given(corpora(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_topic_word_rows_are_distributions(self, docs, n_topics):
        vocab = Vocabulary()
        bows = vocab.docs_to_bows(docs)
        lda = OnlineLDA(n_topics=n_topics, vocab_size=len(vocab), seed=1)
        lda.partial_fit(bows)
        topic_word = lda.topic_word
        assert np.allclose(topic_word.sum(axis=1), 1.0)
        assert (topic_word >= 0).all()

    @given(corpora())
    @settings(max_examples=25, deadline=None)
    def test_transform_rows_are_distributions(self, docs):
        vocab = Vocabulary()
        bows = vocab.docs_to_bows(docs)
        lda = OnlineLDA(n_topics=3, vocab_size=len(vocab), seed=1)
        lda.partial_fit(bows)
        theta = lda.transform(bows)
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert (theta >= 0).all()

    @given(corpora())
    @settings(max_examples=25, deadline=None)
    def test_score_non_positive(self, docs):
        # A per-word log likelihood bound over a discrete space is <= 0.
        vocab = Vocabulary()
        bows = vocab.docs_to_bows(docs)
        lda = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        lda.partial_fit(bows)
        for bow in bows:
            assert lda.score(bow) <= 1e-9


class TestTokenizeProperties:
    @given(st.text(max_size=200))
    @settings(max_examples=60)
    def test_tokens_are_normalised(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert len(token) >= 2

    @given(st.text(max_size=200))
    @settings(max_examples=60)
    def test_idempotent_through_vocab(self, text):
        vocab = Vocabulary()
        tokens = tokenize(text)
        ids, counts = vocab.doc_to_bow(tokens)
        assert counts.sum() == len(tokens)


class TestLogisticProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_probability_bounds(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(60, 3))
        labels = (rng.random(60) > 0.5).astype(float)
        if labels.min() == labels.max():
            labels[0] = 1.0 - labels[0]
        model = LogisticRegression(max_iters=50).fit(features, labels)
        probs = model.predict_proba(features)
        assert ((probs >= 0.0) & (probs <= 1.0)).all()
