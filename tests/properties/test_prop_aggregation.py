"""Property-based tests for R1/R2 invariants."""

from hypothesis import given, settings, strategies as st

from repro.alerting.alert import Alert, Severity
from repro.core.mitigation.aggregation import AlertAggregator
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.workload.trace import AlertTrace


@st.composite
def alert_lists(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    alerts = []
    for i in range(n):
        strategy = draw(st.sampled_from(["s-1", "s-2", "s-3"]))
        region = draw(st.sampled_from(["region-A", "region-B"]))
        t = draw(st.floats(min_value=0, max_value=100_000, allow_nan=False))
        alerts.append(Alert(
            alert_id=f"a-{i}", strategy_id=strategy, strategy_name=strategy,
            title="t", description="d",
            severity=draw(st.sampled_from(list(Severity))),
            service="svc", microservice="m", region=region, datacenter="dc",
            channel="metric", occurred_at=t,
        ))
    return alerts


class TestAggregationProperties:
    @given(alert_lists(), st.floats(min_value=1.0, max_value=10_000.0))
    @settings(max_examples=50)
    def test_counts_preserved(self, alerts, window):
        aggregates = AlertAggregator(window).aggregate(alerts)
        assert sum(agg.count for agg in aggregates) == len(alerts)

    @given(alert_lists(), st.floats(min_value=1.0, max_value=10_000.0))
    @settings(max_examples=50)
    def test_alert_ids_partitioned(self, alerts, window):
        aggregates = AlertAggregator(window).aggregate(alerts)
        seen = [alert_id for agg in aggregates for alert_id in agg.alert_ids]
        assert sorted(seen) == sorted(a.alert_id for a in alerts)

    @given(alert_lists(), st.floats(min_value=1.0, max_value=10_000.0))
    @settings(max_examples=50)
    def test_groups_homogeneous(self, alerts, window):
        for agg in AlertAggregator(window).aggregate(alerts):
            members = [a for a in alerts if a.alert_id in agg.alert_ids]
            assert {m.strategy_id for m in members} == {agg.strategy_id}
            assert {m.region for m in members} == {agg.region}

    @given(alert_lists())
    @settings(max_examples=30)
    def test_wider_window_never_more_groups(self, alerts):
        narrow = len(AlertAggregator(60.0).aggregate(alerts))
        wide = len(AlertAggregator(6000.0).aggregate(alerts))
        assert wide <= narrow


class TestBlockingProperties:
    @given(alert_lists(), st.sets(st.sampled_from(["s-1", "s-2", "s-3"])))
    @settings(max_examples=50)
    def test_partition(self, alerts, blocked_strategies):
        trace = AlertTrace()
        trace.extend_alerts(alerts)
        blocker = AlertBlocker([BlockingRule(s) for s in blocked_strategies])
        passed, blocked = blocker.apply(trace)
        assert len(passed) + len(blocked) == len(alerts)
        for alert in blocked:
            assert alert.strategy_id in blocked_strategies
        for alert in passed.alerts:
            assert alert.strategy_id not in blocked_strategies
