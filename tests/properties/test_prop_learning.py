"""Property-based tests for online R1 rule learning.

Three invariants over randomized noisy traces:

* **TTL monotonicity** — a longer rule TTL can only grow the set of
  blocked alerts.  This holds because the learner's evidence is computed
  on the *pre-blocking* stream (so promotion/renewal/demotion-signal
  times are TTL-independent) and renewal is unconditional: a rule is
  live at ``t`` iff some evidence flush ``d <= t`` exists with
  ``t < d + ttl`` and no demotion signal in between, which is monotone
  in ``ttl``.
* **Replay equivalence** — applying the learner's recorded rule
  timeline (promote/renew/demote/expire events with their stream
  positions) to a plain batch :class:`AlertBlocker`, chunk by chunk at
  the recorded flush boundaries, reproduces the gateway's blocked count
  exactly: learned-rule *application* is the ordinary batch R1
  semantics, only the rule table's evolution is new.
* **Backend invariance** — the learned timeline and the volume
  accounting are identical on serial, thread, and process backends for
  every plane count, shard count, and flush size: learning happens at
  the gateway from deterministic per-plane digests, and deltas land at
  flush barriers, so where planes execute cannot change what is learned.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.alerting.alert import Alert, AlertState, Severity
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.streaming import AlertGateway, LearnerConfig
from repro.topology.graph import DependencyGraph

_REGIONS = ("region-A", "region-B")

#: Small thresholds so randomized traces can actually trigger learning.
_LEARNER = LearnerConfig(
    window_seconds=600.0, min_alerts=5, repeat_count=8, rule_ttl=900.0,
)


def _build_graph() -> DependencyGraph:
    graph = DependencyGraph()
    for name in ("m-1", "m-2", "m-3"):
        graph.add_microservice(name, service="svc")
    graph.add_dependency("m-1", "m-2")
    return graph


_GRAPH = _build_graph()


@st.composite
def noisy_traces(draw):
    """In-order traces mixing burst runs (learnable) with sparse events."""
    alerts: list[Alert] = []
    t = 0.0
    index = 0
    n_segments = draw(st.integers(min_value=1, max_value=6))
    for _ in range(n_segments):
        strategy = draw(st.sampled_from(("s-noisy-1", "s-noisy-2", "s-clean")))
        region = draw(st.sampled_from(_REGIONS))
        burst = draw(st.integers(min_value=1, max_value=30))
        gap = draw(st.floats(min_value=5.0, max_value=120.0))
        transient = draw(st.booleans())
        for _ in range(burst):
            alert = Alert(
                alert_id=f"p-{index:05d}",
                strategy_id=strategy,
                strategy_name=strategy,
                title="latency high",
                description="prop",
                severity=Severity.MINOR,
                service="svc",
                microservice=draw(st.sampled_from(("m-1", "m-2", "m-3"))),
                region=region,
                datacenter="dc",
                channel="metric",
                occurred_at=t,
            )
            if transient:
                alert.state = AlertState.CLEARED_AUTO
                alert.cleared_at = t + 30.0
            alerts.append(alert)
            index += 1
            t += gap
        t += draw(st.floats(min_value=0.0, max_value=1200.0))
    return alerts


def _run_learning(alerts, backend="serial", flush_size=16, n_shards=2,
                  n_planes=1, rule_ttl=_LEARNER.rule_ttl):
    config = LearnerConfig(
        window_seconds=_LEARNER.window_seconds,
        min_alerts=_LEARNER.min_alerts,
        repeat_count=_LEARNER.repeat_count,
        rule_ttl=rule_ttl,
        transient_fraction=_LEARNER.transient_fraction,
        demote_fraction=_LEARNER.demote_fraction,
    )
    gateway = AlertGateway(
        _GRAPH, blocker=AlertBlocker(), backend=backend, n_workers=2,
        n_shards=n_shards, n_planes=n_planes, flush_size=flush_size,
        aggregation_window=300.0, correlation_window=300.0,
        learn_rules=True, learner_config=config, retain_artifacts=False,
    )
    gateway.ingest_batch(alerts)
    stats = gateway.drain()
    return gateway, stats


def _event_log(gateway) -> list[tuple]:
    return [
        (e.kind, e.strategy_id, e.at_input, round(e.at_time, 6),
         None if e.expires_at is None else round(e.expires_at, 6))
        for e in gateway.learner.events
    ]


def _counts(stats) -> tuple:
    return (
        stats.input_alerts,
        stats.blocked_alerts,
        stats.aggregates_emitted,
        stats.clusters_finalized,
        stats.rules_promoted,
        stats.rules_renewed,
        stats.rules_demoted,
        stats.rules_expired,
    )


class TestTTLMonotonicity:
    @given(noisy_traces(),
           st.sampled_from([60.0, 300.0, 900.0]),
           st.sampled_from([2.0, 4.0]),
           st.sampled_from([4, 32]))
    @settings(max_examples=30, deadline=None)
    def test_blocked_volume_is_monotone_in_ttl(
        self, alerts, ttl, factor, flush_size
    ):
        _, short = _run_learning(alerts, flush_size=flush_size, rule_ttl=ttl)
        _, long = _run_learning(
            alerts, flush_size=flush_size, rule_ttl=ttl * factor,
        )
        assert short.blocked_alerts <= long.blocked_alerts
        # Promotion/demotion timelines are evidence-driven and therefore
        # TTL-independent; only expiry/renewal bookkeeping may differ.
        assert short.rules_promoted >= long.rules_promoted


class TestReplayEquivalence:
    @given(noisy_traces(), st.sampled_from([1, 7, 16, 64]))
    @settings(max_examples=30, deadline=None)
    def test_recorded_timeline_replays_to_the_same_blocked_count(
        self, alerts, flush_size
    ):
        gateway, stats = _run_learning(alerts, flush_size=flush_size)
        events = gateway.learner.events
        blocker = AlertBlocker()
        blocked = 0
        processed = 0
        cursor = 0
        for start in range(0, len(alerts), flush_size):
            chunk = alerts[start:start + flush_size]
            while cursor < len(events) and events[cursor].at_input <= processed:
                event = events[cursor]
                cursor += 1
                blocker.remove_strategy(event.strategy_id)
                if event.kind in ("promote", "renew"):
                    blocker.add(BlockingRule(
                        strategy_id=event.strategy_id,
                        reason=event.reason,
                        expires_at=event.expires_at,
                    ))
            blocked += sum(1 for alert in chunk if blocker.is_blocked(alert))
            processed += len(chunk)
        assert blocked == stats.blocked_alerts


class TestBackendInvariance:
    @given(noisy_traces(),
           st.sampled_from([1, 2]),
           st.sampled_from([1, 3]),
           st.sampled_from([4, 16, 64]))
    @settings(max_examples=25, deadline=None)
    def test_thread_learns_identically_to_serial(
        self, alerts, n_planes, n_shards, flush_size
    ):
        serial_gw, serial = _run_learning(
            alerts, "serial", flush_size, n_shards, n_planes,
        )
        thread_gw, threaded = _run_learning(
            alerts, "thread", flush_size, n_shards, n_planes,
        )
        assert _counts(serial) == _counts(threaded)
        assert _event_log(serial_gw) == _event_log(thread_gw)

    @given(noisy_traces(), st.sampled_from([1, 2]))
    @settings(max_examples=4, deadline=None)
    def test_process_learns_identically_to_serial(self, alerts, n_planes):
        serial_gw, serial = _run_learning(
            alerts, "serial", flush_size=16, n_planes=n_planes,
        )
        process_gw, forked = _run_learning(
            alerts, "process", flush_size=16, n_planes=n_planes,
        )
        assert _counts(serial) == _counts(forked)
        assert _event_log(serial_gw) == _event_log(process_gw)

    @given(noisy_traces(), st.sampled_from([2, 4]), st.sampled_from([8, 32]))
    @settings(max_examples=20, deadline=None)
    def test_plane_split_learns_identically_to_flat(
        self, alerts, n_planes, flush_size
    ):
        flat_gw, flat = _run_learning(alerts, flush_size=flush_size, n_planes=1)
        split_gw, split = _run_learning(
            alerts, flush_size=flush_size, n_planes=n_planes,
        )
        assert _counts(flat) == _counts(split)
        assert _event_log(flat_gw) == _event_log(split_gw)


class TestKeyWindowPrune:
    """Regression for the positional-cutoff prune bug: an early ``break``
    on the first in-window entry stranded stale pre-horizon counts
    whenever entries were not time-sorted (late out-of-order folds)."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5000.0,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=5000.0,
                  allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_prune_drops_every_pre_horizon_entry(self, entries, horizon):
        from repro.streaming.learning import _KeyWindow

        window = _KeyWindow()
        for at, seen, transient in entries:
            # seen >= transient, as real digests guarantee.
            window.add(at, seen + transient, transient)
        window.prune(horizon)
        assert all(at >= horizon for at, _, _ in window.entries)
        survivors = [e for e in entries if e[0] >= horizon]
        assert window.seen == sum(s + t for _, s, t in survivors)
        assert window.transient == sum(t for _, _, t in survivors)
        # Pruning is idempotent once the horizon has passed.
        before = (list(window.entries), window.seen, window.transient)
        window.prune(horizon)
        assert (window.entries, window.seen, window.transient) == before
