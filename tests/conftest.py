"""Shared fixtures: one topology, hub, and small trace per session.

Also registers the ``scale_chaos`` hypothesis profile: a seeded,
derandomized, higher-example run of the plane scale-out chaos harness,
selected in CI with ``HYPOTHESIS_PROFILE=scale_chaos`` so the dedicated
job explores a fixed, reproducible schedule corpus instead of a fresh
random one per run.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.telemetry import TelemetryHub
from repro.topology import TopologyConfig, generate_topology
from repro.workload import TraceConfig, TraceScale, generate_trace

settings.register_profile(
    "scale_chaos", max_examples=100, deadline=None, derandomize=True,
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture(scope="session")
def topology():
    """The default paper-scale topology (11 services, 192 microservices)."""
    return generate_topology(TopologyConfig(seed=42))


@pytest.fixture(scope="session")
def small_topology():
    """A smaller cloud for fast fault/monitoring tests."""
    return generate_topology(TopologyConfig(seed=7, n_microservices=24, n_regions=2))


@pytest.fixture()
def hub(small_topology):
    """A fresh telemetry hub over the small cloud (faults reset per test)."""
    return TelemetryHub(small_topology, seed=7)


@pytest.fixture(scope="session")
def smoke_trace(topology):
    """A 7-day smoke-scale trace over the default topology."""
    return generate_trace(TraceConfig(seed=42, scale=TraceScale.smoke()), topology)


@pytest.fixture(scope="session")
def default_trace(topology):
    """The 60-day default-scale trace used by mining/mitigation tests."""
    return generate_trace(TraceConfig(seed=42), topology)
