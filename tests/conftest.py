"""Shared fixtures: one topology, hub, and small trace per session."""

from __future__ import annotations

import pytest

from repro.telemetry import TelemetryHub
from repro.topology import TopologyConfig, generate_topology
from repro.workload import TraceConfig, TraceScale, generate_trace


@pytest.fixture(scope="session")
def topology():
    """The default paper-scale topology (11 services, 192 microservices)."""
    return generate_topology(TopologyConfig(seed=42))


@pytest.fixture(scope="session")
def small_topology():
    """A smaller cloud for fast fault/monitoring tests."""
    return generate_topology(TopologyConfig(seed=7, n_microservices=24, n_regions=2))


@pytest.fixture()
def hub(small_topology):
    """A fresh telemetry hub over the small cloud (faults reset per test)."""
    return TelemetryHub(small_topology, seed=7)


@pytest.fixture(scope="session")
def smoke_trace(topology):
    """A 7-day smoke-scale trace over the default topology."""
    return generate_trace(TraceConfig(seed=42, scale=TraceScale.smoke()), topology)


@pytest.fixture(scope="session")
def default_trace(topology):
    """The 60-day default-scale trace used by mining/mitigation tests."""
    return generate_trace(TraceConfig(seed=42), topology)
