"""Tests for the calibrated survey instrument (Figures 2 and 4)."""

import pytest

from repro.analysis import paper_reference as paper
from repro.common.errors import ValidationError
from repro.oce.engineer import ExperienceBand, build_panel
from repro.oce.survey import (
    IMPACT_OPTIONS,
    REACTION_OPTIONS,
    SOP_OPTIONS,
    SurveyInstrument,
)


@pytest.fixture(scope="module")
def results():
    return SurveyInstrument(seed=42).run()


class TestFigure2aCalibration:
    @pytest.mark.parametrize("pattern", sorted(paper.ANTIPATTERN_IMPACT))
    def test_counts_match_paper(self, results, pattern):
        counts = results.counts(f"impact/{pattern}", IMPACT_OPTIONS)
        assert tuple(counts.values()) == paper.ANTIPATTERN_IMPACT[pattern]

    def test_a1_unanimous_impact(self, results):
        # "All OCEs agree with the impact of unclear name or description."
        assert results.agreement_fraction("impact/A1", ("High", "Low")) == 1.0

    def test_a2_agreement_matches_paper_percentage(self, results):
        assert results.agreement_fraction("impact/A2", ("High", "Low")) == pytest.approx(
            16 / 18
        )

    def test_a3_high_share(self, results):
        # 72.2% of OCEs rate A3 impact high.
        assert results.agreement_fraction("impact/A3", ("High",)) == pytest.approx(13 / 18)


class TestFigure2bCalibration:
    @pytest.mark.parametrize("question", sorted(paper.SOP_HELPFULNESS))
    def test_counts_match_paper(self, results, question):
        counts = results.counts(f"sop/{question}", SOP_OPTIONS)
        assert tuple(counts.values()) == paper.SOP_HELPFULNESS[question]

    def test_q1_helpful_fraction(self, results):
        # Only 22.2% find SOPs helpful overall.
        assert results.agreement_fraction("sop/Q1", ("Helpful",)) == pytest.approx(4 / 18)


class TestFigure2cCalibration:
    @pytest.mark.parametrize("reaction", sorted(paper.REACTION_EFFECTIVENESS))
    def test_counts_match_paper(self, results, reaction):
        counts = results.counts(f"reaction/{reaction}", REACTION_OPTIONS)
        assert tuple(counts.values()) == paper.REACTION_EFFECTIVENESS[reaction]


class TestFigure4Crosstab:
    def test_all_senior_oces_answer_limited(self, results):
        crosstab = results.crosstab("sop/Q1")
        senior_row = crosstab[ExperienceBand.GT3]
        assert senior_row == {"Limited Help": 10}

    def test_senior_share_of_limited(self, results):
        crosstab = results.crosstab("sop/Q1")
        limited_total = sum(
            row.get("Limited Help", 0) for row in crosstab.values()
        )
        senior_limited = crosstab[ExperienceBand.GT3]["Limited Help"]
        assert senior_limited / limited_total == pytest.approx(
            paper.Q1_LIMITED_GT3_SHARE
        )


class TestInstrumentMechanics:
    def test_different_seeds_same_counts(self):
        counts_a = SurveyInstrument(seed=1).run().counts("impact/A1", IMPACT_OPTIONS)
        counts_b = SurveyInstrument(seed=2).run().counts("impact/A1", IMPACT_OPTIONS)
        assert counts_a == counts_b

    def test_different_seeds_shuffle_assignment(self):
        res_a = SurveyInstrument(seed=1).run()
        res_b = SurveyInstrument(seed=2).run()
        answers_a = {r.oce_name: r.answer for r in res_a.responses
                     if r.question_id == "impact/A2"}
        answers_b = {r.oce_name: r.answer for r in res_b.responses
                     if r.question_id == "impact/A2"}
        assert answers_a != answers_b

    def test_custom_targets(self):
        instrument = SurveyInstrument(
            seed=1, impact_targets={"A1": (18, 0, 0)},
            sop_targets={}, reaction_targets={},
        )
        counts = instrument.run().counts("impact/A1", IMPACT_OPTIONS)
        assert counts["High"] == 18

    def test_mismatched_targets_rejected(self):
        instrument = SurveyInstrument(
            seed=1, impact_targets={"A1": (5, 5, 5)},
            sop_targets={}, reaction_targets={},
        )
        with pytest.raises(ValidationError):
            instrument.run()

    def test_infeasible_constraint_rejected(self):
        # Q1 requires >= 10 Limited seats for the senior constraint.
        instrument = SurveyInstrument(
            seed=1, impact_targets={},
            sop_targets={"Q1": (18, 0, 0)}, reaction_targets={},
        )
        with pytest.raises(ValidationError):
            instrument.run()

    def test_unknown_answer_rejected_in_counts(self, results):
        with pytest.raises(ValidationError):
            results.counts("impact/A1", ("Yes", "No", "Maybe"))

    def test_agreement_requires_responses(self, results):
        with pytest.raises(ValidationError):
            results.agreement_fraction("impact/A9", ("High",))

    def test_panel_copy_returned(self):
        panel = build_panel()
        instrument = SurveyInstrument(panel=panel, seed=1)
        assert instrument.panel is not panel
        assert instrument.panel == panel
