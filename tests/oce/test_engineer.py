"""Tests for OCE agents and panel composition."""

import pytest

from repro.common.errors import ValidationError
from repro.oce.engineer import ExperienceBand, OnCallEngineer, build_panel


class TestExperienceBand:
    def test_seniors_faster(self):
        assert ExperienceBand.GT3.skill < ExperienceBand.LT1.skill

    def test_from_value(self):
        assert ExperienceBand.from_value(">3y") is ExperienceBand.GT3

    def test_from_value_unknown_rejected(self):
        with pytest.raises(ValidationError):
            ExperienceBand.from_value("10y")

    def test_labels(self):
        assert ExperienceBand.GT3.label == "more than 3 years"


class TestBuildPanel:
    def test_paper_mix(self):
        # §III: 10 OCEs >3y, 3 with 2-3y, 2 with 1-2y, 3 with <1y.
        panel = build_panel()
        assert len(panel) == 18
        by_band = {}
        for oce in panel:
            by_band[oce.band] = by_band.get(oce.band, 0) + 1
        assert by_band[ExperienceBand.GT3] == 10
        assert by_band[ExperienceBand.Y2TO3] == 3
        assert by_band[ExperienceBand.Y1TO2] == 2
        assert by_band[ExperienceBand.LT1] == 3

    def test_unique_names(self):
        panel = build_panel()
        assert len({oce.name for oce in panel}) == 18

    def test_custom_mix(self):
        panel = build_panel({">3y": 2, "<1y": 1})
        assert len(panel) == 3

    def test_empty_mix_rejected(self):
        with pytest.raises(ValidationError):
            build_panel({})

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            build_panel({">3y": -1})

    def test_engineer_requires_name(self):
        with pytest.raises(ValidationError):
            OnCallEngineer(name="", band=ExperienceBand.GT3)
