"""Tests for OCE team queueing."""

import pytest

from repro.common.errors import ValidationError
from repro.oce.engineer import ExperienceBand, OnCallEngineer
from repro.oce.processing import ProcessingModel
from repro.oce.team import OCETeam
from tests.oce.test_processing import make_alert, make_strategy


@pytest.fixture()
def team():
    engineers = [
        OnCallEngineer("a", ExperienceBand.GT3),
        OnCallEngineer("b", ExperienceBand.LT1),
    ]
    return OCETeam("team-db", engineers, ProcessingModel(seed=2))


class TestHandling:
    def test_assignment_round_robins_when_free(self, team):
        strategy = make_strategy()
        first = team.handle(make_alert("alert-1"), strategy, 0.0)
        second = team.handle(make_alert("alert-2"), strategy, 0.0)
        assert {first.oce_name, second.oce_name} == {"a", "b"}

    def test_queueing_delay_when_saturated(self, team):
        strategy = make_strategy()
        outcomes = [
            team.handle(make_alert(f"alert-{i}"), strategy, 0.0) for i in range(5)
        ]
        # The later alerts must wait for an engineer to free up.
        assert outcomes[-1].started_at > 0.0

    def test_backlog_accounting(self, team):
        strategy = make_strategy()
        assert team.backlog_seconds(0.0) == 0.0
        team.handle(make_alert(), strategy, 0.0)
        assert team.backlog_seconds(0.0) > 0.0

    def test_outcomes_recorded(self, team):
        team.handle(make_alert(), make_strategy(), 0.0)
        assert len(team.outcomes) == 1

    def test_hourly_capacity_positive(self, team):
        assert team.hourly_capacity(make_strategy()) > 0.0

    def test_capacity_shrinks_with_bad_quality(self, team):
        from repro.alerting.strategy import StrategyQuality

        clean = make_strategy()
        messy = make_strategy(StrategyQuality(title_clarity=0.0))
        assert team.hourly_capacity(messy) < team.hourly_capacity(clean)


class TestValidation:
    def test_empty_team_rejected(self):
        with pytest.raises(ValidationError):
            OCETeam("t", [], ProcessingModel())

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            OCETeam("", [OnCallEngineer("a", ExperienceBand.GT3)], ProcessingModel())
