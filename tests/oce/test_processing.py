"""Tests for the alert-processing time model."""

import pytest

from repro.alerting.alert import Alert, Severity
from repro.alerting.rules import LogKeywordRule
from repro.alerting.sop import SOPLibrary
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.oce.engineer import ExperienceBand, OnCallEngineer
from repro.oce.processing import ProcessingModel


def make_strategy(quality=None, severity=Severity.MINOR):
    return AlertStrategy(
        strategy_id="s-1",
        name="db_error_logs",
        service="database",
        microservice="database-api-00",
        rule=LogKeywordRule(),
        severity=severity,
        true_severity=severity,
        title="database-api-00: error logs burst detected",
        description="Errors burst.",
        quality=quality or StrategyQuality(),
    )


def make_alert(alert_id="alert-1"):
    return Alert(
        alert_id=alert_id, strategy_id="s-1", strategy_name="db_error_logs",
        title="t", description="d", severity=Severity.MINOR, service="database",
        microservice="database-api-00", region="region-A", datacenter="dc",
        channel="log", occurred_at=100.0,
    )


SENIOR = OnCallEngineer("senior", ExperienceBand.GT3)
JUNIOR = OnCallEngineer("junior", ExperienceBand.LT1)


class TestExpectedSeconds:
    def test_seniors_faster(self):
        model = ProcessingModel(seed=1)
        strategy = make_strategy()
        assert model.expected_seconds(strategy, SENIOR) < model.expected_seconds(
            strategy, JUNIOR
        )

    def test_unclear_title_slows_diagnosis(self):
        model = ProcessingModel(seed=1)
        clean = make_strategy()
        vague = make_strategy(StrategyQuality(title_clarity=0.0))
        assert model.expected_seconds(vague, SENIOR) > 2.0 * model.expected_seconds(
            clean, SENIOR
        )

    def test_every_quality_knob_increases_time(self):
        model = ProcessingModel(seed=1)
        baseline = model.expected_seconds(make_strategy(), SENIOR)
        for quality in (
            StrategyQuality(title_clarity=0.1),
            StrategyQuality(severity_bias=2),
            StrategyQuality(target_relevance=0.1),
            StrategyQuality(sensitivity=0.9),
        ):
            assert model.expected_seconds(make_strategy(quality), SENIOR) > baseline

    def test_severe_alerts_investigated_longer(self):
        model = ProcessingModel(seed=1)
        critical = make_strategy(severity=Severity.CRITICAL)
        warning = make_strategy(severity=Severity.WARNING)
        assert model.expected_seconds(critical, SENIOR) > model.expected_seconds(
            warning, SENIOR
        )

    def test_actionable_sop_speeds_up(self):
        library = SOPLibrary()
        strategy = make_strategy()
        library.build_default(strategy)
        with_sop = ProcessingModel(seed=1, sops=library)
        without = ProcessingModel(seed=1)
        assert with_sop.expected_seconds(strategy, SENIOR) < without.expected_seconds(
            strategy, SENIOR
        )


class TestProcess:
    def test_deterministic_per_alert_and_oce(self):
        model = ProcessingModel(seed=1)
        strategy = make_strategy()
        a = model.process(make_alert(), strategy, SENIOR, 100.0)
        b = model.process(make_alert(), strategy, SENIOR, 100.0)
        assert a.processing_seconds == b.processing_seconds

    def test_different_alerts_differ(self):
        model = ProcessingModel(seed=1)
        strategy = make_strategy()
        a = model.process(make_alert("alert-1"), strategy, SENIOR, 100.0)
        b = model.process(make_alert("alert-2"), strategy, SENIOR, 100.0)
        assert a.processing_seconds != b.processing_seconds

    def test_outcome_fields(self):
        model = ProcessingModel(seed=1)
        outcome = model.process(make_alert(), make_strategy(), SENIOR, 100.0)
        assert outcome.oce_name == "senior"
        assert outcome.finished_at == outcome.started_at + outcome.processing_seconds
        assert outcome.processing_seconds > 0

    def test_noise_is_bounded(self):
        model = ProcessingModel(seed=1)
        strategy = make_strategy()
        expected = model.expected_seconds(strategy, SENIOR)
        times = [
            model.process(make_alert(f"alert-{i}"), strategy, SENIOR, 0.0).processing_seconds
            for i in range(100)
        ]
        mean = sum(times) / len(times)
        assert 0.7 * expected < mean < 1.5 * expected
