"""Consistency checks on the paper constants."""

from repro.analysis import paper_reference as paper


class TestSurveyTables:
    def test_impact_rows_sum_to_panel(self):
        for pattern, counts in paper.ANTIPATTERN_IMPACT.items():
            assert sum(counts) == paper.N_OCES, pattern

    def test_sop_rows_sum_to_panel(self):
        for question, counts in paper.SOP_HELPFULNESS.items():
            assert sum(counts) == paper.N_OCES, question

    def test_reaction_rows_sum_to_panel(self):
        for reaction, counts in paper.REACTION_EFFECTIVENESS.items():
            assert sum(counts) == paper.N_OCES, reaction

    def test_experience_mix_sums_to_panel(self):
        assert sum(paper.EXPERIENCE_MIX.values()) == paper.N_OCES

    def test_six_antipatterns_four_reactions(self):
        assert len(paper.ANTIPATTERN_NAMES) == 6
        assert len(paper.REACTION_NAMES) == 4

    def test_figure4_fact_consistent_with_figure2b(self):
        helpful, limited, not_helpful = paper.SOP_HELPFULNESS["Q1"]
        assert paper.Q1_LIMITED_GT3_COUNT <= limited
        assert paper.Q1_LIMITED_GT3_SHARE == paper.Q1_LIMITED_GT3_COUNT / limited


class TestStudyFrame:
    def test_mining_outcome_counts(self):
        assert paper.INDIVIDUAL_CANDIDATES == 5
        assert paper.INDIVIDUAL_CONFIRMED == 4
        assert paper.COLLECTIVE_CONFIRMED == 2

    def test_storm_example_internally_consistent(self):
        storm = paper.STORM_EXAMPLE
        assert storm["end_hour"] - storm["start_hour"] == 5
        assert storm["total_alerts"] == 2751
        assert storm["effective_strategies"] == 200

    def test_thresholds(self):
        assert paper.STORM_THRESHOLD < paper.COLLECTIVE_CANDIDATE_THRESHOLD
