"""Tests for ASCII figure rendering."""

import pytest

from repro.analysis.figures import render_bar_survey, render_hourly_series, render_table
from repro.common.errors import ValidationError


class TestBarSurvey:
    def test_renders_counts(self):
        text = render_bar_survey(
            "Impact", {"A1": {"High": 11, "Low": 7, "No Impact": 0}},
            ("High", "Low", "No Impact"),
        )
        assert "A1" in text
        assert "11" in text and " 7" in text

    def test_legend_present(self):
        text = render_bar_survey("T", {}, ("High", "Low"))
        assert "legend" in text
        assert "#=High" in text

    def test_empty_row_handled(self):
        text = render_bar_survey("T", {"A1": {}}, ("High",))
        assert "no responses" in text

    def test_too_many_options_rejected(self):
        with pytest.raises(ValidationError):
            render_bar_survey("T", {}, ("a", "b", "c", "d"))

    def test_bar_proportions(self):
        text = render_bar_survey(
            "T", {"X": {"High": 18, "Low": 0}}, ("High", "Low"),
        )
        bar_line = [line for line in text.splitlines() if line.strip().startswith("X")][0]
        assert "#" * 30 in bar_line
        assert "=" not in bar_line.split("|")[1]


class TestHourlySeries:
    def test_renders_totals(self):
        text = render_hourly_series(
            "Storm", [7, 8], {"HAProxy": [100, 120], "Others": [300, 310]},
        )
        assert "220" in text  # HAProxy total
        assert "610" in text  # Others total

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            render_hourly_series("T", [7, 8], {"X": [1]})


class TestTable:
    def test_alignment(self):
        text = render_table(("a", "long_header"), [("1", "2")])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].index("long_header") == lines[2].index("2")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            render_table(("a", "b"), [("1",)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table((), [])
