"""Tests for paper-vs-measured comparison rendering."""

from repro.analysis.report import ComparisonRow, render_comparison


class TestComparison:
    def test_renders_columns(self):
        text = render_comparison("T", [
            ComparisonRow("total alerts", 2751, 2751, "exact"),
        ])
        assert "metric" in text
        assert "2,751" in text
        assert "exact" in text

    def test_float_formatting(self):
        row = ComparisonRow("share", 0.30, 0.293)
        _, paper_cell, measured_cell, _ = row.formatted()
        assert paper_cell == "0.3"
        assert measured_cell == "0.29"

    def test_tiny_float_formatting(self):
        row = ComparisonRow("rate", 0.0001, 0.0002)
        _, paper_cell, _, _ = row.formatted()
        assert paper_cell == "0.0001"

    def test_string_passthrough(self):
        row = ComparisonRow("winner", "HAProxy", "HAProxy")
        assert row.formatted()[1] == "HAProxy"

    def test_int_thousands_separator(self):
        assert ComparisonRow("n", 4000000, 0).formatted()[1] == "4,000,000"
