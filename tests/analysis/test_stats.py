"""Tests for trace statistics."""

import pytest

from repro.alerting.alert import AlertState, Severity
from repro.analysis.stats import compute_trace_stats
from repro.common.errors import ValidationError
from repro.common.timeutil import DAY
from tests.workload.test_trace import make_alert


class TestComputeStats:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            compute_trace_stats([])

    def test_counts(self):
        alerts = [make_alert("a-1", 0.0), make_alert("a-2", DAY)]
        stats = compute_trace_stats(alerts)
        assert stats.n_alerts == 2
        assert stats.n_strategies == 1
        assert stats.span_seconds == DAY
        assert stats.alerts_per_day == pytest.approx(2.0)

    def test_single_alert_span(self):
        stats = compute_trace_stats([make_alert("a-1", 100.0)])
        assert stats.span_seconds == 0.0
        assert stats.alerts_per_day == 1.0

    def test_groupings(self):
        alerts = [make_alert("a-1", 0.0), make_alert("a-2", 10.0, region="region-B")]
        alerts[0].state = AlertState.CLEARED_AUTO
        stats = compute_trace_stats(alerts)
        assert stats.n_regions == 2
        assert stats.by_severity[Severity.MINOR] == 2
        assert stats.by_state[AlertState.CLEARED_AUTO] == 1
        assert stats.by_channel["log"] == 2

    def test_render_mentions_volume(self):
        stats = compute_trace_stats([make_alert("a-1", 0.0)])
        assert "alerts: 1" in stats.render()

    def test_trace_level(self, default_trace):
        stats = compute_trace_stats(default_trace.alerts)
        assert stats.n_alerts == len(default_trace)
        assert stats.n_regions == 3
        assert stats.n_strategies <= len(default_trace.strategies)
