"""Tests for the vocabulary."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.ml.vocab import Vocabulary


class TestGrowth:
    def test_add_assigns_sequential_ids(self):
        vocab = Vocabulary()
        assert vocab.add("disk") == 0
        assert vocab.add("full") == 1
        assert vocab.add("disk") == 0
        assert len(vocab) == 2

    def test_contains_and_lookup(self):
        vocab = Vocabulary()
        vocab.add("disk")
        assert "disk" in vocab
        assert vocab.id_of("disk") == 0
        assert vocab.token_of(0) == "disk"
        assert vocab.id_of("ghost") is None

    def test_token_of_out_of_range(self):
        with pytest.raises(ValidationError):
            Vocabulary().token_of(0)

    def test_empty_token_rejected(self):
        with pytest.raises(ValidationError):
            Vocabulary().add("")


class TestFreeze:
    def test_frozen_drops_new_tokens(self):
        vocab = Vocabulary()
        vocab.add("known")
        vocab.freeze()
        assert vocab.add("new") is None
        assert len(vocab) == 1
        assert vocab.add("known") == 0


class TestBow:
    def test_doc_to_bow_counts(self):
        vocab = Vocabulary()
        ids, counts = vocab.doc_to_bow(["disk", "full", "disk"])
        assert ids.tolist() == [0, 1]
        assert counts.tolist() == [2, 1]

    def test_empty_doc(self):
        ids, counts = Vocabulary().doc_to_bow([])
        assert ids.size == 0 and counts.size == 0

    def test_frozen_bow_drops_unknown(self):
        vocab = Vocabulary()
        vocab.add("disk")
        vocab.freeze()
        ids, counts = vocab.doc_to_bow(["disk", "ghost"])
        assert ids.tolist() == [0]
        assert counts.tolist() == [1]

    def test_docs_to_bows(self):
        vocab = Vocabulary()
        bows = vocab.docs_to_bows([["a", "b"], ["b", "c"]])
        assert len(bows) == 2
        assert len(vocab) == 3
        assert np.array_equal(bows[1][0], np.array([1, 2]))
