"""Tests for online variational LDA."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.ml.lda import OnlineLDA
from repro.ml.tokenize import tokenize
from repro.ml.vocab import Vocabulary


@pytest.fixture()
def corpus():
    vocab = Vocabulary()
    topic_a = "disk full block storage allocate blocks failed volume"
    topic_b = "consumer lag kafka queue backlog messages broker partition"
    docs = [tokenize(topic_a) for _ in range(30)] + [tokenize(topic_b) for _ in range(30)]
    return vocab, vocab.docs_to_bows(docs)


class TestLearning:
    def test_separates_two_topics(self, corpus):
        vocab, bows = corpus
        lda = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        for start in range(0, len(bows), 10):
            lda.partial_fit(bows[start:start + 10])
        theta = lda.transform([bows[0], bows[-1]])
        assert theta[0].argmax() != theta[1].argmax()
        assert theta[0].max() > 0.8
        assert theta[1].max() > 0.8

    def test_topic_word_normalised(self, corpus):
        vocab, bows = corpus
        lda = OnlineLDA(n_topics=3, vocab_size=len(vocab), seed=1)
        lda.partial_fit(bows[:20])
        assert np.allclose(lda.topic_word.sum(axis=1), 1.0)

    def test_updates_counted(self, corpus):
        vocab, bows = corpus
        lda = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        lda.partial_fit(bows[:5])
        lda.partial_fit(bows[5:10])
        assert lda.updates == 2

    def test_top_words_align_with_topics(self, corpus):
        vocab, bows = corpus
        lda = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        for start in range(0, len(bows), 10):
            lda.partial_fit(bows[start:start + 10])
        theta = lda.transform([bows[0]])
        disk_topic = int(theta[0].argmax())
        top = {vocab.token_of(i) for i in lda.top_words(disk_topic, n=5)}
        assert "disk" in top or "storage" in top

    def test_perplexity_improves_with_training(self, corpus):
        vocab, bows = corpus
        untrained = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        early = untrained.perplexity(bows[:10])
        trained = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        for start in range(0, len(bows), 10):
            trained.partial_fit(bows[start:start + 10])
        late = trained.perplexity(bows[:10])
        assert late < early


class TestNovelty:
    def test_novel_document_scores_low(self, corpus):
        vocab, bows = corpus
        lda = OnlineLDA(n_topics=2, vocab_size=len(vocab), seed=1)
        for start in range(0, len(bows), 10):
            lda.partial_fit(bows[start:start + 10])
        in_model = lda.score(bows[0])
        novel_doc = vocab.doc_to_bow(tokenize("gpu thermal runaway xid nvlink errors"))
        lda.grow_vocab(len(vocab))
        assert lda.score(novel_doc) < in_model - 5.0


class TestVocabGrowth:
    def test_grow_extends_columns(self, corpus):
        vocab, bows = corpus
        lda = OnlineLDA(n_topics=2, vocab_size=10, seed=1)
        lda.grow_vocab(len(vocab))
        assert lda.vocab_size == len(vocab)
        lda.partial_fit(bows[:5])  # must not raise

    def test_shrink_rejected(self):
        lda = OnlineLDA(n_topics=2, vocab_size=10, seed=1)
        with pytest.raises(ValidationError):
            lda.grow_vocab(5)

    def test_out_of_vocab_document_rejected(self):
        lda = OnlineLDA(n_topics=2, vocab_size=3, seed=1)
        doc = (np.array([5]), np.array([1]))
        with pytest.raises(ValidationError):
            lda.partial_fit([doc])


class TestValidation:
    def test_empty_batch_rejected(self):
        lda = OnlineLDA(n_topics=2, vocab_size=3, seed=1)
        with pytest.raises(ValidationError):
            lda.partial_fit([])

    def test_bad_kappa_rejected(self):
        with pytest.raises(ValidationError):
            OnlineLDA(n_topics=2, vocab_size=3, kappa=0.3)

    def test_topic_out_of_range(self):
        lda = OnlineLDA(n_topics=2, vocab_size=3, seed=1)
        with pytest.raises(ValidationError):
            lda.top_words(5)

    def test_empty_doc_scores_zero(self):
        lda = OnlineLDA(n_topics=2, vocab_size=3, seed=1)
        assert lda.score((np.empty(0, dtype=int), np.empty(0, dtype=int))) == 0.0

    def test_perplexity_of_empty_rejected(self):
        lda = OnlineLDA(n_topics=2, vocab_size=3, seed=1)
        with pytest.raises(ValidationError):
            lda.perplexity([(np.empty(0, dtype=int), np.empty(0, dtype=int))])
