"""Unit tests for the hashing-trick topic sketch (LDA-free R4 scoring).

The differential harness compares sketch-vs-LDA verdicts end to end;
these tests pin the component contracts: stable hashing, commutative
folding, the window/threshold discipline, and exact checkpoint
round-trips.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.ml.sketch import (
    DEFAULT_SKETCH_BUCKETS,
    HashingTopicSketch,
    SketchEmergingDetector,
    SketchWindowScorer,
    alert_document,
    hash_document,
)
from repro.ml.tokenize import tokenize

from tests.streaming.conftest import make_alert


class TestHashing:
    def test_hashing_is_stable_and_sorted(self):
        tokens = tokenize("disk full on database-api-00 commit failed disk")
        ids, counts = hash_document(tokens)
        assert ids == tuple(sorted(ids))
        assert hash_document(tokens) == (ids, counts)
        assert sum(counts) == len(tokens)

    def test_buckets_respect_the_modulus(self):
        ids, _ = hash_document(tokenize("alpha beta gamma delta"), n_buckets=7)
        assert all(0 <= bucket < 7 for bucket in ids)

    def test_alert_document_covers_the_lda_fields(self):
        alert = make_alert(0.0, title="disk usage over threshold")
        document = alert_document(alert)
        for piece in (alert.strategy_name, "disk", alert.microservice,
                      alert.service):
            assert any(piece.split("-")[0] in token for token in document)

    def test_document_recipe_matches_the_batch_detector(self):
        from repro.core.mitigation.emerging import EmergingAlertDetector

        alert = make_alert(0.0)
        assert EmergingAlertDetector.document_of(alert) == alert_document(alert)


class TestHashingTopicSketch:
    def test_empty_document_scores_zero(self):
        assert HashingTopicSketch().score((), ()) == 0.0

    def test_absorbed_documents_score_higher_than_novel_ones(self):
        sketch = HashingTopicSketch(n_buckets=512)
        familiar = hash_document(tokenize("disk full on storage node"), 512)
        sketch.partial_fit([familiar] * 50)
        novel = hash_document(
            tokenize("entirely unprecedented quantum flux anomaly"), 512,
        )
        assert sketch.score(*familiar) > sketch.score(*novel)

    def test_folding_is_commutative(self):
        docs = [
            hash_document(tokenize(text), 256)
            for text in ("a b c", "c d e", "e f a", "b b b")
        ]
        forward, backward = HashingTopicSketch(256), HashingTopicSketch(256)
        forward.partial_fit(docs)
        backward.partial_fit(list(reversed(docs)))
        assert forward.export_state() == backward.export_state()
        probe = hash_document(tokenize("a c e"), 256)
        assert forward.score(*probe) == backward.score(*probe)

    def test_state_round_trip_is_exact(self):
        sketch = HashingTopicSketch(n_buckets=64)
        sketch.partial_fit([hash_document(tokenize("x y z x"), 64)])
        clone = HashingTopicSketch(n_buckets=64)
        clone.restore_state(sketch.export_state())
        probe = hash_document(tokenize("x q"), 64)
        assert clone.score(*probe) == sketch.score(*probe)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValidationError):
            HashingTopicSketch(n_buckets=0)
        with pytest.raises(ValidationError):
            HashingTopicSketch(smoothing=0.0)


def _doc(at: float, strategy: str, text: str, n_buckets=DEFAULT_SKETCH_BUCKETS):
    ids, counts = hash_document(tokenize(text), n_buckets)
    return (at, strategy, ids, counts)


class TestSketchWindowScorer:
    def test_no_flags_during_warmup(self):
        scorer = SketchWindowScorer(window_seconds=100.0, warmup_windows=3)
        for index in range(3):
            scorer.add(_doc(index * 100.0 + 1.0, "s-1", "routine latency alert"))
        scorer.advance(301.0)
        scorer.finish()
        assert scorer.flags == []

    def test_novel_document_after_warmup_is_flagged(self):
        # Small history cap: the cold-start windows (where everything is
        # maximally novel) must age out of the threshold quantile before
        # a genuinely novel late document can clear quantile + gap.
        scorer = SketchWindowScorer(
            window_seconds=100.0, warmup_windows=2, min_novelty_gap=0.5,
            history_limit=30,
        )
        for index in range(100):
            scorer.add(_doc(index * 10.0, "s-routine",
                            "disk usage over threshold on storage node"))
        scorer.add(_doc(1005.0, "s-novel",
                        "unprecedented quantum flux catastrophic anomaly"))
        scorer.advance(1200.0)
        scorer.finish()
        assert any(flag.strategy_id == "s-novel" for flag in scorer.flags)
        assert all(flag.strategy_id != "s-routine" for flag in scorer.flags)

    def test_incremental_advance_matches_one_shot(self):
        docs = [
            _doc(at, f"s-{int(at) % 3}", f"alert text variant {int(at) % 5}")
            for at in [float(x) for x in range(0, 1000, 7)]
        ]
        one_shot = SketchWindowScorer(window_seconds=100.0, warmup_windows=2)
        for doc in docs:
            one_shot.add(doc)
        one_shot.advance(docs[-1][0])
        one_shot.finish()
        incremental = SketchWindowScorer(window_seconds=100.0, warmup_windows=2)
        for doc in docs:
            incremental.add(doc)
            incremental.advance(doc[0])
        incremental.finish()
        assert incremental.flags == one_shot.flags
        assert incremental.export_state() == one_shot.export_state()

    def test_empty_documents_are_dropped(self):
        scorer = SketchWindowScorer(window_seconds=100.0)
        scorer.add((5.0, "s-1", (), ()))
        scorer.finish()
        assert scorer.export_state()["start"] is None

    def test_state_round_trip_continues_identically(self):
        docs = [
            _doc(at, "s-1", f"alert variant {int(at) % 4}")
            for at in [float(x) for x in range(0, 800, 11)]
        ]
        cut = len(docs) // 2
        straight = SketchWindowScorer(window_seconds=100.0, warmup_windows=2)
        for doc in docs:
            straight.add(doc)
            straight.advance(doc[0])
        straight.finish()
        first = SketchWindowScorer(window_seconds=100.0, warmup_windows=2)
        for doc in docs[:cut]:
            first.add(doc)
            first.advance(doc[0])
        resumed = SketchWindowScorer(window_seconds=100.0, warmup_windows=2)
        resumed.restore_state(first.export_state())
        for doc in docs[cut:]:
            resumed.add(doc)
            resumed.advance(doc[0])
        resumed.finish()
        assert resumed.export_state() == straight.export_state()


class TestSketchEmergingDetector:
    def test_batch_run_flags_a_novel_burst(self):
        alerts = [
            make_alert(at, strategy_id="s-routine",
                       title="disk usage over threshold")
            for at in [float(x) for x in range(0, 30_000, 60)]
        ] + [
            make_alert(28_000.0 + i, strategy_id="s-novel",
                       title="unprecedented catastrophic quantum anomaly")
            for i in range(3)
        ]
        flags = SketchEmergingDetector(
            window_seconds=3600.0, warmup_windows=2, min_novelty_gap=0.5,
            history_limit=60,
        ).run(alerts)
        assert any(flag.strategy_id == "s-novel" for flag in flags)
