"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.ml.logistic import LogisticRegression


@pytest.fixture()
def separable():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(500, 4))
    weights = np.array([3.0, -2.0, 0.5, 0.0])
    labels = (features @ weights + 0.2 > 0).astype(float)
    return features, labels


class TestFit:
    def test_learns_separable_data(self, separable):
        features, labels = separable
        model = LogisticRegression().fit(features, labels)
        assert model.accuracy(features, labels) > 0.95

    def test_probabilities_in_range(self, separable):
        features, labels = separable
        model = LogisticRegression().fit(features, labels)
        probs = model.predict_proba(features)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_single_row_prediction(self, separable):
        features, labels = separable
        model = LogisticRegression().fit(features, labels)
        assert model.predict_proba(features[0]).shape == (1,)

    def test_l2_shrinks_weights(self, separable):
        features, labels = separable
        light = LogisticRegression(l2=1e-4).fit(features, labels)
        heavy = LogisticRegression(l2=0.5).fit(features, labels)
        assert np.abs(heavy.weights).sum() < np.abs(light.weights).sum()

    def test_constant_feature_tolerated(self):
        features = np.ones((50, 2))
        features[:, 1] = np.arange(50)
        labels = (features[:, 1] > 25).astype(float)
        model = LogisticRegression().fit(features, labels)
        assert model.accuracy(features, labels) > 0.9


class TestValidation:
    def test_unfitted_predict_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_label_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_non_binary_labels_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.zeros((3, 2)), np.array([0.0, 0.5, 1.0]))

    def test_one_d_features_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.zeros(5), np.zeros(5))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression(l2=-1.0)

    def test_fitted_flag(self, separable):
        features, labels = separable
        model = LogisticRegression()
        assert not model.fitted
        model.fit(features, labels)
        assert model.fitted
