"""Tests for the tokenizer."""

from repro.ml.tokenize import STOPWORDS, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Disk Full error") == ["disk", "full", "error"]

    def test_component_names_survive(self):
        tokens = tokenize("block-storage-api-10 failed")
        assert "block-storage-api-10" in tokens

    def test_underscored_names_survive(self):
        tokens = tokenize("haproxy_process_number_warning fired")
        assert "haproxy_process_number_warning" in tokens

    def test_stopwords_removed(self):
        tokens = tokenize("the disk is full")
        assert "the" not in tokens
        assert "is" not in tokens

    def test_stopwords_kept_when_disabled(self):
        tokens = tokenize("the disk", drop_stopwords=False)
        assert "the" in tokens

    def test_min_length(self):
        assert tokenize("a b cd", drop_stopwords=False, min_length=2) == ["cd"]

    def test_case_folding(self):
        assert tokenize("ERROR Error error") == ["error", "error", "error"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_punctuation_split(self):
        assert tokenize("failed: timeout, retry!") == ["failed", "timeout", "retry"]

    def test_stopword_set_is_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)
