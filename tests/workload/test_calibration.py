"""Tests for trace scale presets."""

import pytest

from repro.analysis import paper_reference as paper
from repro.common.errors import ValidationError
from repro.workload.calibration import TraceScale


class TestPaperScale:
    def test_matches_paper_frame(self):
        scale = TraceScale.paper()
        assert scale.days == 730
        assert scale.n_strategies == paper.N_STRATEGIES
        assert scale.target_total_alerts == paper.N_ALERTS_TOTAL

    def test_per_strategy_rate(self):
        scale = TraceScale.paper()
        assert scale.alerts_per_strategy_per_day == pytest.approx(2.726, abs=0.01)


class TestDefaultScale:
    def test_rate_preserved(self):
        # The scale-down keeps alerts/strategy/day constant.
        assert TraceScale.default().alerts_per_strategy_per_day == pytest.approx(
            TraceScale.paper().alerts_per_strategy_per_day, rel=0.01
        )

    def test_smaller_than_paper(self):
        assert TraceScale.default().target_total_alerts < paper.N_ALERTS_TOTAL / 10


class TestSmokeScale:
    def test_tiny(self):
        scale = TraceScale.smoke()
        assert scale.days == 7
        assert scale.target_total_alerts < 5000


class TestValidation:
    def test_bad_days_rejected(self):
        with pytest.raises(ValidationError):
            TraceScale(days=0, n_strategies=10, target_total_alerts=100)

    def test_span_seconds(self):
        assert TraceScale(days=2, n_strategies=1, target_total_alerts=1).span_seconds == 2 * 86400
