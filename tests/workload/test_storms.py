"""Tests for the representative Figure 3 storm."""

import pytest

from repro.analysis import paper_reference as paper
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, hour_bucket
from repro.workload.storms import StormConfig, build_representative_storm


@pytest.fixture(scope="module")
def storm(topology):
    return build_representative_storm(StormConfig(seed=42), topology)


class TestShape:
    def test_total_alerts_exact(self, storm):
        assert len(storm) == paper.STORM_EXAMPLE["total_alerts"]

    def test_effective_strategies(self, storm):
        used = {a.strategy_id for a in storm.alerts}
        assert len(used) == paper.STORM_EXAMPLE["effective_strategies"]

    def test_window_is_five_hours(self, storm):
        config = StormConfig()
        hours = {hour_bucket(a.occurred_at) for a in storm.alerts}
        first = config.day * 24 + config.start_hour
        assert hours == set(range(first, first + config.n_hours))

    def test_top_strategy_is_haproxy_warning(self, storm):
        by_strategy = storm.by_strategy()
        top = max(by_strategy, key=lambda sid: len(by_strategy[sid]))
        assert storm.strategies[top].name == paper.STORM_EXAMPLE["top_strategy"]

    def test_haproxy_share_about_30_percent(self, storm):
        haproxy = [a for a in storm.alerts
                   if a.strategy_name == paper.STORM_EXAMPLE["top_strategy"]]
        share = len(haproxy) / len(storm)
        assert share == pytest.approx(0.30, abs=0.04)

    def test_haproxy_share_per_hour(self, storm):
        config = StormConfig()
        first = config.day * 24 + config.start_hour
        for hour in range(first, first + config.n_hours):
            hour_alerts = [a for a in storm.alerts if hour_bucket(a.occurred_at) == hour]
            haproxy = [a for a in hour_alerts
                       if a.strategy_name == paper.STORM_EXAMPLE["top_strategy"]]
            assert len(haproxy) / len(hour_alerts) == pytest.approx(0.30, abs=0.06)

    def test_haproxy_is_warning_level(self, storm):
        # "it is only a WARNING level alert, i.e., the lowest level"
        haproxy = next(a for a in storm.alerts
                       if a.strategy_name == paper.STORM_EXAMPLE["top_strategy"])
        assert haproxy.severity.name == "WARNING"

    def test_kafka_is_second(self, storm):
        by_strategy = storm.by_strategy()
        ranked = sorted(by_strategy, key=lambda sid: -len(by_strategy[sid]))
        assert storm.strategies[ranked[1]].name == "kafka_consumer_lag_high"

    def test_ground_truth_cascade_attached(self, storm):
        assert any(f.is_root for f in storm.faults)
        assert any(not f.is_root for f in storm.faults)


class TestDetectability:
    def test_storm_detected_by_mining(self, storm):
        from repro.core.antipatterns.mining import detect_storms

        episodes = detect_storms(storm)
        assert len(episodes) == 1
        episode = episodes[0]
        assert episode.n_hours == StormConfig().n_hours
        assert episode.total_alerts == len(storm)

    def test_repeating_detected_in_group(self, storm):
        from repro.core.antipatterns.collective import RepeatingAlertsDetector

        window = StormConfig().window
        alerts = storm.alerts_in(window)
        findings = RepeatingAlertsDetector().detect_in_group(alerts, "storm")
        flagged = {f.subject for f in findings}
        assert "strategy-haproxy" in flagged

    def test_cascading_detected_in_group(self, storm, topology):
        from repro.core.antipatterns.collective import CascadingAlertsDetector

        alerts = storm.alerts_in(StormConfig().window)
        verdict = CascadingAlertsDetector(topology.graph).detect_in_group(alerts, "storm")
        assert verdict is not None


class TestConfig:
    def test_deterministic(self, topology):
        a = build_representative_storm(StormConfig(seed=3), topology)
        b = build_representative_storm(StormConfig(seed=3), topology)
        assert len(a) == len(b)
        assert a.alerts[0].occurred_at == b.alerts[0].occurred_at

    def test_bad_shares_rejected(self):
        with pytest.raises(ValidationError):
            StormConfig(top_share=0.7, second_share=0.4)

    def test_too_few_strategies_rejected(self):
        with pytest.raises(ValidationError):
            StormConfig(n_strategies=2)

    def test_window_property(self):
        config = StormConfig(day=1, start_hour=7, n_hours=5)
        assert config.window.start == 24 * HOUR + 7 * HOUR
        assert config.window.duration == 5 * HOUR
