"""Tests for the rate-driven trace generator."""

import pytest

from repro.alerting.alert import AlertState
from repro.common.timeutil import DAY
from repro.workload.generator import TraceConfig, TraceGenerator, generate_trace
from repro.workload.calibration import TraceScale


class TestVolume:
    def test_total_close_to_target(self, default_trace):
        target = TraceScale.default().target_total_alerts
        assert abs(len(default_trace) - target) / target < 0.15

    def test_span_within_scale(self, default_trace):
        window = default_trace.window()
        assert window.end <= TraceScale.default().span_seconds + DAY

    def test_all_strategies_registered(self, default_trace):
        assert len(default_trace.strategies) == TraceScale.default().n_strategies

    def test_alerts_sorted(self, default_trace):
        times = [a.occurred_at for a in default_trace.alerts]
        assert times == sorted(times)

    def test_alert_ids_unique(self, smoke_trace):
        ids = [a.alert_id for a in smoke_trace.alerts]
        assert len(ids) == len(set(ids))


class TestLifecycle:
    def test_all_alerts_cleared(self, smoke_trace):
        assert all(a.cleared_at is not None for a in smoke_trace.alerts)

    def test_manual_share_follows_true_severity(self, default_trace):
        from repro.alerting.alert import Severity

        shares = {}
        for severity in Severity:
            alerts = [
                a for a in default_trace.alerts
                if default_trace.strategies[a.strategy_id].true_severity is severity
                and a.fault_id is None
            ]
            if len(alerts) < 50:
                continue
            manual = sum(1 for a in alerts if a.state is AlertState.CLEARED_MANUAL)
            shares[severity] = manual / len(alerts)
        # True severities only span CRITICAL..MINOR in the factory mix.
        assert shares[Severity.CRITICAL] > shares[Severity.MINOR]


class TestGroundTruth:
    def test_storm_faults_present(self, default_trace):
        roots = [f for f in default_trace.faults if f.is_root]
        children = [f for f in default_trace.faults if not f.is_root]
        assert roots
        assert children

    def test_storm_alerts_attributed(self, default_trace):
        attributed = [a for a in default_trace.alerts if a.fault_id is not None]
        fault_ids = {f.fault_id for f in default_trace.faults}
        assert attributed
        assert all(a.fault_id in fault_ids for a in attributed)

    def test_child_faults_start_after_root(self, default_trace):
        faults = {f.fault_id: f for f in default_trace.faults}
        for fault in default_trace.faults:
            if fault.parent_fault_id is not None:
                parent = faults[fault.parent_fault_id]
                assert fault.window.start >= parent.window.start

    def test_outcomes_sampled_capped(self, default_trace):
        per_strategy: dict[str, int] = {}
        for outcome in default_trace.outcomes:
            per_strategy[outcome.strategy_id] = per_strategy.get(outcome.strategy_id, 0) + 1
        cap = TraceConfig().max_outcomes_per_strategy
        assert max(per_strategy.values()) <= cap


class TestDeterminism:
    def test_same_seed_same_trace(self, topology):
        config = TraceConfig(seed=5, scale=TraceScale.smoke())
        a = generate_trace(config, topology)
        b = generate_trace(config, topology)
        assert len(a) == len(b)
        assert [x.alert_id for x in a.alerts[:50]] == [y.alert_id for y in b.alerts[:50]]
        assert [x.occurred_at for x in a.alerts[:50]] == [y.occurred_at for y in b.alerts[:50]]

    def test_different_seed_differs(self, topology):
        a = generate_trace(TraceConfig(seed=5, scale=TraceScale.smoke()), topology)
        b = generate_trace(TraceConfig(seed=6, scale=TraceScale.smoke()), topology)
        assert [x.occurred_at for x in a.alerts[:20]] != [y.occurred_at for y in b.alerts[:20]]

    def test_generator_builds_topology_if_missing(self):
        generator = TraceGenerator(TraceConfig(seed=5, scale=TraceScale.smoke()))
        assert generator.topology is not None


class TestAntiPatternFootprints:
    def test_a4_strategies_emit_transients(self, default_trace):
        for sid, strategy in default_trace.strategies.items():
            if "A4" not in strategy.injected_antipatterns():
                continue
            alerts = [a for a in default_trace.alerts if a.strategy_id == sid]
            if len(alerts) < 20:
                continue
            transient = sum(1 for a in alerts if a.is_transient(600.0))
            assert transient / len(alerts) > 0.3
            break
        else:
            pytest.skip("no high-volume A4 strategy in this trace")

    def test_a5_strategies_emit_episodes(self, default_trace):
        from repro.core.antipatterns.collective import RepeatingAlertsDetector

        detector = RepeatingAlertsDetector()
        findings = {f.subject for f in detector.detect(default_trace)}
        a5_high_volume = {
            sid for sid, s in default_trace.strategies.items()
            if "A5" in s.injected_antipatterns()
            and len([a for a in default_trace.alerts if a.strategy_id == sid]) >= 30
        }
        assert a5_high_volume & findings
