"""Tests for the strategy population factory."""

import pytest

from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.common.errors import ValidationError
from repro.workload.strategies import StrategyFactory, StrategyMixConfig


@pytest.fixture(scope="module")
def population(topology):
    factory = StrategyFactory(topology, seed=42)
    return factory.build(400)


class TestMixConfig:
    def test_probe_fraction_is_remainder(self):
        mix = StrategyMixConfig(metric_fraction=0.6, log_fraction=0.25)
        assert mix.probe_fraction == pytest.approx(0.15)

    def test_overweight_rejected(self):
        with pytest.raises(ValidationError):
            StrategyMixConfig(metric_fraction=0.8, log_fraction=0.3)

    def test_expected_clean_fraction(self):
        mix = StrategyMixConfig(a1_rate=0.0, a2_rate=0.0, a3_rate=0.0,
                                a4_rate=0.0, a5_rate=0.0)
        assert mix.expected_clean_fraction() == 1.0


class TestBuild:
    def test_count(self, population):
        assert len(population) == 400

    def test_unique_ids(self, population):
        assert len({s.strategy_id for s in population}) == 400

    def test_every_microservice_covered(self, population, topology):
        covered = {s.microservice for s in population}
        assert covered == set(topology.microservices)

    def test_channel_mix_roughly_configured(self, population):
        metric = sum(isinstance(s.rule, MetricRule) for s in population)
        log = sum(isinstance(s.rule, LogKeywordRule) for s in population)
        probe = sum(isinstance(s.rule, ProbeRule) for s in population)
        assert metric > log > probe
        assert metric / len(population) == pytest.approx(0.6, abs=0.1)

    def test_injection_rates_roughly_configured(self, population):
        injected = sum(1 for s in population if s.injected_antipatterns())
        expected = 1.0 - StrategyMixConfig().expected_clean_fraction()
        assert injected / len(population) == pytest.approx(expected, abs=0.12)

    def test_a3_only_on_metric_strategies(self, population):
        for strategy in population:
            if "A3" in strategy.injected_antipatterns():
                assert isinstance(strategy.rule, MetricRule)

    def test_a3_strategies_watch_infra_metrics(self, population):
        infra = {"cpu_util", "memory_util", "disk_util"}
        for strategy in population:
            if "A3" in strategy.injected_antipatterns():
                assert strategy.rule.metric_name in infra

    def test_biased_severity_differs_from_true(self, population):
        for strategy in population:
            if "A2" in strategy.injected_antipatterns():
                assert strategy.severity is not strategy.true_severity
            else:
                assert strategy.severity is strategy.true_severity

    def test_sensitive_metric_strategies_have_tight_rules(self, population):
        for strategy in population:
            if not isinstance(strategy.rule, MetricRule):
                continue
            if strategy.quality.sensitivity > 0.6:
                assert strategy.rule.detector.min_consecutive == 1

    def test_vague_titles_only_on_a1(self, population):
        for strategy in population:
            manifest_like = ":" in strategy.title
            if "A1" in strategy.injected_antipatterns():
                assert not manifest_like
            else:
                assert manifest_like

    def test_deterministic(self, topology):
        a = StrategyFactory(topology, seed=9).build(50)
        b = StrategyFactory(topology, seed=9).build(50)
        assert [s.name for s in a] == [s.name for s in b]

    def test_build_for_specific_microservice(self, topology):
        target = sorted(topology.microservices)[0]
        strategies = StrategyFactory(topology, seed=9).build_for(target, count=3)
        assert len(strategies) == 3
        assert all(s.microservice == target for s in strategies)

    def test_zero_count_rejected(self, topology):
        with pytest.raises(ValidationError):
            StrategyFactory(topology, seed=9).build(0)

    def test_probe_strategies_are_critical(self, population):
        for strategy in population:
            if isinstance(strategy.rule, ProbeRule):
                assert strategy.true_severity.name == "CRITICAL"
