"""Tests for the AlertTrace container."""

import pytest

from repro.alerting.alert import Alert, Severity
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.workload.trace import AlertTrace
from tests.oce.test_processing import make_strategy


def make_alert(alert_id, occurred_at, strategy_id="s-1", region="region-A"):
    return Alert(
        alert_id=alert_id, strategy_id=strategy_id, strategy_name="n",
        title="t", description="d", severity=Severity.MINOR, service="database",
        microservice="database-api-00", region=region, datacenter="dc",
        channel="log", occurred_at=occurred_at,
    )


@pytest.fixture()
def trace():
    trace = AlertTrace(seed=1, label="test")
    trace.add_strategy(make_strategy())
    trace.extend_alerts([
        make_alert("a-2", 2 * HOUR),
        make_alert("a-1", HOUR),
        make_alert("a-3", 30 * HOUR, region="region-B"),
    ])
    return trace


class TestBasics:
    def test_len(self, trace):
        assert len(trace) == 3

    def test_sort(self, trace):
        trace.sort()
        assert [a.alert_id for a in trace.alerts] == ["a-1", "a-2", "a-3"]

    def test_duplicate_strategy_rejected(self, trace):
        with pytest.raises(ValidationError):
            trace.add_strategy(make_strategy())

    def test_strategy_of(self, trace):
        assert trace.strategy_of(trace.alerts[0]).strategy_id == "s-1"

    def test_strategy_of_unknown_rejected(self, trace):
        orphan = make_alert("a-9", HOUR, strategy_id="ghost")
        with pytest.raises(ValidationError):
            trace.strategy_of(orphan)

    def test_window(self, trace):
        window = trace.window()
        assert window.start == HOUR
        assert window.end >= 30 * HOUR

    def test_window_of_empty_rejected(self):
        with pytest.raises(ValidationError):
            AlertTrace().window()


class TestQueries:
    def test_alerts_in(self, trace):
        inside = trace.alerts_in(TimeWindow(0, 3 * HOUR))
        assert {a.alert_id for a in inside} == {"a-1", "a-2"}

    def test_filter_shares_strategies(self, trace):
        filtered = trace.filter(lambda a: a.region == "region-A")
        assert len(filtered) == 2
        assert filtered.strategies is trace.strategies

    def test_by_strategy(self, trace):
        grouped = trace.by_strategy()
        assert len(grouped["s-1"]) == 3

    def test_counts_by_hour_region(self, trace):
        counts = trace.counts_by_hour_region()
        assert counts[(1, "region-A")] == 1
        assert counts[(30, "region-B")] == 1

    def test_alerts_by_hour_region(self, trace):
        grouped = trace.alerts_by_hour_region()
        assert [a.alert_id for a in grouped[(2, "region-A")]] == ["a-2"]


class TestOutcomesAndMerge:
    def test_mean_processing(self, trace):
        from repro.oce.processing import ProcessingOutcome

        trace.outcomes.extend([
            ProcessingOutcome("a-1", "s-1", "oce", 0.0, 100.0, True),
            ProcessingOutcome("a-2", "s-1", "oce", 0.0, 300.0, True),
        ])
        assert trace.mean_processing_by_strategy() == {"s-1": 200.0}

    def test_merge(self, trace):
        other = AlertTrace(seed=1)
        other.extend_alerts([make_alert("b-1", 5 * HOUR)])
        other.add_strategy(make_strategy())  # identical object id is fine
        # Re-use the same strategy object to avoid conflicts.
        other.strategies = {"s-1": trace.strategies["s-1"]}
        merged = trace.merge(other)
        assert len(merged) == 4
        assert [a.occurred_at for a in merged.alerts] == sorted(
            a.occurred_at for a in merged.alerts
        )

    def test_merge_conflicting_strategy_rejected(self, trace):
        other = AlertTrace()
        other.add_strategy(make_strategy())  # different object, same id
        with pytest.raises(ValidationError):
            trace.merge(other)
