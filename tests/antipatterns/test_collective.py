"""Tests for the A5/A6 collective detectors."""

import pytest

from repro.alerting.alert import Alert, Severity
from repro.core.antipatterns.collective import (
    CascadingAlertsDetector,
    RepeatingAlertsDetector,
    infer_cascade_root,
)
from repro.topology.graph import DependencyGraph


def make_alert(alert_id, occurred_at, strategy_id="s-1", micro="m-a",
               service="svc-a", region="region-A"):
    return Alert(
        alert_id=alert_id, strategy_id=strategy_id, strategy_name=strategy_id,
        title="t", description="d", severity=Severity.MINOR, service=service,
        microservice=micro, region=region, datacenter="dc", channel="metric",
        occurred_at=occurred_at,
    )


@pytest.fixture()
def chain_graph():
    graph = DependencyGraph()
    for name in ("top", "mid", "root", "stray"):
        graph.add_microservice(name)
    graph.add_dependency("top", "mid")
    graph.add_dependency("mid", "root")
    return graph


class TestRepeatingInGroup:
    def test_dominant_strategy_flagged(self):
        alerts = [make_alert(f"a-{i}", i * 60.0) for i in range(30)]
        alerts += [make_alert(f"b-{i}", i * 60.0, strategy_id="s-2") for i in range(3)]
        findings = RepeatingAlertsDetector().detect_in_group(alerts, "g")
        flagged = {f.subject for f in findings}
        assert "s-1" in flagged
        assert "s-2" not in flagged

    def test_share_threshold(self):
        # 5 alerts out of 20 = 25% share exceeds the 20% threshold even
        # below the absolute count threshold.
        alerts = [make_alert(f"a-{i}", i * 60.0) for i in range(5)]
        alerts += [make_alert(f"b-{i}", i * 60.0, strategy_id=f"s-{i+10}")
                   for i in range(15)]
        findings = RepeatingAlertsDetector().detect_in_group(alerts, "g")
        assert "s-1" in {f.subject for f in findings}

    def test_empty_group(self):
        assert RepeatingAlertsDetector().detect_in_group([], "g") == []


class TestRepeatingChronic:
    def test_episodes_counted_disjointly(self):
        from repro.workload.trace import AlertTrace

        trace = AlertTrace()
        # Three separated episodes of 10 alerts each, 5 minutes apart.
        alerts = []
        for episode in range(3):
            base = episode * 100_000.0
            alerts += [make_alert(f"a-{episode}-{i}", base + i * 300.0)
                       for i in range(10)]
        trace.extend_alerts(alerts)
        findings = RepeatingAlertsDetector().detect(trace)
        assert len(findings) == 1
        assert findings[0].details["episodes"] == 3

    def test_two_episodes_not_flagged(self):
        from repro.workload.trace import AlertTrace

        trace = AlertTrace()
        alerts = []
        for episode in range(2):
            base = episode * 100_000.0
            alerts += [make_alert(f"a-{episode}-{i}", base + i * 300.0)
                       for i in range(10)]
        trace.extend_alerts(alerts)
        assert RepeatingAlertsDetector().detect(trace) == []


class TestCascadeRoot:
    def test_root_inferred_from_chain(self, chain_graph):
        earliest = {"root": 100.0, "mid": 200.0, "top": 300.0}
        root, coverage = infer_cascade_root(earliest, chain_graph, max_hops=4)
        assert root == "root"
        assert coverage == 1.0

    def test_late_deep_dependency_not_preferred(self, chain_graph):
        # root alerts *after* its dependents: causal coverage collapses.
        earliest = {"root": 900.0, "mid": 200.0, "top": 300.0}
        root, _ = infer_cascade_root(earliest, chain_graph, max_hops=4)
        assert root == "mid"

    def test_single_member_returns_none(self, chain_graph):
        assert infer_cascade_root({"root": 1.0}, chain_graph, 4) is None

    def test_unknown_members_ignored(self, chain_graph):
        earliest = {"root": 100.0, "mid": 200.0, "ghost": 50.0}
        root, _ = infer_cascade_root(earliest, chain_graph, max_hops=4)
        assert root == "root"


class TestCascadingDetector:
    def _group(self):
        return [
            make_alert("a-1", 100.0, strategy_id="s-root", micro="root", service="svc-c"),
            make_alert("a-2", 200.0, strategy_id="s-mid", micro="mid", service="svc-b"),
            make_alert("a-3", 300.0, strategy_id="s-top", micro="top", service="svc-a"),
        ]

    def test_cascade_detected(self, chain_graph):
        detector = CascadingAlertsDetector(chain_graph)
        verdict = detector.detect_in_group(self._group(), "g")
        assert verdict is not None
        assert verdict.root_microservice == "root"
        assert verdict.finding.pattern == "A6"
        assert verdict.involved_services == 3

    def test_unrelated_alerts_not_cascading(self, chain_graph):
        alerts = [
            make_alert("a-1", 100.0, micro="stray", service="svc-a"),
            make_alert("a-2", 110.0, micro="root", service="svc-b"),
            make_alert("a-3", 120.0, micro="stray", service="svc-c"),
        ]
        detector = CascadingAlertsDetector(chain_graph)
        verdict = detector.detect_in_group(alerts, "g")
        # stray has no dependency path to root: coverage below threshold.
        assert verdict is None or verdict.coverage < 0.7

    def test_too_few_services_rejected(self, chain_graph):
        alerts = [
            make_alert("a-1", 100.0, micro="root", service="svc-a"),
            make_alert("a-2", 200.0, micro="mid", service="svc-a"),
        ]
        assert CascadingAlertsDetector(chain_graph).detect_in_group(alerts, "g") is None
