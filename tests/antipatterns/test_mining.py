"""Tests for the §III-A candidate-mining pipeline."""

import pytest

from repro.core.antipatterns.mining import (
    StormEpisode,
    collective_candidate_groups,
    detect_storms,
    run_mining_pipeline,
    select_individual_candidates,
)


@pytest.fixture(scope="module")
def report(default_trace, topology):
    return run_mining_pipeline(default_trace, topology.graph)


class TestIndividualCandidates:
    def test_top_fraction_size(self, default_trace):
        candidates, means = select_individual_candidates(default_trace, fraction=0.3)
        assert len(candidates) == max(int(len(means) * 0.3), 1)

    def test_candidates_are_slowest(self, default_trace):
        candidates, means = select_individual_candidates(default_trace, fraction=0.3)
        slowest_excluded = max(
            (v for k, v in means.items() if k not in candidates), default=0.0
        )
        fastest_included = min(means[k] for k in candidates)
        assert fastest_included >= slowest_excluded

    def test_empty_trace(self):
        from repro.workload.trace import AlertTrace

        candidates, means = select_individual_candidates(AlertTrace())
        assert candidates == set() and means == {}

    def test_enrichment_above_base_rate(self, report):
        # The paper's premise: slow-to-process strategies are where the
        # anti-patterns hide.
        assert report.candidate_enrichment > report.population_antipattern_rate * 1.3


class TestCollectiveCandidates:
    def test_groups_above_threshold(self, default_trace):
        groups = collective_candidate_groups(default_trace, threshold=200)
        for alerts in groups.values():
            assert len(alerts) > 200

    def test_threshold_monotonicity(self, default_trace):
        low = collective_candidate_groups(default_trace, threshold=100)
        high = collective_candidate_groups(default_trace, threshold=300)
        assert set(high).issubset(set(low))


class TestStorms:
    def test_consecutive_hours_merged(self):
        from repro.workload.trace import AlertTrace
        from tests.antipatterns.test_collective import make_alert

        trace = AlertTrace()
        alerts = []
        counter = 0
        for hour in (5, 6, 7, 20):  # two episodes: 5-7 and 20
            for i in range(150):
                alerts.append(make_alert(f"a-{counter}", hour * 3600.0 + i * 20.0))
                counter += 1
        trace.extend_alerts(alerts)
        episodes = detect_storms(trace, threshold=100)
        assert len(episodes) == 2
        first, second = episodes
        assert (first.start_hour, first.end_hour) == (5, 7)
        assert first.total_alerts == 450
        assert second.start_hour == second.end_hour == 20

    def test_storm_regions_independent(self):
        from repro.workload.trace import AlertTrace
        from tests.antipatterns.test_collective import make_alert

        trace = AlertTrace()
        alerts = [make_alert(f"a-{i}", 5 * 3600.0 + i, region="region-A")
                  for i in range(150)]
        alerts += [make_alert(f"b-{i}", 5 * 3600.0 + i, region="region-B")
                   for i in range(150)]
        trace.extend_alerts(alerts)
        episodes = detect_storms(trace, threshold=100)
        assert len(episodes) == 2
        assert {e.region for e in episodes} == {"region-A", "region-B"}

    def test_paper_frequency_band(self, report):
        # "alert storms occur weekly or even daily"
        assert 0.5 <= report.storms_per_week <= 10.0

    def test_episode_validation(self):
        with pytest.raises(Exception):
            StormEpisode("r", start_hour=5, end_hour=3, total_alerts=10)

    def test_episode_window(self):
        episode = StormEpisode("r", 5, 7, 450)
        assert episode.n_hours == 3
        assert episode.window.start == 5 * 3600.0
        assert episode.window.end == 8 * 3600.0


class TestFullPipeline:
    def test_all_six_patterns_found(self, report):
        found = set(report.individual_patterns_found) | set(
            report.collective_patterns_found
        )
        assert found == {"A1", "A2", "A3", "A4", "A5", "A6"}

    def test_cascade_findings_carry_roots(self, report):
        assert report.cascade_findings
        for cascade in report.cascade_findings:
            assert cascade.root_microservice
            assert 0.0 <= cascade.coverage <= 1.0

    def test_detector_quality_floor(self, report):
        for pattern in ("A1", "A3", "A4"):
            assert report.full_scores[pattern]["precision"] >= 0.8, pattern

    def test_render_contains_sections(self, report):
        text = report.render()
        assert "individual candidates" in text
        assert "storms" in text
        assert "detector quality" in text

    def test_candidate_findings_subset_of_full(self, report):
        for pattern, findings in report.individual_findings.items():
            full_subjects = {f.subject for f in report.full_findings[pattern]}
            assert all(f.subject in full_subjects for f in findings)
