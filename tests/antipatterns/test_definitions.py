"""Tests for A3 definition hygiene (stale / duplicate definitions)."""

from __future__ import annotations

from repro.common.timeutil import DAY
from repro.core.antipatterns.base import DetectorThresholds
from repro.core.antipatterns.definitions import (
    DefinitionRecord,
    definition_findings,
)


def _record(sid, service="svc", title="disk full on node",
            description="usage over threshold", last_seen=0.0):
    return DefinitionRecord(
        strategy_id=sid, service=service, title=title,
        description=description, last_seen=last_seen,
    )


THRESHOLDS = DetectorThresholds()
STALE = THRESHOLDS.stale_after


class TestStale:
    def test_gap_at_threshold_is_not_stale(self):
        records = [_record("s-1", last_seen=10 * DAY)]
        assert definition_findings(records, 10 * DAY + STALE) == []

    def test_gap_beyond_threshold_is_stale(self):
        records = [_record("s-1", last_seen=0.0)]
        findings = definition_findings(records, STALE + 1.0)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.pattern == "A3"
        assert finding.subject == "s-1"
        assert finding.details["kind"] == "stale"
        assert finding.details["gap_seconds"] == STALE + 1.0

    def test_score_grows_with_gap_and_saturates(self):
        small = definition_findings(
            [_record("s-1", last_seen=0.0)], STALE + DAY)[0].score
        large = definition_findings(
            [_record("s-1", last_seen=0.0)], 10 * STALE)[0].score
        assert 0.5 < small < large <= 1.0
        assert definition_findings(
            [_record("s-1", last_seen=0.0)], 100 * STALE)[0].score == 1.0


class TestDuplicates:
    def test_identical_text_in_one_service_is_flagged(self):
        records = [_record("s-1"), _record("s-2")]
        findings = definition_findings(records, 0.0)
        assert [f.subject for f in findings] == ["s-1", "s-2"]
        assert findings[0].details == {"kind": "duplicate", "peers": ["s-2"]}
        assert findings[1].details == {"kind": "duplicate", "peers": ["s-1"]}

    def test_matching_is_case_and_whitespace_insensitive(self):
        records = [
            _record("s-1", title="Disk Full on node",
                    description="usage  over THRESHOLD"),
            _record("s-2", title="disk full ON   node",
                    description="Usage over threshold"),
        ]
        assert len(definition_findings(records, 0.0)) == 2

    def test_same_text_across_services_is_not_a_duplicate(self):
        records = [_record("s-1", service="svc-a"),
                   _record("s-2", service="svc-b")]
        assert definition_findings(records, 0.0) == []

    def test_min_group_size_is_respected(self):
        thresholds = DetectorThresholds(duplicate_min_strategies=3)
        records = [_record("s-1"), _record("s-2")]
        assert definition_findings(records, 0.0, thresholds) == []
        records.append(_record("s-3"))
        assert len(definition_findings(records, 0.0, thresholds)) == 3

    def test_score_grows_with_group_size(self):
        pair = definition_findings([_record("s-1"), _record("s-2")], 0.0)
        trio = definition_findings(
            [_record("s-1"), _record("s-2"), _record("s-3")], 0.0)
        assert pair[0].score < trio[0].score <= 1.0


class TestDeterminism:
    def test_output_is_input_order_invariant(self):
        records = [
            _record("s-3", last_seen=0.0),
            _record("s-1", title="other title", last_seen=2 * STALE),
            _record("s-2", last_seen=2 * STALE),
            _record("s-4", last_seen=2 * STALE),
        ]
        forward = definition_findings(records, 2 * STALE + 1.0)
        backward = definition_findings(list(reversed(records)), 2 * STALE + 1.0)
        assert forward == backward
        # Stale findings first, then duplicate groups by strategy id.
        assert [(f.details["kind"], f.subject) for f in forward] == [
            ("stale", "s-3"),
            ("duplicate", "s-2"), ("duplicate", "s-3"), ("duplicate", "s-4"),
        ]


class TestBatchDetector:
    def test_detect_covers_only_firing_strategies(self, smoke_trace):
        from repro.core.antipatterns.definitions import DefinitionHygieneDetector

        detector = DefinitionHygieneDetector()
        records, trace_end = detector.records_of(smoke_trace)
        fired = {alert.strategy_id for alert in smoke_trace.alerts}
        assert {record.strategy_id for record in records} == fired
        assert trace_end == max(a.occurred_at for a in smoke_trace.alerts)
        findings = detector.detect(smoke_trace)
        assert all(f.subject in fired for f in findings)
        assert findings == definition_findings(records, trace_end,
                                               DetectorThresholds())
