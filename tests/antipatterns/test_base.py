"""Tests for finding records and detector thresholds."""

import pytest

from repro.common.errors import ValidationError
from repro.core.antipatterns.base import AntiPatternFinding, DetectorThresholds


class TestFinding:
    def test_valid(self):
        finding = AntiPatternFinding("A1", "strategy-1", 0.8, "vague title")
        assert finding.pattern == "A1"

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValidationError):
            AntiPatternFinding("A9", "s", 0.5, "e")

    def test_score_bounds(self):
        with pytest.raises(ValidationError):
            AntiPatternFinding("A1", "s", 1.5, "e")

    def test_empty_subject_rejected(self):
        with pytest.raises(ValidationError):
            AntiPatternFinding("A1", "", 0.5, "e")


class TestThresholds:
    def test_paper_defaults(self):
        thresholds = DetectorThresholds()
        # 10-minute intermittent interruption threshold, oscillation 5.
        assert thresholds.intermittent_threshold == 600.0
        assert thresholds.oscillation_threshold == 5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValidationError):
            DetectorThresholds(transient_fraction=1.5)

    def test_invalid_positive_rejected(self):
        with pytest.raises(ValidationError):
            DetectorThresholds(repeat_window=0.0)
