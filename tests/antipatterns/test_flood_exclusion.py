"""Regression tests: flood hours must not poison strategy-level detectors.

During a storm every strategy of an affected component fires in bursts.
A naive chronic-repeat detector would flag storm *participants* as A5 and
R1 would then block incident signal — the exact failure mode these tests
pin down.
"""

import pytest

from repro.core.antipatterns.base import storm_hour_keys
from repro.core.antipatterns.collective import RepeatingAlertsDetector
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.antipatterns.individual import TransientTogglingDetector
from repro.workload.trace import AlertTrace
from tests.antipatterns.test_collective import make_alert


def storm_participation_trace():
    """One strategy that is quiet except during three 200-alert floods."""
    trace = AlertTrace()
    alerts = []
    counter = 0
    for storm_index in range(3):
        base = storm_index * 500_000.0
        # The flood: 200 alerts from *other* strategies in one hour ...
        for i in range(200):
            alerts.append(make_alert(
                f"flood-{counter}", base + i * 15.0,
                strategy_id=f"s-other-{i % 40}",
            ))
            counter += 1
        # ... plus our participant firing 10 times in the same hour.
        for i in range(10):
            alerts.append(make_alert(
                f"victim-{counter}", base + i * 300.0, strategy_id="s-victim",
            ))
            counter += 1
    trace.extend_alerts(alerts)
    return trace


class TestStormHourKeys:
    def test_flood_hours_found(self):
        trace = storm_participation_trace()
        keys = storm_hour_keys(trace)
        assert len(keys) == 3

    def test_threshold_respected(self):
        trace = storm_participation_trace()
        assert storm_hour_keys(trace, threshold=10_000) == set()


class TestChronicRepeatVsStormParticipation:
    def test_storm_participant_not_flagged_chronically(self):
        trace = storm_participation_trace()
        findings = RepeatingAlertsDetector().detect(trace)
        assert "s-victim" not in {f.subject for f in findings}

    def test_exclusion_can_be_disabled(self):
        trace = storm_participation_trace()
        findings = RepeatingAlertsDetector().detect(trace, exclude_flood_hours=False)
        assert "s-victim" in {f.subject for f in findings}

    def test_true_chronic_repeater_still_flagged(self):
        trace = storm_participation_trace()
        # A genuine repeater: three quiet-hour episodes of 10 alerts.
        alerts = []
        for episode in range(3):
            base = 100_000.0 + episode * 50_000.0
            alerts += [make_alert(f"rep-{episode}-{i}", base + i * 300.0,
                                  strategy_id="s-chronic") for i in range(10)]
        trace.extend_alerts(alerts)
        findings = RepeatingAlertsDetector().detect(trace)
        assert "s-chronic" in {f.subject for f in findings}


class TestBlockingPreservesIncidentSignal:
    def test_default_trace_preservation(self, default_trace):
        findings = TransientTogglingDetector().detect(default_trace)
        findings += RepeatingAlertsDetector().detect(default_trace)
        blocker = AlertBlocker.from_findings(findings)
        passed, _ = blocker.apply(default_trace)
        attributed = [a for a in default_trace.alerts if a.fault_id is not None]
        surviving = [a for a in passed.alerts if a.fault_id is not None]
        assert len(surviving) / len(attributed) > 0.6
