"""Tests for the A1-A4 individual detectors on the default trace."""

import pytest

from repro.core.antipatterns.individual import (
    ImproperRuleDetector,
    MisleadingSeverityDetector,
    TransientTogglingDetector,
    UnclearTitleDetector,
    run_individual_detectors,
)
from repro.core.antipatterns.mining import score_findings


@pytest.fixture(scope="module")
def findings(default_trace):
    return run_individual_detectors(default_trace)


@pytest.fixture(scope="module")
def scores(default_trace, findings):
    return score_findings(default_trace, findings)


class TestA1:
    def test_finds_injected_strategies(self, default_trace, findings):
        assert findings["A1"]
        scores = score_findings(default_trace, {"A1": findings["A1"]})["A1"]
        assert scores["precision"] >= 0.9
        assert scores["recall"] >= 0.6

    def test_findings_carry_evidence(self, findings):
        for finding in findings["A1"][:5]:
            assert "clarity" in finding.evidence

    def test_detector_never_reads_ground_truth(self, default_trace):
        # Flagged strategies must be judged by text, not by the knob: a
        # clean strategy with vague-looking text would be flagged too.
        detector = UnclearTitleDetector()
        for finding in detector.detect(default_trace):
            strategy = default_trace.strategies[finding.subject]
            assert finding.details["clarity"] < 0.5
            assert strategy.title  # text existed to be judged


class TestA2:
    def test_precision_reasonable(self, scores):
        assert scores["A2"]["precision"] >= 0.6

    def test_direction_reported(self, default_trace):
        for finding in MisleadingSeverityDetector().detect(default_trace)[:5]:
            assert ("overstated" in finding.evidence) or ("understated" in finding.evidence)

    def test_empty_trace_no_findings(self):
        from repro.workload.trace import AlertTrace

        assert MisleadingSeverityDetector().detect(AlertTrace()) == []


class TestA3:
    def test_high_precision(self, scores):
        assert scores["A3"]["precision"] >= 0.9

    def test_only_infra_metric_strategies_flagged(self, default_trace, findings):
        from repro.alerting.rules import MetricRule

        infra = {"cpu_util", "memory_util", "disk_util"}
        for finding in findings["A3"]:
            rule = default_trace.strategies[finding.subject].rule
            assert isinstance(rule, MetricRule)
            assert rule.metric_name in infra

    def test_evidence_reports_overlap(self, findings):
        for finding in findings["A3"][:5]:
            assert "incident" in finding.evidence


class TestA4:
    def test_high_precision_and_recall(self, scores):
        assert scores["A4"]["precision"] >= 0.9
        assert scores["A4"]["recall"] >= 0.6

    def test_details_expose_both_signals(self, findings):
        for finding in findings["A4"][:5]:
            assert "transient_share" in finding.details
            assert "max_oscillation" in finding.details

    def test_transient_definition_matches_paper(self, default_trace):
        # Every strategy flagged for transience must have auto-cleared
        # short alerts, per the §III-A1 [A4] definition.
        detector = TransientTogglingDetector()
        by_strategy = default_trace.by_strategy()
        for finding in detector.detect(default_trace):
            if finding.details["transient_share"] < 0.3:
                continue
            alerts = by_strategy[finding.subject]
            assert any(a.is_transient(600.0) for a in alerts)


class TestSubjectsRestriction:
    def test_restriction_filters(self, default_trace, findings):
        all_subjects = {f.subject for fs in findings.values() for f in fs}
        if not all_subjects:
            pytest.skip("no findings to restrict")
        keep = {next(iter(all_subjects))}
        restricted = run_individual_detectors(default_trace, subjects=keep)
        for fs in restricted.values():
            assert all(f.subject in keep for f in fs)
