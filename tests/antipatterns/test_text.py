"""Tests for title-clarity scoring (A1 input)."""

import numpy as np
import pytest

from repro.alerting.titles import make_description, make_title
from repro.core.antipatterns.text import TitleQualityScorer


@pytest.fixture()
def scorer():
    return TitleQualityScorer()


class TestPaperExamples:
    @pytest.mark.parametrize("title", [
        "Elastic Computing Service is abnormal",
        "Instance x is abnormal",
        "Component y encounters exceptions",
        "Computing cluster has risks",
    ])
    def test_paper_vague_titles_flagged(self, scorer, title):
        assert scorer.is_unclear(title)

    @pytest.mark.parametrize("title", [
        "block-storage-api-00: failed to allocate new blocks, disk full",
        "database-api-01: failed to commit changes to backend storage",
        "nginx instance CPU usage continuously over 80%",
    ])
    def test_informative_titles_pass(self, scorer, title):
        assert not scorer.is_unclear(title)


class TestAgainstSynthesiser:
    def test_separates_generated_titles(self, scorer):
        rng = np.random.default_rng(0)
        for manifestation in ("disk_full", "cpu_overload", "commit_failure"):
            clear_title = make_title("database", "database-api-00", manifestation,
                                     0.9, rng)
            clear_description = make_description("database-api-00", manifestation,
                                                 0.9, rng)
            vague_title = make_title("database", "database-api-00", manifestation,
                                     0.1, rng)
            vague_description = make_description("database-api-00", manifestation,
                                                 0.1, rng)
            clear_score = scorer.clarity(clear_title, clear_description)
            vague_score = scorer.clarity(vague_title, vague_description)
            assert clear_score > 0.5 > vague_score

    def test_clarity_in_unit_range(self, scorer):
        rng = np.random.default_rng(1)
        for clarity_knob in (0.0, 0.3, 0.7, 1.0):
            title = make_title("s", "component-api-00", "disk_full", clarity_knob, rng)
            value = scorer.clarity(title)
            assert 0.0 <= value <= 1.0

    def test_component_alone_is_not_enough(self, scorer):
        # Naming the component without a manifestation stays unclear.
        assert scorer.is_unclear("Instance block-storage-api-10 is abnormal")


class TestTitlePrimaryWeighting:
    """Regression: clarity scored the concatenated title+description blob,
    so a detailed description masked an A1-vague title — the exact
    anti-pattern A1 exists to flag."""

    RICH_DESCRIPTION = (
        "database-api-01: failed to commit changes to backend storage, "
        "disk usage over 95% threshold, p99 latency regression since 14:02"
    )

    def test_rich_description_cannot_rescue_a_vague_title(self, scorer):
        assert scorer.is_unclear("Instance x is abnormal",
                                 self.RICH_DESCRIPTION)

    def test_title_dominates_the_blend(self, scorer):
        vague_title = "Computing cluster has risks"
        blended = scorer.clarity(vague_title, self.RICH_DESCRIPTION)
        alone = scorer.clarity(vague_title)
        description_alone = scorer.clarity(self.RICH_DESCRIPTION)
        # The description moves the score, but only by its small weight —
        # never past the midpoint between title and description scores.
        assert alone <= blended < (alone + description_alone) / 2

    def test_empty_description_equals_title_only(self, scorer):
        for title in ("Instance x is abnormal",
                      "nginx instance CPU usage continuously over 80%"):
            assert scorer.clarity(title) == scorer.clarity(title, "")
            assert scorer.clarity(title) == scorer.clarity(title, "   ")

    def test_clear_title_with_description_stays_clear(self, scorer):
        assert not scorer.is_unclear(
            "block-storage-api-00: failed to allocate new blocks, disk full",
            "further detail: allocation backlog growing",
        )
