"""Fast-mode smoke for the serving-checkpoint benchmark.

``benchmarks/`` is outside the tier-1 test paths, so this drives the
same importable ``run_checkpoint_probe`` the benchmark uses — real
service, real journal and snapshots, exactness asserted inside — on the
multi-region storm trace, and holds the durability overhead to the same
floor the benchmark enforces: checkpointed steady-state throughput must
stay >= 0.85x checkpoint-free.
"""

from __future__ import annotations

import pytest

from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.workload import StormConfig, build_multi_region_storm

bench = pytest.importorskip(
    "benchmarks.bench_serving_checkpoint",
    reason="benchmarks/ must be importable from the repo root",
)


@pytest.fixture(scope="module")
def probe_setup(topology):
    trace = build_multi_region_storm(StormConfig(seed=42), topology)
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    return trace, topology, blocker, rulebook


def test_checkpointed_throughput_holds_the_floor(probe_setup):
    trace, topology, blocker, rulebook = probe_setup
    measurements = bench.run_checkpoint_probe(
        trace, topology, blocker, rulebook,
        # Smoke shape: smaller flushes than the bench (so the barrier
        # math is exercised on a different grid), same snapshot cadence.
        flush_size=256,
    )
    assert measurements["checkpoints_written"] >= 1
    assert measurements["checkpoint_write_ms_mean"] > 0.0
    assert measurements["restore_ms"] > 0.0
    assert measurements["overhead_ratio"] >= bench.OVERHEAD_FLOOR, (
        f"durable serving overhead regressed: checkpointed throughput is "
        f"{measurements['overhead_ratio']:.1%} of checkpoint-free "
        f"(floor {bench.OVERHEAD_FLOOR:.0%})"
    )


def test_bench_artifact_merges_trajectory(tmp_path):
    path = tmp_path / "BENCH_streaming.json"
    first = bench.write_bench_artifact(
        {
            "alerts": 1000.0, "free_alerts_per_sec": 100_000.0,
            "checkpointed_alerts_per_sec": 95_000.0, "overhead_ratio": 0.95,
            "checkpoints_written": 3.0, "checkpoint_write_ms_mean": 1.5,
            "checkpoint_write_ms_max": 2.5, "restore_ms": 40.0,
        },
        pr=6, path=path,
    )
    assert [row["pr"] for row in first["trajectory"]] == [6]
    second = bench.write_bench_artifact(
        {
            "alerts": 1000.0, "free_alerts_per_sec": 110_000.0,
            "checkpointed_alerts_per_sec": 104_000.0, "overhead_ratio": 0.945,
            "checkpoints_written": 3.0, "checkpoint_write_ms_mean": 1.2,
            "checkpoint_write_ms_max": 2.0, "restore_ms": 35.0,
        },
        pr=7, path=path,
    )
    assert [row["pr"] for row in second["trajectory"]] == [6, 7]
    # Re-running the same PR replaces its entry instead of duplicating.
    third = bench.write_bench_artifact(
        {
            "alerts": 1000.0, "free_alerts_per_sec": 120_000.0,
            "checkpointed_alerts_per_sec": 118_000.0, "overhead_ratio": 0.983,
            "checkpoints_written": 3.0, "checkpoint_write_ms_mean": 1.0,
            "checkpoint_write_ms_max": 1.8, "restore_ms": 30.0,
        },
        pr=7, path=path,
    )
    assert [row["pr"] for row in third["trajectory"]] == [6, 7]
    assert third["trajectory"][-1]["overhead_ratio"] == 0.983
