"""Shared helpers for the serving (checkpoint/restore/service) tests."""

from __future__ import annotations

import pytest

from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.streaming import AlertGateway

from tests.streaming.test_golden_trace import golden_graph
from tests.streaming.test_scale import _storm_trace


@pytest.fixture(scope="session")
def serving_graph():
    """The fixed six-node golden topology (fast to build, well-known)."""
    return golden_graph()


@pytest.fixture(scope="session")
def storm_alerts():
    """The multi-region storm trace the scale-parity harness uses."""
    return _storm_trace(480)


def serving_blocker() -> AlertBlocker:
    """The storm trace's configured rule table (matches its strategies)."""
    return AlertBlocker([
        BlockingRule(strategy_id="s-noise", reason="test: repeating"),
        BlockingRule(strategy_id="s-cache", region="region-B",
                     reason="test: toggling in one region"),
    ])


def make_gateway(graph, **kwargs) -> AlertGateway:
    """A gateway with the serving tests' default shape."""
    kwargs.setdefault("blocker", serving_blocker())
    kwargs.setdefault("n_planes", 2)
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("flush_size", 64)
    return AlertGateway(graph, **kwargs)
