"""AlertGatewayService life cycle: ticks, recovery, status, transports."""

from __future__ import annotations

import json
import socket

import pytest

from repro.common.errors import ValidationError
from repro.io.traces import alert_to_dict
from repro.serving import AlertGatewayService, CheckpointLoader
from repro.serving.journal import journal_files

from tests.serving.conftest import serving_blocker


def _service(graph, data_dir, **kwargs):
    kwargs.setdefault("blocker", serving_blocker())
    kwargs.setdefault("checkpoint_every", 100)
    kwargs.setdefault("n_planes", 2)
    kwargs.setdefault("flush_size", 64)
    return AlertGatewayService(graph, data_dir, **kwargs)


class TestLifecycle:
    def test_fresh_start_and_auto_checkpoint(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        assert service.start() == "fresh"
        # 64 events: past no barrier-aligned cadence yet (64 < 100).
        service.ingest(storm_alerts[:64])
        assert service.checkpoints_written == 0
        # 128: cadence reached but 128 is a barrier (2 x 64) -> snapshot.
        service.ingest(storm_alerts[64:128])
        assert service.checkpoints_written == 1
        snapshots = CheckpointLoader(tmp_path).paths()
        assert len(snapshots) == 1
        service.stop()
        assert service.gateway is None

    def test_due_checkpoint_waits_for_barrier(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        # 150 events: cadence (100) is due but 150 is mid-buffer — the
        # tick must wait rather than force a schedule-visible flush.
        service.ingest(storm_alerts[:150])
        assert service.checkpoints_written == 0
        assert service.checkpoint(force=False) is None
        # The next barrier-landing batch triggers the overdue snapshot.
        service.ingest(storm_alerts[150:192])
        assert service.checkpoints_written == 1
        service.stop()

    def test_stop_snapshots_and_resume_continues(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        service.ingest(storm_alerts[:130])
        service.stop()
        assert (tmp_path / "stats.json").exists()
        revived = _service(serving_graph, tmp_path)
        assert revived.start() == "restored"
        assert revived.input_alerts == 130
        revived.stop()

    def test_crash_before_first_checkpoint_recovers_from_journal(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        # "batch" journalling: the write-ahead tier is the one that
        # must survive a kill with no snapshot on disk at all.
        service = _service(serving_graph, tmp_path, journal_mode="batch")
        service.start()
        service.ingest(storm_alerts[:90])  # below cadence: journal only
        service.abort()
        assert CheckpointLoader(tmp_path).latest() is None
        revived = _service(serving_graph, tmp_path, journal_mode="batch")
        assert revived.start() == "restored"
        assert revived.input_alerts == 90
        assert revived.replayed_events == 90
        revived.stop()

    def test_unknown_journal_mode_raises(self, serving_graph, tmp_path):
        with pytest.raises(ValidationError, match="journal_mode"):
            _service(serving_graph, tmp_path, journal_mode="eventually")

    def test_start_twice_raises(self, serving_graph, tmp_path):
        service = _service(serving_graph, tmp_path)
        service.start()
        with pytest.raises(ValidationError):
            service.start()
        service.stop()

    def test_ingest_before_start_raises(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        with pytest.raises(ValidationError, match="not started"):
            service.ingest(storm_alerts[:1])

    def test_drain_ends_the_stream(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        service.ingest(storm_alerts)
        stats = service.stop(drain=True)
        assert stats is not None
        assert stats.input_alerts == len(storm_alerts)
        payload = json.loads((tmp_path / "stats.json").read_text())
        assert payload["service"]["drained"] is True
        assert payload["gateway"]["input_alerts"] == len(storm_alerts)

    def test_journal_rotation_and_pruning(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(
            serving_graph, tmp_path, checkpoint_every=64,
            retain_checkpoints=2,
        )
        service.start()
        for start in range(0, 448, 64):
            service.ingest(storm_alerts[start:start + 64])
        # 7 barrier batches at cadence 64 -> 7 snapshots, retention 2.
        assert service.checkpoints_written == 7
        snapshots = CheckpointLoader(tmp_path).paths()
        assert len(snapshots) == 2
        oldest_kept = min(int(p.stem.split("-")[1]) for p in snapshots)
        epochs = {epoch for epoch, _, _ in journal_files(tmp_path)}
        assert min(epochs) >= oldest_kept, (
            "journals older than every retained snapshot must be pruned"
        )
        service.stop()


class TestStatus:
    def test_status_payload_shape(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path, enable_qoa=True)
        service.start()
        service.ingest(storm_alerts[:128])
        status = service.status()
        assert status["gateway"]["input_alerts"] == 128
        assert status["service"]["checkpoints_written"] == 1
        assert status["service"]["journal"]["records"] >= 0
        assert status["qoa_live"], "live QoA scores expected"
        assert status["history"], "checkpoint ticks recorded"
        assert status["metrics"]["counters"]["checkpoints"] == 1
        assert "checkpoint_write_seconds" in status["metrics"]["timers"]
        json.dumps(status)  # JSON-safe end to end
        path = service.write_status()
        assert json.loads(path.read_text())["gateway"]["input_alerts"] == 128
        service.stop()

    def test_history_records_storm_progression(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path, checkpoint_every=64)
        service.start()
        for start in range(0, 448, 64):
            service.ingest(storm_alerts[start:start + 64])
        ticks = list(service.history)
        assert len(ticks) == 7
        assert [t["at_input"] for t in ticks] == \
               [64, 128, 192, 256, 320, 384, 448]
        assert ticks[-1]["storm_episodes"] >= 1, (
            "the storm trace's flood must appear in the history ring"
        )
        service.stop()


class TestTransports:
    def test_run_stream_honours_stop_request(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()

        def source():
            for index, alert in enumerate(storm_alerts):
                if index == 100:
                    service.request_stop()
                yield alert

        assert service.run_stream(source(), batch_size=32) == "stopped"
        assert 100 <= service.input_alerts < len(storm_alerts)
        service.stop()

    def test_run_lines_parses_json_alerts(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        lines = [json.dumps(alert_to_dict(a)) + "\n" for a in storm_alerts[:50]]
        lines.insert(10, "\n")  # blank lines are skipped
        assert service.run_lines(lines) == "exhausted"
        assert service.input_alerts == 50
        service.stop()

    def test_socket_ingest_and_stats_query(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        host, port = service.serve_socket()
        payload = b"".join(
            (json.dumps(alert_to_dict(a)) + "\n").encode()
            for a in storm_alerts[:128]
        )
        with socket.create_connection((host, port), timeout=10) as conn:
            conn.sendall(payload + b"STATS\n")
            reply = b""
            while not reply.endswith(b"\n"):
                chunk = conn.recv(65536)
                if not chunk:
                    break
                reply += chunk
        status = json.loads(reply)
        assert status["gateway"]["input_alerts"] == 128
        service.stop()
        # The socket is closed with the service.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_signal_handler_requests_stop(self, serving_graph, tmp_path):
        import os
        import signal as signal_module

        service = _service(serving_graph, tmp_path)
        service.start()
        previous_term = signal_module.getsignal(signal_module.SIGTERM)
        previous_int = signal_module.getsignal(signal_module.SIGINT)
        try:
            service.install_signal_handlers()
            assert not service.stop_requested
            os.kill(os.getpid(), signal_module.SIGTERM)
            assert service.stop_requested
            assert service.metrics.counter("signal_SIGTERM") == 1
        finally:
            signal_module.signal(signal_module.SIGTERM, previous_term)
            signal_module.signal(signal_module.SIGINT, previous_int)
        service.stop()


class TestClockDiscipline:
    """Durations must come from the monotonic clock: an NTP step of the
    wall clock cannot make uptime (or tick spacing) go negative."""

    def test_uptime_immune_to_backward_wall_clock_step(
        self, serving_graph, storm_alerts, tmp_path, monkeypatch,
    ):
        import repro.serving.service as service_module
        wall = {"now": 1_000_000.0}
        mono = {"now": 50.0}
        monkeypatch.setattr(service_module.time, "time", lambda: wall["now"])
        monkeypatch.setattr(
            service_module.time, "monotonic", lambda: mono["now"],
        )
        service = _service(serving_graph, tmp_path)
        service.start()
        # The wall clock steps back a full hour; real time advances 5s.
        wall["now"] -= 3600.0
        mono["now"] += 5.0
        status = service.status()["service"]
        assert status["uptime_seconds"] == pytest.approx(5.0)
        assert status["started_at"] == pytest.approx(1_000_000.0)
        # Ticks carry the same discipline: wall_time is a stamp, uptime
        # is the duration.
        service.ingest(storm_alerts[:128])  # lands on a checkpoint tick
        tick = service.history[-1]
        assert tick["uptime"] == pytest.approx(5.0)
        assert tick["uptime"] >= 0.0
        service.stop()


class TestDrainGate:
    """Ingest racing a drain-and-snapshot must be refused, not dropped."""

    def test_ingest_after_stop_is_refused_loudly(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        service.ingest(storm_alerts[:64])
        service.stop()
        with pytest.raises(ValidationError, match="draining"):
            service.ingest(storm_alerts[64:128])
        # A restart re-opens the gate.
        assert service.start() == "restored"
        assert service.ingest(storm_alerts[64:128]) == 64
        service.stop()

    def test_ingest_refused_while_drain_in_flight(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        """The exact race: a handler thread that loses the lock race to
        stop() must see the gate, not a half-shut-down service."""
        import threading

        service = _service(serving_graph, tmp_path)
        service.start()
        service.ingest(storm_alerts[:64])
        release = threading.Event()
        entered = threading.Event()

        original_checkpoint = service.checkpoint

        def slow_checkpoint(force=False):
            entered.set()
            release.wait(timeout=10)
            return original_checkpoint(force=force)

        service.checkpoint = slow_checkpoint
        stopper = threading.Thread(target=service.stop)
        stopper.start()
        assert entered.wait(timeout=10)
        # stop() holds the lock mid-snapshot; a late ingest must be
        # refused by the pre-lock gate instead of queueing on the lock.
        with pytest.raises(ValidationError, match="draining"):
            service.ingest(storm_alerts[64:65])
        release.set()
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        assert service.gateway is None

    def test_socket_lines_get_refused_ack_when_draining(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path)
        service.start()
        host, port = service.serve_socket()
        service._draining = True  # a stop is in flight
        payload = b"".join(
            (json.dumps(alert_to_dict(a)) + "\n").encode()
            for a in storm_alerts[:8]
        )
        with socket.create_connection((host, port), timeout=10) as conn:
            conn.sendall(payload)
            conn.shutdown(socket.SHUT_WR)
            reply = conn.makefile().readline()
        assert reply.startswith("REFUSED")
        assert "draining" in reply
        # Nothing slipped past the gate.
        assert service.input_alerts == 0
        service._draining = False
        service.stop()


class TestIngressLanes:
    def test_service_runs_and_restores_with_lanes(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        service = _service(serving_graph, tmp_path, ingress_lanes=2)
        service.start()
        assert service.gateway.ingress_lanes == 2
        service.ingest(storm_alerts[:128])
        service.stop()
        # Lane count is not strict config: a restore may choose another.
        revived = _service(serving_graph, tmp_path, ingress_lanes=1)
        assert revived.start() == "restored"
        assert revived.input_alerts == 128
        revived.ingest(storm_alerts[128:192])
        stats = revived.stop(drain=True)
        # Same accounting as one uninterrupted classic run.
        clean_dir = tmp_path / "clean"
        clean = _service(serving_graph, clean_dir)
        clean.start()
        clean.ingest(storm_alerts[:192])
        clean_stats = clean.stop(drain=True)
        assert stats.input_alerts == clean_stats.input_alerts
        assert stats.blocked_alerts == clean_stats.blocked_alerts
        assert stats.aggregates_emitted == clean_stats.aggregates_emitted
        assert stats.clusters_finalized == clean_stats.clusters_finalized
