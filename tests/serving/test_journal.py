"""The RCJ1 event journal: round-trip and asymmetric corruption handling.

The write-ahead log's contract is asymmetric on purpose: a torn tail is
the normal signature of a crash mid-append and must be tolerated (every
complete record returned); damage to a *complete* record means
acknowledged events would be lost, so the reader must raise instead of
silently dropping them.
"""

from __future__ import annotations

import pytest

from repro.serving.journal import (
    JournalError,
    JournalWriter,
    journal_files,
    journal_path,
    read_journal,
)

from tests.streaming.conftest import make_alert


def _batch(start: float, count: int, region: str = "region-A"):
    return [
        make_alert(occurred_at=start + index * 5.0, region=region,
                   strategy_id=f"s-{index % 3}")
        for index in range(count)
    ]


class TestRoundTrip:
    def test_multi_record_round_trip(self, tmp_path):
        batches = [(0, _batch(0.0, 4)), (4, _batch(20.0, 3)),
                   (7, _batch(35.0, 5, region="région-β"))]
        with JournalWriter(tmp_path, epoch=3, part=1) as writer:
            for start_index, alerts in batches:
                writer.append(start_index, alerts)
        header, records = read_journal(journal_path(tmp_path, 3, 1))
        assert header == {"version": 1, "epoch": 3, "part": 1}
        assert [(start, [a.alert_id for a in alerts])
                for start, alerts in records] == \
               [(start, [a.alert_id for a in alerts])
                for start, alerts in batches]

    def test_empty_journal_is_valid(self, tmp_path):
        JournalWriter(tmp_path, epoch=0).close()
        header, records = read_journal(journal_path(tmp_path, 0, 0))
        assert header["epoch"] == 0
        assert records == []

    def test_writer_refuses_to_overwrite(self, tmp_path):
        JournalWriter(tmp_path, epoch=0).close()
        with pytest.raises(FileExistsError):
            JournalWriter(tmp_path, epoch=0)

    def test_journal_files_sorted_by_epoch_then_part(self, tmp_path):
        for epoch, part in ((2, 0), (0, 1), (0, 0), (1, 0)):
            JournalWriter(tmp_path, epoch=epoch, part=part).close()
        assert [(e, p) for e, p, _ in journal_files(tmp_path)] == \
               [(0, 0), (0, 1), (1, 0), (2, 0)]


class TestLazyCommit:
    def test_lazy_appends_stay_in_memory_until_commit(self, tmp_path):
        writer = JournalWriter(tmp_path, epoch=0, lazy=True)
        header_size = writer.path.stat().st_size
        writer.append(0, _batch(0.0, 4))
        writer.append(4, _batch(20.0, 3))
        assert writer.pending_events == 7
        assert writer.records == 2 and writer.records_written == 0
        assert writer.path.stat().st_size == header_size, (
            "lazy appends must not serialise or touch the file"
        )
        assert writer.commit() == 2
        assert writer.pending_events == 0 and writer.records_written == 2
        writer.close()
        _, records = read_journal(writer.path)
        assert [(start, len(alerts)) for start, alerts in records] == \
               [(0, 4), (4, 3)]

    def test_close_commits_the_tail(self, tmp_path):
        with JournalWriter(tmp_path, epoch=0, lazy=True) as writer:
            writer.append(0, _batch(0.0, 5))
        _, records = read_journal(journal_path(tmp_path, 0, 0))
        assert [(start, len(alerts)) for start, alerts in records] == [(0, 5)]

    def test_abandon_loses_the_uncommitted_tail_only(self, tmp_path):
        writer = JournalWriter(tmp_path, epoch=0, lazy=True)
        writer.append(0, _batch(0.0, 4))
        writer.commit()
        writer.append(4, _batch(20.0, 3))  # never committed
        writer.abandon()
        _, records = read_journal(writer.path)
        assert [(start, len(alerts)) for start, alerts in records] == [(0, 4)]

    def test_discard_pending_drops_covered_records(self, tmp_path):
        writer = JournalWriter(tmp_path, epoch=0, lazy=True)
        writer.append(0, _batch(0.0, 4))
        assert writer.discard_pending() == 1
        writer.close()
        _, records = read_journal(writer.path)
        assert records == []

    def test_pending_bound_forces_a_commit(self, tmp_path):
        writer = JournalWriter(
            tmp_path, epoch=0, lazy=True, max_pending_events=6,
        )
        writer.append(0, _batch(0.0, 4))
        assert writer.records_written == 0
        writer.append(4, _batch(20.0, 4))  # 8 >= 6: loss window bounded
        assert writer.records_written == 2 and writer.pending_events == 0
        writer.abandon()
        _, records = read_journal(writer.path)
        assert len(records) == 2


class TestCorruption:
    def _written(self, tmp_path):
        with JournalWriter(tmp_path, epoch=0) as writer:
            writer.append(0, _batch(0.0, 4))
            writer.append(4, _batch(20.0, 4))
        return journal_path(tmp_path, 0, 0)

    def test_torn_tail_returns_complete_prefix(self, tmp_path):
        path = self._written(tmp_path)
        data = path.read_bytes()
        # Cut into the middle of the second record: one complete record
        # plus a torn one — the torn one is dropped, cleanly.
        for cut in (len(data) - 1, len(data) - 10, len(data) - 50):
            path.write_bytes(data[:cut])
            _, records = read_journal(path)
            assert len(records) in (1, 2)
            assert records[0][0] == 0 and len(records[0][1]) == 4

    def test_mid_file_corruption_raises(self, tmp_path):
        path = self._written(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the FIRST record's payload: it is complete,
        # so a CRC mismatch is damage, not truncation.
        header_len = int.from_bytes(data[4:8], "big")
        first_payload = 4 + 4 + header_len + 8  # magic+len+header+record hdr
        data[first_payload + 10] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="CRC mismatch"):
            read_journal(path)

    def test_bad_magic_raises(self, tmp_path):
        path = self._written(tmp_path)
        data = path.read_bytes()
        path.write_bytes(b"JUNK" + data[4:])
        with pytest.raises(JournalError, match="not a journal"):
            read_journal(path)

    def test_damaged_header_raises(self, tmp_path):
        path = self._written(tmp_path)
        data = bytearray(path.read_bytes())
        data[9] ^= 0xFF  # inside the header JSON
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            read_journal(path)
