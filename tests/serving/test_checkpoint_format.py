"""The RCK1 checkpoint format: round-trip, corruption, retention.

The durability contract under test: a checkpoint either decodes to
exactly what was written, or fails loudly — a damaged file must never
yield partial state, because a gateway restored from partial state
would silently diverge from its own history forever after.
"""

from __future__ import annotations

import pytest

from repro.serving.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    CheckpointLoader,
    CheckpointWriter,
    ChecksumError,
    GatewayCheckpoint,
    decode_checkpoint,
    encode_checkpoint,
)


def _sample_checkpoint(seq: int = 1) -> GatewayCheckpoint:
    return GatewayCheckpoint(
        seq=seq,
        created_at=1_700_000_000.0 + seq,
        config={"backend": "serial", "n_planes": 2, "flush_size": 64},
        state={
            "assignments": [["region-A", 0], ["région-β", 1]],
            "rules": [{"strategy_id": "s-noise", "region": None,
                       "reason": "r", "expires_at": None}],
            "stats": {"input_alerts": 128, "watermark": 2560.0},
            "learner": None,
            "qoa": None,
            "last_flush_watermark": 2560.0,
        },
        blobs=[(0, "region-A", b"\x00\x01plane-zero"),
               (1, "r\xc3\xa9gion-\xce\xb2", b"")],
    )


class TestEncodeDecode:
    def test_round_trip_is_exact(self):
        original = _sample_checkpoint()
        decoded = decode_checkpoint(encode_checkpoint(original))
        assert decoded.seq == original.seq
        assert decoded.created_at == original.created_at
        assert decoded.config == original.config
        assert decoded.state == original.state
        assert decoded.blobs == original.blobs

    def test_restore_state_reattaches_blobs(self):
        decoded = decode_checkpoint(encode_checkpoint(_sample_checkpoint()))
        state = decoded.restore_state()
        assert state["regions"] == [[0, "region-A"],
                                    [1, "r\xc3\xa9gion-\xce\xb2"]]
        assert state["blobs"] == [b"\x00\x01plane-zero", b""]

    def test_properties(self):
        checkpoint = _sample_checkpoint()
        assert checkpoint.input_alerts == 128
        assert checkpoint.watermark == 2560.0

    def test_bad_magic_is_not_a_checkpoint(self):
        data = encode_checkpoint(_sample_checkpoint())
        with pytest.raises(CheckpointError):
            decode_checkpoint(b"NOPE" + data[4:])
        assert data.startswith(CHECKPOINT_MAGIC)

    def test_every_bit_flip_fails_the_checksum(self):
        """Flip one bit at a spread of offsets: decode must always raise,
        never return an object built from damaged bytes."""
        data = bytearray(encode_checkpoint(_sample_checkpoint()))
        for offset in range(4, len(data), max(len(data) // 40, 1)):
            corrupt = bytearray(data)
            corrupt[offset] ^= 0x40
            with pytest.raises((ChecksumError, CheckpointError)):
                decode_checkpoint(bytes(corrupt))

    def test_every_truncation_fails_loudly(self):
        data = encode_checkpoint(_sample_checkpoint())
        for cut in range(0, len(data), max(len(data) // 25, 1)):
            with pytest.raises((ChecksumError, CheckpointError)):
                decode_checkpoint(data[:cut])

    def test_appended_garbage_fails_the_checksum(self):
        data = encode_checkpoint(_sample_checkpoint())
        with pytest.raises(ChecksumError):
            decode_checkpoint(data + b"\x00")


class TestWriterLoader:
    def test_write_then_latest(self, tmp_path):
        writer = CheckpointWriter(tmp_path)
        path = writer.write(_sample_checkpoint(seq=1))
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp")), "temp file left behind"
        loaded = CheckpointLoader(tmp_path).latest()
        assert loaded is not None and loaded.seq == 1

    def test_retention_prunes_oldest(self, tmp_path):
        writer = CheckpointWriter(tmp_path, retain=2)
        for seq in (1, 2, 3, 4):
            writer.write(_sample_checkpoint(seq=seq))
        names = sorted(p.name for p in CheckpointLoader(tmp_path).paths())
        assert names == ["checkpoint-00000003.rck", "checkpoint-00000004.rck"]

    def test_latest_skips_corrupt_newer_snapshot(self, tmp_path):
        writer = CheckpointWriter(tmp_path)
        writer.write(_sample_checkpoint(seq=1))
        newest = writer.write(_sample_checkpoint(seq=2))
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        loaded = CheckpointLoader(tmp_path).latest()
        assert loaded is not None and loaded.seq == 1

    def test_latest_raises_when_all_snapshots_corrupt(self, tmp_path):
        writer = CheckpointWriter(tmp_path)
        path = writer.write(_sample_checkpoint(seq=1))
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises((ChecksumError, CheckpointError)):
            CheckpointLoader(tmp_path).latest()

    def test_latest_on_empty_directory_is_none(self, tmp_path):
        assert CheckpointLoader(tmp_path).latest() is None
        assert CheckpointLoader(tmp_path / "missing").latest() is None

    def test_ordering_is_numeric_not_lexicographic(self, tmp_path):
        """Regression: snapshots were ordered by filename, so once the
        sequence outgrew the zero-padding width (seq 100000000 sorts
        before 99999999 as a string), ``latest`` restored a stale
        snapshot and retention pruned the newest one."""
        writer = CheckpointWriter(tmp_path, retain=2)
        for seq in (99_999_999, 100_000_000, 100_000_001):
            writer.write(_sample_checkpoint(seq=seq))
        loaded = CheckpointLoader(tmp_path).latest()
        assert loaded is not None and loaded.seq == 100_000_001
        kept = sorted(
            int(p.stem.rsplit("-", 1)[1])
            for p in CheckpointLoader(tmp_path).paths()
        )
        assert kept == [100_000_000, 100_000_001]

    def test_retention_and_latest_agree_across_the_padding_edge(self, tmp_path):
        writer = CheckpointWriter(tmp_path, retain=3)
        for seq in (9, 10, 11, 12):
            writer.write(_sample_checkpoint(seq=seq))
        assert CheckpointLoader(tmp_path).latest().seq == 12
        kept = sorted(
            int(p.stem.rsplit("-", 1)[1])
            for p in CheckpointLoader(tmp_path).paths()
        )
        assert kept == [10, 11, 12]
