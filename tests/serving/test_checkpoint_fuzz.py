"""Property fuzz: checkpoint round-trips survive hostile state shapes.

Hypothesis drives gateway state into the corners the deterministic
matrix does not reach — unicode region names (the wire format and the
file format must agree on encodings), live TTL'd blocking rules
(expiry state must continue ticking identically after restore), and
deep correlator components built over multi-hop dependency chains —
then asserts the continued run is indistinguishable from one that was
never checkpointed.  A second property fuzzes corruption positions:
no damaged snapshot may ever decode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.serving import decode_checkpoint, encode_checkpoint, restore_gateway
from repro.serving.checkpoint import (
    CheckpointError,
    ChecksumError,
    checkpoint_of_gateway,
)
from repro.streaming import AlertGateway

from tests.streaming.conftest import make_alert
from tests.streaming.test_golden_trace import golden_graph

pytestmark = pytest.mark.scale_chaos

#: Region names exercising every encoding hazard at once: combining
#: characters, non-BMP, RTL, plain ASCII.
REGIONS = ("region-A", "région-β", "東京-1",
           "zone-Ώ", "\U0001f30d-west")

#: The golden graph's two call chains; walking them builds multi-hop
#: correlator components.
MICROS = ("m-1", "m-2", "m-3", "m-4", "m-5", "m-6")
STRATEGIES = ("s-api", "s-cache", "s-db", "s-noise", "s-flaky")


def _trace(shape: list[tuple[int, int, int]]) -> list:
    """Ordered alerts from (strategy, region, gap-seconds) triples."""
    alerts = []
    t = 0.0
    for index, (strategy, region, gap) in enumerate(shape):
        t += gap
        alerts.append(make_alert(
            occurred_at=t,
            strategy_id=STRATEGIES[strategy % len(STRATEGIES)],
            region=REGIONS[region % len(REGIONS)],
            microservice=MICROS[index % len(MICROS)],
            cleared_after=30.0 if index % 3 == 0 else 900.0,
        ))
    return alerts


def _ttl_blocker() -> AlertBlocker:
    """Rules with live TTLs: one expires mid-trace, one never does."""
    return AlertBlocker([
        BlockingRule(strategy_id="s-noise", reason="fuzz: permanent"),
        BlockingRule(strategy_id="s-flaky", region=REGIONS[1],
                     reason="fuzz: expiring", expires_at=400.0),
        BlockingRule(strategy_id="s-cache", reason="fuzz: expiring late",
                     expires_at=100_000.0),
    ])


def _fingerprint(gateway: AlertGateway) -> tuple:
    stats = gateway.stats
    return (
        stats.input_alerts, stats.blocked_alerts, stats.aggregates_emitted,
        stats.clusters_finalized, stats.storm_episodes, stats.emerging_flags,
        stats.late_events, stats.watermark,
    )


shape_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(STRATEGIES) - 1),
        st.integers(min_value=0, max_value=len(REGIONS) - 1),
        st.integers(min_value=0, max_value=120),
    ),
    min_size=8, max_size=80,
)


class TestRoundTripFuzz:
    @settings(max_examples=25, deadline=None)
    @given(shape=shape_strategy, tail=shape_strategy, n_planes=st.sampled_from([1, 3]))
    def test_restored_continuation_is_indistinguishable(
        self, shape, tail, n_planes,
    ):
        head = _trace(shape)
        continuation = _trace(
            [(s, r, g) for s, r, g in tail]
        )
        # Continuation times must not go backwards relative to the head.
        offset = head[-1].occurred_at
        for alert in continuation:
            alert.occurred_at += offset
            if alert.cleared_at is not None:
                alert.cleared_at += offset

        def build():
            return AlertGateway(
                golden_graph(), blocker=_ttl_blocker(), n_planes=n_planes,
                n_shards=2, flush_size=1,
            )

        # Reference: the uninterrupted run.
        reference = build()
        reference.ingest_batch(head)
        reference.ingest_batch(continuation)
        reference.drain()
        want = _fingerprint(reference)

        # Checkpointed run: snapshot after the head (flush_size=1 means
        # every batch boundary is a barrier), wire-encode, decode,
        # restore, continue.
        subject = build()
        subject.ingest_batch(head)
        snapshot = checkpoint_of_gateway(subject, seq=1, created_at=0.0)
        decoded = decode_checkpoint(encode_checkpoint(snapshot))
        subject.close()
        assert decoded.config == snapshot.config
        assert decoded.state == snapshot.state
        assert decoded.blobs == snapshot.blobs

        restored = restore_gateway(decoded, golden_graph())
        assert _fingerprint(restored)[:1] == (len(head),)
        restored.ingest_batch(continuation)
        restored.drain()
        assert _fingerprint(restored) == want

    @settings(max_examples=25, deadline=None)
    @given(shape=shape_strategy)
    def test_unicode_rules_and_assignments_survive_exactly(self, shape):
        gateway = AlertGateway(
            golden_graph(), blocker=_ttl_blocker(), n_planes=2, flush_size=1,
        )
        gateway.ingest_batch(_trace(shape))
        snapshot = checkpoint_of_gateway(gateway, seq=1, created_at=0.0)
        decoded = decode_checkpoint(encode_checkpoint(snapshot))
        gateway.close()
        restored = restore_gateway(decoded, golden_graph())
        assert restored._blocker.rules == _ttl_blocker().rules
        assert [r for _, r in decoded.state["assignments"]] == \
               [r for _, r in snapshot.state["assignments"]]
        restored.close()


class TestCorruptionFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        position=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_no_bit_flip_ever_decodes(self, position, bit):
        snapshot = _CORRUPTION_SNAPSHOT
        encoded = bytearray(_CORRUPTION_ENCODED)
        offset = 4 + int(position * (len(encoded) - 4))  # keep the magic
        encoded[offset] ^= 1 << bit
        with pytest.raises((ChecksumError, CheckpointError)):
            decoded = decode_checkpoint(bytes(encoded))
            # Belt and braces: even if a flip cancelled out (it cannot,
            # with a keyed blake2b digest), state must be unchanged.
            assert decoded.state == snapshot.state

    @settings(max_examples=40, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_no_truncation_ever_decodes(self, fraction):
        encoded = _CORRUPTION_ENCODED
        with pytest.raises((ChecksumError, CheckpointError)):
            decode_checkpoint(encoded[:int(fraction * len(encoded))])


def _build_corruption_fixture():
    gateway = AlertGateway(
        golden_graph(), blocker=_ttl_blocker(), n_planes=2, flush_size=1,
    )
    gateway.ingest_batch(_trace([(i % 5, i % 5, 30) for i in range(40)]))
    snapshot = checkpoint_of_gateway(gateway, seq=1, created_at=0.0)
    gateway.close()
    return snapshot, encode_checkpoint(snapshot)


_CORRUPTION_SNAPSHOT, _CORRUPTION_ENCODED = _build_corruption_fixture()
