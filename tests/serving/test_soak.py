"""Serving soak: the golden trace, killed and restored mid-stream.

The CI ``serving-soak`` job's smoke: run the committed golden trace
through a real :class:`AlertGatewayService` in two halves with a
simulated crash between them, and require the drained accounting to
equal the *unscaled, uninterrupted* golden fixture
(``tests/data/golden_stream/expected.json``) bit for bit — and, with
the frozen learner configuration, the committed learned-rules fixture
too.  A restored service is not allowed to be distinguishable from one
that never died, even against fixtures frozen before serving existed.
"""

from __future__ import annotations

import json

import pytest

from repro.core.mitigation.blocking import AlertBlocker
from repro.serving import AlertGatewayService

from tests.streaming.test_golden_trace import (
    EXPECTED_PATH,
    LEARNED_PATH,
    LEARN_CONFIG,
    WINDOW,
    _load_alerts,
    _learned_payload,
    _stats_payload,
    golden_blocker,
    golden_graph,
)

pytestmark = pytest.mark.serving_soak

#: 128 = 2 x flush 64: a natural barrier close to the trace midpoint.
KILL_AT = 128
FLUSH = 64


def _golden_service(data_dir, **kwargs):
    kwargs.setdefault("blocker", golden_blocker())
    return AlertGatewayService(
        golden_graph(), data_dir, checkpoint_every=100,
        flush_size=FLUSH, aggregation_window=WINDOW,
        correlation_window=WINDOW, **kwargs,
    )


@pytest.mark.parametrize("backend,backend_kwargs", [
    ("serial", {}),
    ("thread", {"n_workers": 2, "n_planes": 2}),
    ("process", {"n_workers": 2, "n_planes": 2}),
])
def test_killed_and_restored_service_matches_golden_fixture(
    tmp_path, backend, backend_kwargs,
):
    expected = json.loads(EXPECTED_PATH.read_text())
    alerts = _load_alerts()
    assert len(alerts) == expected["trace_alerts"]

    service = _golden_service(
        tmp_path, backend=backend, **backend_kwargs,
    )
    assert service.start() == "fresh"
    service.ingest(alerts[:KILL_AT])
    service.abort()  # kill -9 equivalent: nothing graceful happens

    revived = _golden_service(
        tmp_path, backend=backend, **backend_kwargs,
    )
    assert revived.start() == "restored"
    assert revived.input_alerts == KILL_AT
    revived.ingest(alerts[KILL_AT:])
    stats = revived.stop(drain=True)
    assert _stats_payload(stats) == expected["counts"], (
        "a killed-and-restored service drifted from the golden fixture"
    )


def test_killed_and_restored_learner_matches_golden_fixture(tmp_path):
    expected = json.loads(LEARNED_PATH.read_text())
    alerts = _load_alerts()

    def build():
        return _golden_service(
            tmp_path, blocker=AlertBlocker(), learn_rules=True,
            enable_qoa=True, learner_config=LEARN_CONFIG,
        )

    service = build()
    service.start()
    service.ingest(alerts[:KILL_AT])
    service.abort()

    revived = build()
    assert revived.start() == "restored"
    revived.ingest(alerts[KILL_AT:])
    gateway = revived.gateway
    stats = gateway.drain()
    assert _learned_payload(gateway, stats) == expected, (
        "the restored learner's rule timeline or QoA scores drifted from "
        "the committed golden fixture"
    )
