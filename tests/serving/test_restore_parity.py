"""Kill-and-restore parity: a restored gateway continues bit-identically.

The central serving guarantee: snapshot + journal-tail replay lands the
restored gateway in *exactly* the state of a process that never died —
same counts, same aggregate and cluster fingerprints, same storm
verdicts, same learned-rule timeline, same QoA scores.  Verified here as

* a deterministic matrix over every backend x plane count x learning
  flag, killing at a checkpoint barrier with a buffered journal tail;
* chaos interleavings (hypothesis-driven kill positions and batch
  shapes, multiple deaths per run) on the serial backend;
* configuration-drift rejection: restoring with changed topology-shaped
  knobs must refuse, not silently resume a different stream.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import ValidationError
from repro.serving import AlertGatewayService, CheckpointLoader, restore_gateway
from repro.streaming import AlertGateway

from tests.serving.conftest import make_gateway, serving_blocker
from tests.streaming.test_golden_trace import golden_graph
from tests.streaming.test_scale import (
    _aggregate_fingerprint,
    _cluster_fingerprint,
    _counts,
    _storm_trace,
)

pytestmark = pytest.mark.scale_chaos

FLUSH = 64


def _uninterrupted(graph, trace, **kwargs):
    gateway = make_gateway(graph, retain_artifacts=True, **kwargs)
    gateway.ingest_batch(trace)
    stats = gateway.drain()
    return (
        _counts(stats),
        _aggregate_fingerprint(gateway),
        _cluster_fingerprint(gateway),
        stats.qoa,
    )


def _service(graph, data_dir, **kwargs):
    # "batch" journalling: these tests kill with an uncommitted tail on
    # purpose — the write-ahead tier is the one that must replay it.
    return AlertGatewayService(
        graph, data_dir, blocker=serving_blocker(), checkpoint_every=100,
        journal_mode=kwargs.pop("journal_mode", "batch"),
        retain_artifacts=True, n_planes=kwargs.pop("n_planes", 2),
        n_shards=2, flush_size=FLUSH, **kwargs,
    )


class TestKillRestoreMatrix:
    @pytest.mark.parametrize("backend,backend_kwargs", [
        ("serial", {}),
        ("thread", {"n_workers": 2}),
        ("process", {"n_workers": 2}),
    ])
    @pytest.mark.parametrize("n_planes", [1, 3])
    @pytest.mark.parametrize("learn", [False, True])
    def test_restored_run_matches_uninterrupted(
        self, serving_graph, storm_alerts, tmp_path, backend,
        backend_kwargs, n_planes, learn,
    ):
        kwargs = dict(
            backend=backend, n_planes=n_planes, learn_rules=learn,
            enable_qoa=True, **backend_kwargs,
        )
        want = _uninterrupted(
            serving_graph, storm_alerts, flush_size=FLUSH, **kwargs,
        )
        service = _service(serving_graph, tmp_path, **kwargs)
        assert service.start() == "fresh"
        # 192 = 3 flushes: lands on a natural barrier past the 100-event
        # checkpoint cadence, so a snapshot fires; the next 68 events
        # stay journal-only — the restore must replay them.
        service.ingest(storm_alerts[:192])
        assert service.checkpoints_written == 1
        service.ingest(storm_alerts[192:260])
        service.abort()

        revived = _service(serving_graph, tmp_path, **kwargs)
        assert revived.start() == "restored"
        assert revived.input_alerts == 260
        assert revived.replayed_events == 68
        revived.ingest(storm_alerts[260:])
        gateway = revived.gateway
        stats = gateway.drain()
        got = (
            _counts(stats),
            _aggregate_fingerprint(gateway),
            _cluster_fingerprint(gateway),
            stats.qoa,
        )
        assert got == want

    def test_learner_timeline_survives_restore(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        """Not just the counters — the full rule event log (kind, input
        position, promotion/expiry times) continues identically."""
        baseline = make_gateway(
            serving_graph, flush_size=FLUSH, learn_rules=True,
        )
        baseline.ingest_batch(storm_alerts)
        baseline.drain()
        want = [
            (e.kind, e.strategy_id, e.at_input, e.at_time, e.expires_at)
            for e in baseline.learner.events
        ]

        service = _service(serving_graph, tmp_path, learn_rules=True)
        service.start()
        service.ingest(storm_alerts[:192])
        service.ingest(storm_alerts[192:230])
        service.abort()
        revived = _service(serving_graph, tmp_path, learn_rules=True)
        revived.start()
        revived.ingest(storm_alerts[230:])
        revived.gateway.drain()
        got = [
            (e.kind, e.strategy_id, e.at_input, e.at_time, e.expires_at)
            for e in revived.gateway.learner.events
        ]
        assert got == want


class TestChaosInterleavings:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        kills=st.lists(
            st.integers(min_value=1, max_value=7), min_size=1, max_size=3,
        ),
        batch=st.sampled_from([17, 64, 97, 256]),
        learn=st.booleans(),
    )
    def test_arbitrary_kill_schedule_preserves_parity(
        self, serving_graph, storm_alerts, tmp_path_factory,
        kills, batch, learn,
    ):
        """Kill the service at arbitrary points (barrier or mid-buffer,
        before or after the first snapshot), any number of times: the
        final drained accounting never deviates."""
        kwargs = dict(learn_rules=learn, enable_qoa=True)
        want = _uninterrupted(
            serving_graph, storm_alerts, flush_size=FLUSH, **kwargs,
        )
        data_dir = tmp_path_factory.mktemp("chaos")
        # Kill positions in events, derived from eighths of the trace —
        # deliberately NOT aligned to flush barriers.
        positions = sorted(
            {min(k * len(storm_alerts) // 8, len(storm_alerts)) for k in kills}
        )
        cursor = 0
        for position in positions:
            service = _service(serving_graph, data_dir, **kwargs)
            service.start()
            assert service.input_alerts == cursor
            while cursor < position:
                cut = min(cursor + batch, position)
                service.ingest(storm_alerts[cursor:cut])
                cursor = cut
            service.abort()
        final = _service(serving_graph, data_dir, **kwargs)
        final.start()
        assert final.input_alerts == cursor
        final.ingest(storm_alerts[cursor:])
        gateway = final.gateway
        stats = gateway.drain()
        got = (
            _counts(stats),
            _aggregate_fingerprint(gateway),
            _cluster_fingerprint(gateway),
            stats.qoa,
        )
        assert got == want


class TestLazyJournalTier:
    def test_hard_kill_falls_back_to_snapshot_then_source_replay(
        self, serving_graph, storm_alerts, tmp_path,
    ):
        """The default (lazy) tier: an uncommitted tail dies with the
        process, recovery lands at the last snapshot, and re-feeding
        the source from the reported position restores full parity."""
        kwargs = dict(enable_qoa=True)
        want = _uninterrupted(
            serving_graph, storm_alerts, flush_size=FLUSH, **kwargs,
        )
        service = _service(
            serving_graph, tmp_path, journal_mode="lazy", **kwargs,
        )
        service.start()
        service.ingest(storm_alerts[:192])  # snapshot fires at the barrier
        service.ingest(storm_alerts[192:260])  # buffered, never committed
        status = service.status()["service"]["journal"]
        assert status["mode"] == "lazy"
        assert status["pending_events"] == 68
        service.abort()

        revived = _service(
            serving_graph, tmp_path, journal_mode="lazy", **kwargs,
        )
        assert revived.start() == "restored"
        # The tail died in memory: recovery is honest about the durable
        # position instead of pretending the lost events were accepted.
        assert revived.input_alerts == 192
        assert revived.replayed_events == 0
        revived.ingest(storm_alerts[revived.input_alerts:])
        gateway = revived.gateway
        stats = gateway.drain()
        got = (
            _counts(stats),
            _aggregate_fingerprint(gateway),
            _cluster_fingerprint(gateway),
            stats.qoa,
        )
        assert got == want


class TestRestoreRefusals:
    def _checkpointed(self, tmp_path, storm_alerts, **kwargs):
        service = _service(golden_graph(), tmp_path, **kwargs)
        service.start()
        service.ingest(storm_alerts[:192])
        service.abort()
        return CheckpointLoader(tmp_path).latest()

    def test_config_drift_is_refused(self, storm_alerts, tmp_path):
        checkpoint = self._checkpointed(tmp_path, storm_alerts)
        assert checkpoint is not None
        drifted = make_gateway(golden_graph(), n_planes=5, flush_size=FLUSH)
        with pytest.raises(ValidationError, match="drift"):
            restore_gateway(
                checkpoint, golden_graph(),
                expected_config=drifted.checkpoint_config(),
            )
        drifted.close()

    def test_adopt_into_used_gateway_is_refused(self, storm_alerts, tmp_path):
        checkpoint = self._checkpointed(tmp_path, storm_alerts)
        gateway = make_gateway(golden_graph(), flush_size=FLUSH)
        gateway.ingest_batch(storm_alerts[:10])
        with pytest.raises(ValidationError):
            gateway.adopt_checkpoint(checkpoint.restore_state())
        gateway.close()

    def test_checkpoint_requires_flush_barrier(self, storm_alerts):
        gateway = make_gateway(golden_graph(), flush_size=FLUSH)
        gateway.ingest_batch(storm_alerts[:10])  # 10 % 64 != 0: buffered
        assert not gateway.at_flush_barrier
        with pytest.raises(ValidationError):
            gateway.checkpoint_state()
        gateway.close()

    def test_learning_flag_mismatch_is_refused(self, storm_alerts, tmp_path):
        checkpoint = self._checkpointed(
            tmp_path, storm_alerts, learn_rules=True,
        )
        plain = make_gateway(golden_graph(), flush_size=FLUSH)
        with pytest.raises(ValidationError):
            plain.adopt_checkpoint(checkpoint.restore_state())
        plain.close()
