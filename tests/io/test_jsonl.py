"""Tests for JSONL helpers."""

import pytest

from repro.common.errors import ValidationError
from repro.io.jsonl import read_jsonl, write_jsonl


class TestRoundTrip:
    def test_write_and_read(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}, {"c": None}]
        assert write_jsonl(path, records) == 3
        assert list(read_jsonl(path)) == records

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(path, [])
        assert list(read_jsonl(path)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            list(read_jsonl(tmp_path / "nope.jsonl"))

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\nnot-json\n')
        with pytest.raises(ValidationError, match=":2:"):
            list(read_jsonl(path))

    def test_keys_sorted_for_stable_diffs(self, tmp_path):
        path = tmp_path / "sorted.jsonl"
        write_jsonl(path, [{"b": 1, "a": 2}])
        assert path.read_text().startswith('{"a": 2, "b": 1}')
