"""Tests for trace persistence round-trips."""

import pytest

from repro.common.errors import ValidationError
from repro.io.traces import load_trace, save_trace


@pytest.fixture(scope="module")
def round_tripped(smoke_trace, tmp_path_factory):
    directory = tmp_path_factory.mktemp("trace")
    save_trace(smoke_trace, directory)
    return load_trace(directory)


class TestRoundTrip:
    def test_counts_preserved(self, smoke_trace, round_tripped):
        assert len(round_tripped) == len(smoke_trace)
        assert len(round_tripped.strategies) == len(smoke_trace.strategies)
        assert len(round_tripped.faults) == len(smoke_trace.faults)
        assert len(round_tripped.outcomes) == len(smoke_trace.outcomes)

    def test_alert_fields_preserved(self, smoke_trace, round_tripped):
        original = smoke_trace.alerts[0]
        loaded = round_tripped.alerts[0]
        assert loaded.alert_id == original.alert_id
        assert loaded.occurred_at == original.occurred_at
        assert loaded.severity is original.severity
        assert loaded.state is original.state
        assert loaded.cleared_at == original.cleared_at

    def test_strategy_fields_preserved(self, smoke_trace, round_tripped):
        sid = sorted(smoke_trace.strategies)[0]
        original = smoke_trace.strategies[sid]
        loaded = round_tripped.strategies[sid]
        assert loaded.name == original.name
        assert loaded.severity is original.severity
        assert loaded.quality == original.quality
        assert loaded.injected_antipatterns() == original.injected_antipatterns()
        assert type(loaded.rule) is type(original.rule)

    def test_fault_windows_preserved(self, smoke_trace, round_tripped):
        if not smoke_trace.faults:
            pytest.skip("no faults in smoke trace")
        original = smoke_trace.faults[0]
        loaded = round_tripped.faults[0]
        assert loaded.window == original.window
        assert loaded.kind is original.kind

    def test_meta_preserved(self, smoke_trace, round_tripped):
        assert round_tripped.seed == smoke_trace.seed
        assert round_tripped.label == smoke_trace.label

    def test_analyses_work_on_loaded_trace(self, round_tripped, topology):
        from repro.core.antipatterns import run_mining_pipeline

        report = run_mining_pipeline(round_tripped, topology.graph)
        assert report.mean_processing

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace(tmp_path / "ghost")
