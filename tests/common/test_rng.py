"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import derive_rng, derive_seed, spawn_children


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "topology") == derive_seed(42, "topology")

    def test_name_separates_streams(self):
        assert derive_seed(42, "topology") != derive_seed(42, "faults")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "topology") != derive_seed(2, "topology")

    def test_result_in_63_bit_range(self):
        for name in ("a", "b", "a-very-long-stream-name/with/segments"):
            seed = derive_seed(123456789, name)
            assert 0 <= seed < 2**63

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            derive_seed(42, "")

    def test_rejects_non_int_seed(self):
        with pytest.raises(ValidationError):
            derive_seed("42", "topology")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        assert derive_seed(np.int64(42), "x") == derive_seed(42, "x")


class TestDeriveRng:
    def test_same_name_same_draws(self):
        a = derive_rng(42, "s").random(5)
        b = derive_rng(42, "s").random(5)
        assert np.array_equal(a, b)

    def test_different_names_different_draws(self):
        a = derive_rng(42, "s1").random(5)
        b = derive_rng(42, "s2").random(5)
        assert not np.array_equal(a, b)

    def test_creation_order_does_not_matter(self):
        first = derive_rng(42, "alpha")
        _ = derive_rng(42, "beta")
        second = derive_rng(42, "alpha")
        assert np.array_equal(first.random(3), second.random(3))


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(42, "pool", 5)) == 5

    def test_children_are_independent(self):
        children = spawn_children(42, "pool", 3)
        draws = [rng.random() for rng in children]
        assert len(set(draws)) == 3

    def test_zero_count(self):
        assert spawn_children(42, "pool", 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_children(42, "pool", -1)
