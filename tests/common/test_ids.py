"""Tests for sequential id factories."""

import pytest

from repro.common.errors import ValidationError
from repro.common.ids import IdFactory


class TestIdFactory:
    def test_sequence(self):
        factory = IdFactory("alert")
        assert factory.next() == "alert-000000"
        assert factory.next() == "alert-000001"

    def test_width(self):
        factory = IdFactory("x", width=3)
        assert factory.next() == "x-000"

    def test_custom_start(self):
        factory = IdFactory("x", start=7)
        assert factory.next() == "x-000007"

    def test_peek_does_not_consume(self):
        factory = IdFactory("x")
        assert factory.peek() == "x-000000"
        assert factory.next() == "x-000000"

    def test_count(self):
        factory = IdFactory("x")
        factory.next()
        factory.next()
        assert factory.count == 2

    def test_reset(self):
        factory = IdFactory("x")
        factory.next()
        factory.reset()
        assert factory.next() == "x-000000"

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValidationError):
            IdFactory("")

    def test_bad_width_rejected(self):
        with pytest.raises(ValidationError):
            IdFactory("x", width=0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            IdFactory("x", start=-1)

    def test_counter_overflow_widens(self):
        factory = IdFactory("x", width=2, start=100)
        assert factory.next() == "x-100"
