"""Tests for the exception hierarchy."""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, ConfigurationError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_catchable_at_base(self):
        try:
            raise ValidationError("boom")
        except ReproError as error:
            assert "boom" in str(error)
