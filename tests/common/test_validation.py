"""Tests for argument-validation helpers."""

import pytest

from repro.common.errors import ValidationError
from repro.common.validation import (
    require_fraction,
    require_in,
    require_non_empty,
    require_non_negative,
    require_positive,
)


class TestRequirePositive:
    def test_passes_through(self):
        assert require_positive(1.5, "x") == 1.5

    def test_zero_rejected(self):
        with pytest.raises(ValidationError, match="x"):
            require_positive(0, "x")

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            require_positive(-1, "x")


class TestRequireNonNegative:
    def test_zero_allowed(self):
        assert require_non_negative(0, "x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            require_non_negative(-0.1, "x")


class TestRequireFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_bounds_inclusive(self, value):
        assert require_fraction(value, "x") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_out_of_range_rejected(self, value):
        with pytest.raises(ValidationError):
            require_fraction(value, "x")


class TestRequireNonEmpty:
    def test_list(self):
        assert require_non_empty([1], "x") == [1]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            require_non_empty([], "x")


class TestRequireIn:
    def test_member(self):
        assert require_in("a", ("a", "b"), "x") == "a"

    def test_non_member_rejected(self):
        with pytest.raises(ValidationError):
            require_in("c", ("a", "b"), "x")
