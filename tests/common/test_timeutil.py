"""Tests for simulated time utilities."""

import pytest

from repro.common.errors import ValidationError
from repro.common.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    TimeWindow,
    format_timestamp,
    hour_bucket,
    iter_buckets,
    to_datetime,
)


class TestConstants:
    def test_ordering(self):
        assert MINUTE == 60 * 1.0
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR


class TestConversion:
    def test_origin_renders_as_2020(self):
        assert format_timestamp(0.0) == "2020/01/01 00:00"

    def test_paper_style_format(self):
        # One day plus 6:36 into the simulation.
        stamp = format_timestamp(DAY + 6 * HOUR + 36 * MINUTE)
        assert stamp == "2020/01/02 06:36"

    def test_to_datetime_is_utc(self):
        assert to_datetime(0.0).tzinfo is not None


class TestHourBucket:
    def test_zero(self):
        assert hour_bucket(0.0) == 0

    def test_boundary_belongs_to_next_bucket(self):
        assert hour_bucket(HOUR) == 1
        assert hour_bucket(HOUR - 0.001) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            hour_bucket(-1.0)


class TestTimeWindow:
    def test_duration(self):
        assert TimeWindow(10.0, 70.0).duration == 60.0

    def test_contains_half_open(self):
        window = TimeWindow(10.0, 20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)

    def test_empty_window_allowed(self):
        assert TimeWindow(5.0, 5.0).duration == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(ValidationError):
            TimeWindow(10.0, 9.0)

    def test_overlaps(self):
        assert TimeWindow(0, 10).overlaps(TimeWindow(5, 15))
        assert not TimeWindow(0, 10).overlaps(TimeWindow(10, 20))

    def test_shift(self):
        shifted = TimeWindow(0, 10).shift(100)
        assert (shifted.start, shifted.end) == (100, 110)

    def test_hour_constructor(self):
        window = TimeWindow.hour(3)
        assert window.start == 3 * HOUR
        assert window.end == 4 * HOUR

    def test_hour_negative_rejected(self):
        with pytest.raises(ValidationError):
            TimeWindow.hour(-1)


class TestIterBuckets:
    def test_exact_division(self):
        buckets = list(iter_buckets(TimeWindow(0, 30), 10))
        assert len(buckets) == 3
        assert buckets[0].start == 0 and buckets[-1].end == 30

    def test_final_bucket_truncated(self):
        buckets = list(iter_buckets(TimeWindow(0, 25), 10))
        assert buckets[-1].duration == 5

    def test_union_covers_window(self):
        buckets = list(iter_buckets(TimeWindow(3, 47), 7))
        assert buckets[0].start == 3
        assert buckets[-1].end == 47
        for left, right in zip(buckets, buckets[1:]):
            assert left.end == right.start

    def test_zero_width_rejected(self):
        with pytest.raises(ValidationError):
            list(iter_buckets(TimeWindow(0, 10), 0))
