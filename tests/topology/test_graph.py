"""Tests for the dependency graph."""

import pytest

from repro.common.errors import ValidationError
from repro.topology.graph import DependencyGraph, validate_layering


@pytest.fixture()
def chain():
    """frontend -> middle -> backend."""
    graph = DependencyGraph()
    for name in ("frontend", "middle", "backend"):
        graph.add_microservice(name)
    graph.add_dependency("frontend", "middle")
    graph.add_dependency("middle", "backend")
    return graph


class TestConstruction:
    def test_contains(self, chain):
        assert "middle" in chain
        assert "nope" not in chain

    def test_len_and_edges(self, chain):
        assert len(chain) == 3
        assert chain.edge_count == 2

    def test_self_loop_rejected(self, chain):
        with pytest.raises(ValidationError):
            chain.add_dependency("middle", "middle")

    def test_unknown_node_rejected(self, chain):
        with pytest.raises(ValidationError):
            chain.add_dependency("frontend", "ghost")

    def test_cycle_rejected_and_rolled_back(self, chain):
        with pytest.raises(ValidationError):
            chain.add_dependency("backend", "frontend")
        # The failed edge must not linger.
        assert chain.edge_count == 2

    def test_empty_name_rejected(self):
        graph = DependencyGraph()
        with pytest.raises(ValidationError):
            graph.add_microservice("")

    def test_attributes_merge(self):
        graph = DependencyGraph()
        graph.add_microservice("a", layer=1)
        graph.add_microservice("a", role="api")
        assert graph.attributes("a") == {"layer": 1, "role": "api"}


class TestQueries:
    def test_dependencies(self, chain):
        assert chain.dependencies("frontend") == ["middle"]
        assert chain.dependencies("backend") == []

    def test_dependents(self, chain):
        assert chain.dependents("backend") == ["middle"]
        assert chain.dependents("frontend") == []

    def test_upstream_impact(self, chain):
        impact = chain.upstream_impact("backend")
        assert impact == {"middle": 1, "frontend": 2}

    def test_upstream_impact_depth_limited(self, chain):
        impact = chain.upstream_impact("backend", max_depth=1)
        assert impact == {"middle": 1}

    def test_downstream_dependencies(self, chain):
        assert chain.downstream_dependencies("frontend") == {"middle": 1, "backend": 2}

    def test_topological_order(self, chain):
        order = chain.topological_order()
        assert order.index("frontend") < order.index("middle") < order.index("backend")

    def test_shortest_distance(self, chain):
        assert chain.shortest_dependency_distance("frontend", "backend") == 2
        assert chain.shortest_dependency_distance("backend", "frontend") is None

    def test_are_related_either_direction(self, chain):
        assert chain.are_related("backend", "frontend")
        assert chain.are_related("frontend", "backend")

    def test_are_related_depth_bound(self, chain):
        assert not chain.are_related("frontend", "backend", max_depth=1)

    def test_unknown_node_query_rejected(self, chain):
        with pytest.raises(ValidationError):
            chain.dependencies("ghost")

    def test_subgraph_services(self, chain):
        service_of = {"frontend": "web", "middle": "web", "backend": "db"}
        collapsed = chain.subgraph_services(service_of)
        assert set(collapsed.nodes) == {"web", "db"}
        assert ("web", "db") in collapsed.edges
        # Intra-service edge collapsed away.
        assert ("web", "web") not in collapsed.edges

    def test_to_networkx_is_copy(self, chain):
        copy = chain.to_networkx()
        copy.remove_node("middle")
        assert "middle" in chain


class TestValidateLayering:
    def test_no_violations_on_descending_chain(self, chain):
        layers = {"frontend": 2, "middle": 1, "backend": 0}
        assert validate_layering(chain, layers) == []

    def test_violation_reported(self, chain):
        layers = {"frontend": 0, "middle": 1, "backend": 2}
        violations = validate_layering(chain, layers)
        assert "frontend -> middle" in violations
