"""Tests for the layered topology generator."""

import pytest

from repro.common.errors import ValidationError
from repro.topology.generator import (
    SERVICE_CATALOG,
    TopologyConfig,
    _allocate_budget,
    generate_topology,
)
from repro.topology.graph import validate_layering


class TestConfig:
    def test_defaults_match_paper(self):
        config = TopologyConfig()
        assert config.n_microservices == 192
        assert len(SERVICE_CATALOG) == 11

    def test_too_few_microservices_rejected(self):
        with pytest.raises(ValidationError):
            TopologyConfig(n_microservices=5)

    def test_bad_instance_bounds_rejected(self):
        with pytest.raises(ValidationError):
            TopologyConfig(instances_per_deployment=(3, 2))


class TestAllocation:
    def test_total_preserved(self):
        allocation = _allocate_budget(192)
        assert sum(allocation.values()) == 192

    def test_every_service_covered(self):
        allocation = _allocate_budget(20)
        assert all(count >= 1 for count in allocation.values())
        assert len(allocation) == len(SERVICE_CATALOG)

    def test_small_budget(self):
        allocation = _allocate_budget(11)
        assert sum(allocation.values()) == 11


class TestGenerateTopology:
    def test_paper_shape(self, topology):
        assert len(topology.services) == 11
        assert len(topology.microservices) == 192
        assert len(topology.regions) == 3

    def test_deterministic(self):
        a = generate_topology(TopologyConfig(seed=5, n_microservices=30))
        b = generate_topology(TopologyConfig(seed=5, n_microservices=30))
        assert a.graph.microservices == b.graph.microservices
        assert a.graph.edge_count == b.graph.edge_count

    def test_seed_changes_wiring(self):
        a = generate_topology(TopologyConfig(seed=1, n_microservices=40))
        b = generate_topology(TopologyConfig(seed=2, n_microservices=40))
        assert a.graph.to_networkx().edges != b.graph.to_networkx().edges

    def test_layering_never_violated(self, topology):
        layers = {
            name: micro.layer for name, micro in topology.microservices.items()
        }
        assert validate_layering(topology.graph, layers) == []

    def test_every_microservice_deployed_everywhere(self, topology):
        for name in list(topology.microservices)[:10]:
            deployments = topology.deployments_of(name)
            assert {d.region for d in deployments} == set(topology.region_names())

    def test_instance_counts_in_bounds(self, topology):
        low, high = topology.config.instances_per_deployment
        for deployment in topology.deployments[:50]:
            assert low <= deployment.size <= high

    def test_service_of_complete(self, topology):
        assert set(topology.service_of) == set(topology.microservices)

    def test_microservices_of_unknown_service_rejected(self, topology):
        with pytest.raises(ValidationError):
            topology.microservices_of("nope")

    def test_graph_is_connected_enough(self, topology):
        # Frontends must reach infrastructure for cascades to exist.
        api_gateway = topology.microservices_of("api-gateway")[0]
        downstream = topology.graph.downstream_dependencies(api_gateway)
        layers = {topology.microservices[m].layer for m in downstream}
        assert 0 in layers

    def test_summary_mentions_scale(self, topology):
        summary = topology.summary()
        assert "11 services" in summary
        assert "192 microservices" in summary
