"""Tests for topology entity records."""

import pytest

from repro.common.errors import ValidationError
from repro.topology.entities import (
    DataCenter,
    Deployment,
    Instance,
    Microservice,
    Region,
    Service,
)


class TestBasicEntities:
    def test_region(self):
        assert Region("region-A").name == "region-A"

    def test_empty_region_rejected(self):
        with pytest.raises(ValidationError):
            Region("")

    def test_datacenter_requires_region(self):
        with pytest.raises(ValidationError):
            DataCenter(name="dc1", region="")

    def test_service_layer_bounds(self):
        with pytest.raises(ValidationError):
            Service(name="s", layer=-1, archetype="storage")

    def test_microservice_fields(self):
        micro = Microservice(name="db-api-00", service="database", layer=1, role="api")
        assert micro.role == "api"

    def test_microservice_requires_service(self):
        with pytest.raises(ValidationError):
            Microservice(name="x", service="", layer=0)


class TestInstance:
    def test_location_format(self):
        instance = Instance(
            name="db-api-00.region-A.0", microservice="db-api-00",
            datacenter="region-A-dc1", region="region-A",
        )
        location = instance.location()
        assert location.startswith("Region=region-A;DC=region-A-dc1;")
        assert "Instance=db-api-00.region-A.0" in location


class TestDeployment:
    def _instance(self, micro="m", region="r"):
        return Instance(name=f"{micro}.{region}.0", microservice=micro,
                        datacenter=f"{region}-dc1", region=region)

    def test_size(self):
        deployment = Deployment(microservice="m", region="r",
                                instances=[self._instance()])
        assert deployment.size == 1

    def test_wrong_microservice_rejected(self):
        with pytest.raises(ValidationError):
            Deployment(microservice="other", region="r", instances=[self._instance()])

    def test_wrong_region_rejected(self):
        with pytest.raises(ValidationError):
            Deployment(microservice="m", region="other", instances=[self._instance()])
