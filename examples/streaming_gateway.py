#!/usr/bin/env python3
"""Live alert-storm mitigation through the online gateway.

Replays the paper's representative 7:00-11:59 storm (Figure 3) into the
sharded :class:`AlertGateway` as a simulated live feed: a periodic
process on the discrete-event kernel tails the alert stream every
simulated minute, and every 30 simulated minutes we print the rolling
volume-reduction numbers an operator dashboard would show.  At the end,
the gateway's accounting is reconciled against the batch
:class:`MitigationPipeline` — same trace, same counts, but computed one
event at a time with bounded memory.

Run:  python examples/streaming_gateway.py
"""

from repro import generate_topology
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.sim import SimulationEngine
from repro.streaming import AlertGateway, drive_gateway
from repro.workload import build_representative_storm
from repro.workload.storms import StormConfig


def main() -> None:
    topology = generate_topology()
    config = StormConfig()
    storm = build_representative_storm(config, topology)

    rulebook = rulebook_from_ground_truth(storm, coverage=0.6, seed=storm.seed)
    blocker = MitigationPipeline.derive_blocker(storm)
    gateway = AlertGateway(
        topology.graph, blocker=blocker, rulebook=rulebook, n_shards=4,
    )

    # --- live ingestion on the simulation kernel ------------------------
    print(f"streaming {len(storm)} storm alerts through "
          f"{gateway.stats.n_shards} shards...\n")
    print(f"{'sim clock':>9}  {'in':>6}  {'blocked':>7}  {'groups':>6}  "
          f"{'clusters':>8}  {'storms':>6}  {'reduction':>9}")

    report_every = 1800.0  # one dashboard row per simulated half hour
    next_report = [config.window.start + report_every]

    def dashboard(gw: AlertGateway, now: float, batch: int) -> None:
        if now < next_report[0] or gw.stats.input_alerts == 0:
            return
        next_report[0] += report_every
        snapshot = gw.snapshot()
        clock = f"{int(now // 3600) % 24:02d}:{int(now % 3600) // 60:02d}"
        print(f"{clock:>9}  {snapshot.input_alerts:>6,}  "
              f"{snapshot.blocked_alerts:>7,}  {snapshot.aggregates_emitted:>6,}  "
              f"{snapshot.clusters_finalized:>8,}  {snapshot.storm_episodes:>6}  "
              f"{snapshot.estimated_reduction:>9.1%}")

    engine = SimulationEngine(start_time=config.window.start)
    drive_gateway(engine, gateway, storm.iter_ordered(), interval=60.0,
                  on_batch=dashboard)
    engine.run_until(config.window.end + 3600.0)
    stats = gateway.drain()

    # --- end-of-storm accounting ----------------------------------------
    print(f"\n{stats.render()}")

    batch_report = MitigationPipeline(topology.graph, rulebook=rulebook).run(storm)
    mismatches = stats.reconcile(batch_report)
    if mismatches:
        print(f"\nreconciliation FAILED: {mismatches}")
    else:
        print("\nreconciliation: the online gateway reproduced the batch "
              "pipeline's volume accounting exactly, one event at a time")


if __name__ == "__main__":
    main()
