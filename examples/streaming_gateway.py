#!/usr/bin/env python3
"""Live multi-region alert-storm mitigation through region-partitioned planes.

Replays the paper's representative 7:00-11:59 storm (Figure 3) hitting
TWO regions at once into the :class:`AlertGateway` as a simulated live
feed: a periodic process on the discrete-event kernel tails the merged
alert stream every simulated minute, the gateway routes each region to
its own execution plane (R1-R4 run plane-locally, off the gateway loop),
and every 30 simulated minutes we print the rolling volume-reduction
numbers an operator dashboard would show.  At the end, the merged
accounting is reconciled against the batch :class:`MitigationPipeline`
— and each plane's accounting against a batch run over just its
regions' alerts — same counts, computed one event at a time with
bounded memory.

Run:  python examples/streaming_gateway.py
"""

from repro import generate_topology
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.sim import SimulationEngine
from repro.streaming import AlertGateway, drive_gateway
from repro.workload import build_multi_region_storm
from repro.workload.storms import StormConfig

REGIONS = ("region-A", "region-B")


def main() -> None:
    topology = generate_topology()
    config = StormConfig()
    storm = build_multi_region_storm(config, topology, regions=REGIONS)

    rulebook = rulebook_from_ground_truth(storm, coverage=0.6, seed=storm.seed)
    blocker = MitigationPipeline.derive_blocker(storm)
    gateway = AlertGateway(
        topology.graph, blocker=blocker, rulebook=rulebook,
        n_planes=len(REGIONS), n_shards=4,
    )

    # --- live ingestion on the simulation kernel ------------------------
    print(f"streaming {len(storm)} storm alerts from {len(REGIONS)} regions "
          f"through {gateway.n_planes} planes x {gateway.n_shards} shards...\n")
    print(f"{'sim clock':>9}  {'in':>6}  {'blocked':>7}  {'groups':>6}  "
          f"{'clusters':>8}  {'storms':>6}  {'reduction':>9}")

    report_every = 1800.0  # one dashboard row per simulated half hour
    next_report = [config.window.start + report_every]

    def dashboard(gw: AlertGateway, now: float, batch: int) -> None:
        if now < next_report[0] or gw.stats.input_alerts == 0:
            return
        next_report[0] += report_every
        snapshot = gw.snapshot()
        clock = f"{int(now // 3600) % 24:02d}:{int(now % 3600) // 60:02d}"
        print(f"{clock:>9}  {snapshot.input_alerts:>6,}  "
              f"{snapshot.blocked_alerts:>7,}  {snapshot.aggregates_emitted:>6,}  "
              f"{snapshot.clusters_finalized:>8,}  {snapshot.storm_episodes:>6}  "
              f"{snapshot.estimated_reduction:>9.1%}")

    engine = SimulationEngine(start_time=config.window.start)
    drive_gateway(engine, gateway, storm.iter_ordered(), interval=60.0,
                  on_batch=dashboard)
    engine.run_until(config.window.end + 3600.0)
    stats = gateway.drain()

    # --- end-of-storm accounting ----------------------------------------
    print(f"\n{stats.render()}")

    batch_report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        storm, blocker=blocker,
    )
    mismatches = stats.reconcile(batch_report)
    if mismatches:
        print(f"\nreconciliation FAILED: {mismatches}")
        return
    print("\nreconciliation: the online gateway reproduced the batch "
          "pipeline's volume accounting exactly, one event at a time")

    # --- per-region (= per-plane) reconciliation ------------------------
    # Each plane owns whole regions, so its accounting must equal a batch
    # pipeline run over just those regions' alerts.
    print("\nper-region reconciliation (plane vs batch pipeline on that "
          "region's alerts):")
    assignments = gateway.plane_assignments
    for plane_id in sorted(set(assignments.values())):
        regions = tuple(r for r, p in assignments.items() if p == plane_id)
        regional = storm.filter(
            lambda a, keep=frozenset(regions): a.region in keep,
            label=f"plane-{plane_id}",
        )
        regional_report = MitigationPipeline(
            topology.graph, rulebook=rulebook,
        ).run(regional, blocker=blocker)
        plane = stats.planes[plane_id]
        pairs = [
            ("in", plane["processed"], regional_report.input_alerts),
            ("blocked", plane["blocked"], regional_report.blocked_alerts),
            ("groups", plane["aggregates"], len(regional_report.aggregates)),
            ("clusters", plane["clusters"], len(regional_report.clusters)),
        ]
        status = "exact" if all(a == b for _, a, b in pairs) else "MISMATCH"
        detail = "  ".join(f"{name} {a:,}" for name, a, _ in pairs)
        print(f"  plane {plane_id} [{','.join(regions)}]: {detail}  -> {status}")


if __name__ == "__main__":
    main()
