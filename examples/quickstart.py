#!/usr/bin/env python3
"""Quickstart: generate a cloud, a trace, and mine its anti-patterns.

Builds the paper-shaped cloud (11 services / 192 microservices), generates
a 60-day alert trace with injected anti-patterns and storms, runs the full
§III-A mining pipeline, and prints what it found.

Run:  python examples/quickstart.py
"""

from repro import generate_topology, generate_trace, run_mining_pipeline
from repro.analysis import compute_trace_stats


def main() -> None:
    topology = generate_topology()
    print(f"cloud: {topology.summary()}")

    trace = generate_trace(topology=topology)
    print("\ntrace statistics")
    print(compute_trace_stats(trace.alerts).render())

    report = run_mining_pipeline(trace, topology.graph)
    print("\nmining report (paper SIII-A methodology)")
    print(report.render())

    print("\nexample findings:")
    for pattern, findings in sorted(report.full_findings.items()):
        if findings:
            top = max(findings, key=lambda f: f.score)
            strategy = trace.strategies[top.subject]
            print(f"  [{pattern}] {strategy.name}")
            print(f"        {top.evidence}")
    for cascade in report.cascade_findings[:2]:
        print(f"  [A6] {cascade.finding.subject}: root={cascade.root_microservice} "
              f"coverage={cascade.coverage:.0%}")


if __name__ == "__main__":
    main()
