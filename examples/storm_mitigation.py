#!/usr/bin/env python3
"""Alert-storm mitigation: R1 blocking -> R2 aggregation -> R3 correlation.

Regenerates the paper's representative 7:00-11:59 storm (Figure 3: 2751
alerts, 200 strategies, HAProxy ~30% each hour), then walks the §III-C
reaction chain and shows how many items an OCE actually has to diagnose.

Run:  python examples/storm_mitigation.py
"""

from repro import generate_topology
from repro.analysis.figures import render_hourly_series
from repro.common.timeutil import hour_bucket
from repro.core.mitigation import (
    AlertAggregator,
    AlertBlocker,
    CorrelationAnalyzer,
)
from repro.core.antipatterns import RepeatingAlertsDetector
from repro.workload import build_representative_storm
from repro.workload.storms import StormConfig


def main() -> None:
    topology = generate_topology()
    config = StormConfig()
    storm = build_representative_storm(config, topology)

    # --- the storm as the OCE sees it (Figure 3) -----------------------
    first_hour = config.day * 24 + config.start_hour
    hours = list(range(first_hour, first_hour + config.n_hours))
    series: dict[str, list[int]] = {"HAProxy": [], "Kafka": [], "Others": []}
    for hour in hours:
        bucket = [a for a in storm.alerts if hour_bucket(a.occurred_at) == hour]
        haproxy = sum(1 for a in bucket if a.strategy_id == "strategy-haproxy")
        kafka = sum(1 for a in bucket if a.strategy_id == "strategy-kafka")
        series["HAProxy"].append(haproxy)
        series["Kafka"].append(kafka)
        series["Others"].append(len(bucket) - haproxy - kafka)
    print(render_hourly_series(
        f"the storm, by hour of day ({len(storm)} alerts total)",
        [h % 24 for h in hours], series,
    ))

    # --- R1: block the repeating noise ---------------------------------
    findings = RepeatingAlertsDetector().detect_in_group(storm.alerts, "storm")
    blocker = AlertBlocker.from_findings(findings, patterns=("A5",))
    passed, blocked = blocker.apply(storm)
    print(f"\nR1 blocking: {len(blocked)} repeating alerts blocked "
          f"({len(blocker.rules)} rules), {len(passed)} remain")

    # --- R2: aggregate duplicates ---------------------------------------
    aggregator = AlertAggregator(window_seconds=900.0)
    aggregates = aggregator.aggregate(passed.alerts)
    groups = [agg for agg in aggregates if agg.is_group]
    print(f"R2 aggregation: {len(passed)} alerts -> {len(aggregates)} items "
          f"({len(groups)} carry a count feature)")

    # --- R3: correlate and point at the root ----------------------------
    analyzer = CorrelationAnalyzer(topology.graph)
    clusters = analyzer.correlate([agg.representative for agg in aggregates])
    biggest = max(clusters, key=lambda c: c.size)
    print(f"R3 correlation: {len(aggregates)} items -> {len(clusters)} clusters")
    print(f"  biggest cluster: {biggest.size} items, inferred root "
          f"{biggest.root_microservice} (coverage {biggest.coverage:.0%})")
    reduction = 1.0 - len(clusters) / len(storm)
    print(f"\nOCE load: {len(storm)} raw alerts -> {len(clusters)} diagnoses "
          f"({reduction:.1%} reduction)")


if __name__ == "__main__":
    main()
