#!/usr/bin/env python3
"""Telemetry-driven monitoring: the Table II cascade, live.

Injects a disk-full fault on block storage, lets it cascade through the
dependency graph (database commit failures and onward), runs the
monitoring engine against the perturbed telemetry on the discrete-event
kernel, and prints the resulting alerts in the paper's Table II format —
then lets R4's emerging-alert detector and R3's correlator explain them.

Run:  python examples/live_monitoring.py
"""

from repro import generate_topology
from repro.alerting import AlertBook, MonitoringEngine, NotificationRouter
from repro.common.timeutil import HOUR
from repro.core.mitigation import CorrelationAnalyzer
from repro.faults import CascadeModel, FaultInjector, disk_full_cascade
from repro.sim import SimulationEngine
from repro.telemetry import TelemetryHub
from repro.workload import StrategyFactory
from repro.workload.strategies import StrategyMixConfig


def main() -> None:
    topology = generate_topology()
    hub = TelemetryHub(topology, seed=42)
    injector = FaultInjector(hub)
    cascade = CascadeModel(topology, injector, seed=42)

    root, children = disk_full_cascade(topology, injector, cascade, start=2 * HOUR)
    print(f"injected: {root.kind.value} on {root.microservice} "
          f"({len(children)} propagated faults)")

    factory = StrategyFactory(topology, seed=42,
                              mix=StrategyMixConfig(a4_rate=0.0, a5_rate=0.0))
    strategies = []
    for micro in [root.microservice] + [c.microservice for c in children]:
        strategies.extend(factory.build_for(micro, count=2))

    book = AlertBook()
    router = NotificationRouter()
    engine = MonitoringEngine(hub, book, fault_attribution=injector.fault_at,
                              router=router)
    engine.register_all(strategies)
    sim = SimulationEngine()
    end = root.window.end + HOUR
    engine.attach(sim, end_time=end)
    sim.run_until(end)

    regional = sorted(
        (a for a in book.alerts if a.region == root.region),
        key=lambda a: a.occurred_at,
    )
    print(f"\n{len(regional)} alerts generated in {root.region} "
          f"({engine.checks_performed} rule evaluations):")
    for alert in regional[:12]:
        print("  " + alert.render_row())
    if len(regional) > 12:
        print(f"  ... and {len(regional) - 12} more")

    clusters = CorrelationAnalyzer(topology.graph).correlate(regional)
    biggest = max(clusters, key=lambda c: c.size)
    print(f"\nR3 correlation: {len(clusters)} clusters; biggest has "
          f"{biggest.size} alerts, inferred root {biggest.root_microservice}")
    print(f"ground-truth root: {root.microservice} "
          f"({'HIT' if biggest.root_microservice == root.microservice else 'miss'})")
    print(f"\nnotifications by team: {router.interrupts_per_team()}")


if __name__ == "__main__":
    main()
