#!/usr/bin/env python3
"""Preventative governance: lint strategies against the §III-D guidelines.

Builds a strategy population with the usual misconfiguration mix, lints
it against the Target / Timing / Presentation guidelines, prints sample
violations, then runs the periodic review at full compliance and shows
Finding 4's effect: fewer anti-patterns, faster diagnosis.

Run:  python examples/guideline_review.py
"""

import numpy as np

from repro import generate_topology
from repro.core.governance import GuidelineChecker, PeriodicReview
from repro.oce import ProcessingModel, build_panel
from repro.workload import StrategyFactory


def main() -> None:
    topology = generate_topology()
    strategies = StrategyFactory(topology, seed=42).build(400)

    checker = GuidelineChecker(topology)
    report = checker.review(strategies)
    print("guideline review of a fresh strategy population")
    print("  " + report.render())

    print("\nsample violations:")
    seen_aspects = set()
    for violation in report.violations:
        if violation.aspect in seen_aspects:
            continue
        seen_aspects.add(violation.aspect)
        print(f"  [{violation.aspect}] {violation.strategy_id}: {violation.message}")
        if len(seen_aspects) == 3:
            break

    model = ProcessingModel(seed=1)
    senior = build_panel()[0]

    def mean_minutes(population):
        return float(np.mean([
            model.expected_seconds(s, senior) for s in population
        ])) / 60.0

    print("\nperiodic review at increasing compliance (Finding 4):")
    print(f"  {'compliance':>10} {'anti-pattern strategies':>24} "
          f"{'mean diagnosis':>15}")
    for compliance in (0.0, 0.5, 1.0):
        outcome = PeriodicReview(topology, compliance=compliance, seed=1).run(strategies)
        residual = sum(
            1 for s in outcome.strategies
            if s.injected_antipatterns() & {"A1", "A3", "A4"}
        )
        print(f"  {compliance:>10.0%} {residual:>24} "
              f"{mean_minutes(outcome.strategies):>12.1f} min")


if __name__ == "__main__":
    main()
