#!/usr/bin/env python3
"""QoA screening: rank a strategy population by Quality of Alerts (§IV).

Measures indicativeness / precision / handleability for every strategy of
a generated trace, trains the label-based QoA model, and prints the worst
offenders with the anti-patterns their low scores point at — the paper's
proposed "automatic detection of alert anti-patterns".

Run:  python examples/qoa_screening.py
"""

from repro import generate_topology, generate_trace
from repro.analysis.figures import render_table
from repro.core.qoa import evaluate_qoa_pipeline, measure_qoa


def main() -> None:
    topology = generate_topology()
    trace = generate_trace(topology=topology)

    # --- measured QoA (no learning) -------------------------------------
    scores = measure_qoa(trace)
    worst = sorted(scores.values(), key=lambda s: s.overall)[:8]
    rows = []
    for qoa in worst:
        strategy = trace.strategies[qoa.strategy_id]
        injected = ",".join(sorted(strategy.injected_antipatterns())) or "clean"
        rows.append((
            strategy.name[:44],
            f"{qoa.indicativeness:.2f}",
            f"{qoa.precision:.2f}",
            f"{qoa.handleability:.2f}",
            injected,
        ))
    print("lowest measured QoA (ground-truth injection shown for reference)")
    print(render_table(
        ("strategy", "indicativeness", "precision", "handleability", "injected"),
        rows,
    ))

    # --- learned QoA (OCE labels -> model -> anti-pattern flags) --------
    report = evaluate_qoa_pipeline(trace)
    print("\nlearned QoA model (trained on simulated OCE labels)")
    print(report.render())


if __name__ == "__main__":
    main()
